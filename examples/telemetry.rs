//! Telemetry: profile a NeSSA run with the unified observability layer —
//! hierarchical spans over the epoch loop, per-batch/per-selection
//! metrics, and the SmartSSD phase trace bridged into one stream.
//!
//! Run with `cargo run --release --example telemetry`. Set
//! `NESSA_TELEMETRY=jsonl` (or `jsonl:<path>`) to stream the same events
//! to a JSONL artifact instead of collecting in memory.

use nessa::core::{NessaConfig, NessaPipeline};
use nessa::data::SynthConfig;
use nessa::nn::models::mlp;
use nessa::telemetry::{TelemetryMode, TelemetrySettings};
use nessa::tensor::rng::Rng64;

fn main() {
    // Honor NESSA_TELEMETRY when set; default to in-memory collection so
    // the example always has something to render.
    let mut settings = TelemetrySettings::from_env();
    if settings.mode == TelemetryMode::Off {
        settings = TelemetrySettings::memory();
    }

    let synth = SynthConfig {
        train: 500,
        test: 150,
        dim: 12,
        classes: 4,
        cluster_std: 0.7,
        class_sep: 3.0,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let cfg = NessaConfig::new(0.3, 5)
        .with_batch_size(32)
        .with_seed(7)
        .with_telemetry(settings);
    let mut rng = Rng64::new(7);
    let target = mlp(&[train.dim(), 32, train.classes()], &mut rng);
    let selector = mlp(&[train.dim(), 32, train.classes()], &mut rng);
    let mut pipeline = NessaPipeline::new(cfg, target, selector, train, test);
    let report = pipeline.run().unwrap();

    println!("{report}");
    println!();
    // Every run collects the same stream regardless of sink: a span tree
    // (epoch → scan/select/ship/train/feedback) plus metrics.
    print!("{}", pipeline.telemetry().render_timeline());
    if let Some(path) = pipeline.telemetry().jsonl_path() {
        println!("JSONL artifact written to {}", path.display());
    }
}
