//! Drive the SmartSSD simulator directly: stream a dataset to the FPGA,
//! run the selection kernel, ship a subset to the host, and inspect the
//! timeline, traffic, energy, and FPGA resource report.
//!
//! Run with `cargo run --release --example smartssd_sim`.

use nessa::data::{record, DatasetSpec};
use nessa::smartssd::fpga::KernelProfile;
use nessa::smartssd::resources::{KernelResourceConfig, ResourceReport};
use nessa::smartssd::{LinkModel, SmartSsd, SmartSsdConfig};

fn main() {
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let (train, _) = spec.scaled_config(3).generate();
    let encoded = record::encode_dataset(&train);
    println!(
        "{}: {} records, {} bytes/record on flash, {:.1} MB total",
        train.name(),
        train.len(),
        record::record_len(train.dim(), train.bytes_per_sample()),
        encoded.len() as f64 / 1e6
    );

    let mut dev = SmartSsd::new(SmartSsdConfig::default());
    let read_s = dev
        .read_records_to_fpga(
            spec.train_size as u64, // full-scale scan
            spec.bytes_per_image as u64,
        )
        .expect("fault-free device");
    let profile = KernelProfile {
        samples: spec.train_size as u64,
        forward_macs_per_sample: 640,
        proxy_dim: spec.classes,
        chunk: 457,
        k_per_chunk: 128,
    };
    let select_s = dev.run_selection(&profile).expect("chunk fits on-chip");
    let subset = (spec.train_size as u64 * 28) / 100;
    let ship_s = dev
        .send_subset_to_host(subset, spec.bytes_per_image as u64)
        .expect("fault-free device");
    let feedback_s = dev
        .receive_feedback(270_000 / 4)
        .expect("fault-free device");

    println!("simulated epoch timeline:");
    println!("  flash -> FPGA scan : {read_s:>8.3} s");
    println!("  selection kernel   : {select_s:>8.3} s");
    println!("  subset -> host     : {ship_s:>8.3} s");
    println!("  weight feedback    : {feedback_s:>8.3} s");
    println!("  total              : {:>8.3} s", dev.elapsed_secs());

    let t = dev.traffic();
    println!(
        "traffic: on-board {:.0} MB, interconnect {:.0} MB ({:.2}x reduction vs staging all)",
        t.ssd_to_fpga as f64 / 1e6,
        t.interconnect_bytes() as f64 / 1e6,
        t.ssd_to_fpga as f64 / t.interconnect_bytes() as f64
    );
    println!("energy: {}", dev.energy());
    println!();
    println!("{}", dev.trace());

    println!();
    println!("P2P saturation (batch 128):");
    let p2p = LinkModel::p2p();
    for kb in [0.5f64, 3.0, 12.0, 126.0] {
        println!(
            "  {:>6.1} KB/record -> {:.2} GB/s",
            kb,
            p2p.effective_bytes_per_s(128, (kb * 1000.0) as u64) / 1e9
        );
    }

    println!();
    println!(
        "{}",
        ResourceReport::for_kernel(&KernelResourceConfig::cifar10())
    );
}
