//! Quickstart: train a classifier on a CIFAR-10-like synthetic dataset
//! with NeSSA's near-storage selection, and compare against full-data
//! training.
//!
//! Run with `cargo run --release --example quickstart`.

use nessa::core::{run_policy, NessaConfig, Policy};
use nessa::data::DatasetSpec;
use nessa::nn::models::mlp;
use nessa::tensor::rng::Rng64;

fn main() {
    // The catalog carries the paper's Table-1 metadata and a scaled
    // synthetic stand-in for CPU training.
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let (train, test) = spec.scaled_config(7).generate();
    println!(
        "dataset: {} stand-in — {} train / {} test samples, {} classes",
        spec.name,
        train.len(),
        test.len(),
        train.classes()
    );

    let epochs = 20;
    let builder = |rng: &mut Rng64| mlp(&[train.dim(), 96, train.classes()], rng);

    // Full-data training ("Goal" in the paper).
    let goal = run_policy(&Policy::Goal, &train, &test, epochs, 32, 7, &builder).unwrap();
    println!("{goal}");

    // NeSSA: 28 % subsets (the paper's Table-2 operating point), selected
    // near-storage with quantized feedback, subset biasing and
    // partitioning all enabled.
    let cfg = NessaConfig::new(0.28, epochs);
    let nessa = run_policy(&Policy::Nessa(cfg), &train, &test, epochs, 32, 7, &builder).unwrap();
    println!("{nessa}");

    let t = nessa.traffic;
    println!(
        "interconnect traffic: {:.1} MB crossed to the host; {:.1} MB stayed on-board",
        t.interconnect_bytes() as f64 / 1e6,
        t.ssd_to_fpga as f64 / 1e6
    );
    println!(
        "accuracy gap vs full data: {:.2} points (paper: 1.85)",
        100.0 * (goal.best_accuracy() - nessa.best_accuracy())
    );
}
