//! Watch NeSSA's adaptive machinery at work: subset biasing prunes the
//! candidate pool as samples are learned, and dynamic sizing shrinks the
//! subset when the loss plateaus.
//!
//! Run with `cargo run --release --example dynamic_subsets`.

use nessa::core::{run_policy, NessaConfig, Policy};
use nessa::data::SynthConfig;
use nessa::nn::models::mlp;
use nessa::tensor::rng::Rng64;

fn main() {
    let (train, test) = SynthConfig {
        name: "adaptive-demo".into(),
        train: 1200,
        test: 400,
        dim: 24,
        classes: 6,
        clusters_per_class: 20,
        cluster_std: 0.8,
        class_sep: 0.7,
        mode_spread: 2.3,
        hard_fraction: 0.2,
        ..SynthConfig::default()
    }
    .generate();

    let mut cfg = NessaConfig::new(0.4, 30).with_dynamic_sizing(true);
    cfg.biasing_drop_every = 5; // prune aggressively for the demo
    cfg.biasing_drop_fraction = 0.15;
    cfg.sizing_threshold = 0.05;

    let builder = |rng: &mut Rng64| mlp(&[24, 48, 6], rng);
    let report = run_policy(&Policy::Nessa(cfg), &train, &test, 30, 32, 1, &builder).unwrap();

    println!("epoch  pool  subset  train-loss  test-acc");
    for e in &report.epochs {
        println!(
            "{:>5} {:>5} {:>7} {:>11.4} {:>9.1}%",
            e.epoch,
            e.pool_size,
            e.subset_size,
            e.train_loss,
            100.0 * e.test_acc
        );
    }
    println!();
    println!(
        "pool shrank {} -> {}; subset {} -> {}; final accuracy {:.1}%",
        report.epochs.first().unwrap().pool_size,
        report.epochs.last().unwrap().pool_size,
        report.epochs.first().unwrap().subset_size,
        report.epochs.last().unwrap().subset_size,
        100.0 * report.final_accuracy()
    );
}
