//! The paper's future work, runnable: shard a full-scale dataset across a
//! fleet of simulated SmartSSDs, select locally on each drive (GreeDi
//! round 1), and watch the near-storage phases scale while the shared
//! host link becomes the new bottleneck.
//!
//! Run with `cargo run --release --example multi_drive`.

use nessa::data::DatasetSpec;
use nessa::smartssd::cluster::SsdCluster;
use nessa::smartssd::fpga::KernelProfile;
use nessa::smartssd::SmartSsdConfig;

fn main() {
    let spec = DatasetSpec::by_name("TinyImageNet").expect("catalog entry");
    let records = spec.train_size as u64;
    let bytes = spec.bytes_per_image as u64;
    let subset = records * 34 / 100; // the paper's Table-2 operating point
    println!(
        "{}: {} records x {} KB, 34% subset, GreeDi across drives",
        spec.name,
        records,
        bytes / 1000
    );
    for drives in [1usize, 2, 4, 8, 16] {
        let mut cluster = SsdCluster::new(drives, SmartSsdConfig::default());
        let scan = cluster.parallel_scan(records, bytes).expect("fault-free");
        let profile = KernelProfile {
            samples: records,
            forward_macs_per_sample: (512 * spec.classes) as u64,
            proxy_dim: spec.classes,
            chunk: KernelProfile::max_chunk_for(&SmartSsdConfig::default().fpga, spec.classes)
                .min(457),
            k_per_chunk: 128,
        };
        let select = cluster.parallel_select(&profile).expect("chunk fits");
        let gather = cluster
            .gather_selections(subset, bytes)
            .expect("fault-free");
        println!(
            "  {drives:>2} drives: scan {scan:>6.2}s  select {select:>5.2}s  gather {gather:>5.2}s  total {:>6.2}s  ({:.1} J)",
            cluster.elapsed_secs(),
            cluster.energy_joules()
        );
    }
    println!("(scan/select parallelize; the gather shares one host link — Amdahl)");
}
