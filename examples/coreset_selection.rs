//! Coreset selection in isolation: compare facility location (CRAIG),
//! K-Centers, k-medoids refinement, and random selection on a redundant
//! clustered dataset — no training involved.
//!
//! Run with `cargo run --release --example coreset_selection`.

use nessa::select::facility::{maximize, GreedyVariant, SimilarityMatrix};
use nessa::select::{kcenters, kmedoids, random};
use nessa::tensor::rng::Rng64;
use nessa::tensor::Tensor;

fn main() {
    // 400 points in 8 redundant clusters with a few outliers: the regime
    // where coverage-based selection shines and k-centers chases noise.
    let mut rng = Rng64::new(11);
    let centres = Tensor::randn(&[8, 12], 0.0, 4.0, &mut rng);
    let mut rows = Vec::new();
    for i in 0..392 {
        for &c in centres.row(i % 8) {
            rows.push(c + rng.normal(0.0, 0.6));
        }
    }
    for _ in 0..8 {
        for _ in 0..12 {
            rows.push(rng.normal(0.0, 25.0)); // outliers
        }
    }
    let feats = Tensor::from_vec(rows, &[400, 12]);
    let k = 16;

    let sim = SimilarityMatrix::from_features(&feats);
    let fl = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
    let st = maximize(
        &sim,
        k,
        GreedyVariant::Stochastic { epsilon: 0.1 },
        &mut rng,
    )
    .unwrap();
    let kc = kcenters::select(&feats, k, &mut rng);
    let rnd = random::select(400, k, &mut rng);
    let refined = kmedoids::refine(&feats, &fl.indices, 20);

    println!("selecting {k} of 400 (8 clusters + 8 outliers)");
    println!(
        "{:<24} {:>16} {:>14} {:>10}",
        "method", "k-medoid cost", "facility F(S)", "outliers"
    );
    for (name, indices) in [
        ("facility (lazy)", &fl.indices),
        ("facility (stochastic)", &st.indices),
        ("facility + k-medoids", &refined.indices),
        ("k-centers", &kc.indices),
        ("random", &rnd.indices),
    ] {
        let cost = kmedoids::cost(&feats, indices);
        let obj = sim.objective(indices);
        let outliers = indices.iter().filter(|&&i| i >= 392).count();
        println!("{name:<24} {cost:>16.1} {obj:>14.1} {outliers:>10}");
    }
    println!();
    println!("facility location (and its k-medoids refinement) reaches the lowest");
    println!("k-medoid cost: it covers every cluster AND the outlier region, while");
    println!("random selection — blind to structure — pays ~20x the representation");
    println!("cost. Stochastic greedy trades a little coverage for far fewer");
    println!("similarity evaluations (the FPGA-friendly variant).");
}
