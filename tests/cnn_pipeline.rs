//! The NeSSA pipeline with a *convolutional* target model on image-shaped
//! synthetic data — exercising the conv/batch-norm/pool stack through the
//! full near-storage loop (selection proxies, quantized feedback, subset
//! training).

use nessa::core::{run_policy, NessaConfig, Policy};
use nessa::data::SynthConfig;
use nessa::nn::models::small_cnn_on_flat;
use nessa::tensor::rng::Rng64;

#[test]
fn cnn_target_trains_through_the_full_pipeline() {
    // 3×6×6 "images": the flat 108-dim rows carry class-separated means,
    // so even a tiny convnet can discriminate.
    let dims = (3usize, 6usize, 6usize);
    let (train, test) = SynthConfig {
        name: "cnn-mini".into(),
        train: 150,
        test: 60,
        dim: dims.0 * dims.1 * dims.2,
        classes: 3,
        clusters_per_class: 3,
        cluster_std: 0.5,
        class_sep: 1.2,
        mode_spread: 0.4,
        hard_fraction: 0.0,
        hard_std_multiplier: 1.0,
        bytes_per_sample: 2000,
        seed: 21,
    }
    .generate();
    let builder = move |rng: &mut Rng64| small_cnn_on_flat(dims, 3, 4, rng);
    let report = run_policy(
        &Policy::Nessa(NessaConfig::new(0.4, 6)),
        &train,
        &test,
        6,
        16,
        4,
        &builder,
    )
    .unwrap();
    assert_eq!(report.epochs.len(), 6);
    // Traffic accounting works for the conv path too.
    assert!(report.traffic.ssd_to_fpga > 0);
    assert!(
        report.traffic.host_to_fpga > 0,
        "quantized CNN feedback must flow"
    );
    // The tiny convnet must actually learn (3-way chance is 33 %).
    assert!(
        report.best_accuracy() > 0.6,
        "cnn accuracy {}",
        report.best_accuracy()
    );
}

#[test]
fn cnn_and_mlp_share_the_policy_interface() {
    let dims = (1usize, 4usize, 4usize);
    let (train, test) = SynthConfig {
        name: "iface".into(),
        train: 80,
        test: 30,
        dim: 16,
        classes: 2,
        cluster_std: 0.4,
        class_sep: 2.5,
        mode_spread: 0.4,
        hard_fraction: 0.0,
        ..SynthConfig::default()
    }
    .generate();
    let cnn = move |rng: &mut Rng64| small_cnn_on_flat(dims, 2, 2, rng);
    let mlp = |rng: &mut Rng64| nessa::nn::models::mlp(&[16, 8, 2], rng);
    for policy in [Policy::Goal, Policy::Craig { fraction: 0.5 }] {
        let a = run_policy(&policy, &train, &test, 2, 16, 5, &cnn).unwrap();
        let b = run_policy(&policy, &train, &test, 2, 16, 5, &mlp).unwrap();
        assert_eq!(a.epochs.len(), 2);
        assert_eq!(b.epochs.len(), 2);
    }
}
