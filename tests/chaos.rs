//! Chaos suite: the full pipeline under deterministic fault injection.
//!
//! Every test arms a seeded or explicit [`FaultPlan`] on the simulated
//! cluster and asserts the degradation ladder's contract end-to-end: the
//! run completes (or fails with the right typed error), accuracy stays
//! within tolerance of a fault-free run, and the fault-tolerance counters
//! (`fault.injected`, `retry.attempts`, `fallback.*`, `drive.evicted`,
//! `data.quarantined`) account for exactly what happened. All schedules
//! are op-indexed and all randomness is seeded, so each test replays a
//! byte-identical timeline on every execution.

use nessa::core::{NessaConfig, NessaPipeline, PipelineError, RetryPolicy, RunReport};
use nessa::data::SynthConfig;
use nessa::nn::models::mlp;
use nessa::smartssd::{DeviceError, FaultPlan, FaultSpec};
use nessa::telemetry::TelemetrySettings;
use nessa::tensor::rng::Rng64;
use proptest::prelude::*;

const EPOCHS: usize = 6;

/// The shared small fixture: easy synthetic blobs a tiny MLP learns in a
/// handful of epochs, so accuracy comparisons are stable.
fn pipeline_for(cfg: &NessaConfig) -> NessaPipeline {
    let synth = SynthConfig {
        train: 300,
        test: 120,
        dim: 8,
        classes: 3,
        cluster_std: 0.6,
        class_sep: 3.5,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut rng = Rng64::new(cfg.seed);
    let target = mlp(&[8, 24, 3], &mut rng);
    let selector = mlp(&[8, 24, 3], &mut rng);
    NessaPipeline::new(cfg.clone(), target, selector, train, test)
}

fn chaos_cfg(epochs: usize) -> NessaConfig {
    NessaConfig::new(0.3, epochs)
        .with_batch_size(32)
        .with_seed(7)
        .with_telemetry(TelemetrySettings::memory())
}

/// Runs `cfg` to completion, returning the report and the pipeline (for
/// counters and device state).
fn run(cfg: &NessaConfig) -> (RunReport, NessaPipeline) {
    let mut p = pipeline_for(cfg);
    let report = p.run().expect("chaos run should complete");
    (report, p)
}

fn counter(p: &NessaPipeline, name: &str) -> u64 {
    p.telemetry()
        .metrics_snapshot()
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn transient_read_errors_are_retried_to_completion() {
    // Two consecutive NAND read errors at scan op 2 (= epoch 2): the
    // default policy's three attempts absorb them without any fallback.
    let (clean, clean_p) = run(&chaos_cfg(EPOCHS));
    let cfg = chaos_cfg(EPOCHS).with_fault_plan(0, FaultPlan::none().with_read_error(2, 2));
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "retry.attempts"), 2);
    assert_eq!(counter(&p, "fault.injected"), 2);
    assert_eq!(counter(&p, "fallback.host"), 0);
    assert_eq!(counter(&p, "fallback.random"), 0);
    assert_eq!(counter(&p, "drive.evicted"), 0);
    // Retries only cost simulated time; the training outcome is
    // untouched.
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
    assert!(
        p.device().elapsed_secs() > clean_p.device().elapsed_secs(),
        "backoff must charge the drives' simulated clocks"
    );
}

#[test]
fn kernel_abort_falls_back_to_host_selection() {
    // A permanently failed kernel from kernel op 2 (= epoch 2) onward:
    // every later selection round retries, then stages the pool to the
    // host and selects there. Selection math is identical on the host,
    // so accuracy matches the fault-free run exactly.
    let clean = run(&chaos_cfg(EPOCHS)).0;
    let cfg =
        chaos_cfg(EPOCHS).with_fault_plan(0, FaultPlan::none().with_kernel_abort(2, u32::MAX));
    let (report, p) = run(&cfg);

    let failed_rounds = (EPOCHS - 2) as u64;
    assert_eq!(counter(&p, "fallback.host"), failed_rounds);
    assert_eq!(counter(&p, "retry.attempts"), 2 * failed_rounds);
    assert_eq!(counter(&p, "fallback.random"), 0);
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
    let spans = p.telemetry().spans();
    assert!(
        spans.iter().any(|s| s.name == "fallback"),
        "host fallback must be visible as a span"
    );
    assert!(spans.iter().any(|s| s.name == "retry"));
}

#[test]
fn host_read_failure_degrades_to_seeded_random_selection() {
    // Epoch 1: the kernel is permanently out AND the staged host read
    // hits a three-deep read-error burst, exhausting its retries — the
    // round must complete on the ladder's last rung (seeded random
    // picks). Epoch 2 onward the host read works again.
    let cfg = chaos_cfg(EPOCHS).with_fault_plan(
        0,
        FaultPlan::none()
            .with_kernel_abort(1, u32::MAX)
            .with_read_error(2, 3),
    );
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "fallback.random"), 1);
    assert_eq!(counter(&p, "fallback.host"), (EPOCHS - 1) as u64);
    assert_eq!(report.epochs.len(), EPOCHS);
    // One random round early on cannot keep the model from learning
    // this easy dataset.
    assert!(
        report.final_accuracy() > 0.6,
        "accuracy {}",
        report.final_accuracy()
    );
}

#[test]
fn drive_dropout_is_evicted_and_the_run_rebalances() {
    // Two drives; drive 1 drops off the bus during epoch 1. The cluster
    // evicts it, re-shards onto the survivor, and the run completes with
    // the same training outcome.
    let clean = run(&chaos_cfg(EPOCHS).with_drives(2)).0;
    let cfg = chaos_cfg(EPOCHS)
        .with_drives(2)
        .with_fault_plan(1, FaultPlan::none().with_dropout_after(6));
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert_eq!(p.device().len(), 1);
    assert_eq!(p.device().evicted(), 1);
    // Shards re-sum over the survivors.
    let shards = p.device().shard_counts(300);
    assert_eq!(shards.len(), 1);
    assert_eq!(shards.iter().sum::<u64>(), 300);
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
}

#[test]
fn pcie_stall_slows_the_run_but_changes_nothing_else() {
    // A latency spike on the first subset shipment: pure simulated time,
    // no retries, no fallback, identical training.
    let clean = run(&chaos_cfg(EPOCHS)).0;
    let cfg = chaos_cfg(EPOCHS).with_fault_plan(0, FaultPlan::none().with_pcie_stall(0, 0.75));
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "fault.injected"), 1);
    assert_eq!(counter(&p, "retry.attempts"), 0);
    assert_eq!(counter(&p, "fallback.host"), 0);
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
    let clean_secs: f64 = clean.epochs.iter().map(|e| e.total_secs()).sum();
    let fault_secs: f64 = report.epochs.iter().map(|e| e.total_secs()).sum();
    assert!(
        fault_secs > clean_secs + 0.7,
        "spike must appear in the timeline: {fault_secs} vs {clean_secs}"
    );
}

#[test]
fn corrupt_records_are_quarantined_and_counted() {
    // A scan delivers ten undecodable records in epoch 1: they are
    // counted, dropped from the candidate pool, and the run completes.
    let cfg = chaos_cfg(EPOCHS).with_fault_plan(0, FaultPlan::none().with_corrupt_read(1, 10));
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "data.quarantined"), 10);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert!(
        report.final_accuracy() > 0.6,
        "accuracy {}",
        report.final_accuracy()
    );
}

#[test]
fn losing_every_drive_is_a_typed_error() {
    // A single drive that drops out mid-epoch leaves no path to the
    // data: the run must stop with AllDrivesLost, not a panic.
    let cfg = chaos_cfg(EPOCHS).with_fault_plan(0, FaultPlan::none().with_dropout_after(3));
    let mut p = pipeline_for(&cfg);
    let err = p.run().unwrap_err();
    assert_eq!(err, PipelineError::AllDrivesLost { evicted: 1 });
    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert!(p.device().is_empty());
}

#[test]
fn offline_takes_precedence_over_transient_faults() {
    // Dropout and a read-error burst armed on the same ops: the drive is
    // offline, so the terminal error must win and evict immediately
    // instead of burning the retry budget.
    let cfg = chaos_cfg(EPOCHS).with_drives(2).with_fault_plan(
        0,
        FaultPlan::none()
            .with_dropout_after(0)
            .with_read_error(0, u32::MAX),
    );
    let (report, p) = run(&cfg);
    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert_eq!(counter(&p, "retry.attempts"), 0);
    assert_eq!(report.epochs.len(), EPOCHS);
}

#[test]
fn acceptance_kernel_failure_plus_drive_dropout() {
    // The issue's acceptance scenario: a two-drive cluster where drive 1
    // drops out during epoch 2 and drive 0's kernel fails permanently
    // from epoch 3 on. The run must complete end-to-end on the host
    // rung, with exactly one eviction, accuracy within two points of the
    // fault-free baseline, and a byte-identical report under the same
    // seed.
    let cfg = chaos_cfg(EPOCHS)
        .with_drives(2)
        .with_fault_plan(0, FaultPlan::none().with_kernel_abort(3, u32::MAX))
        .with_fault_plan(1, FaultPlan::none().with_dropout_after(10));

    let clean = run(&chaos_cfg(EPOCHS).with_drives(2)).0;
    let (report, p) = run(&cfg);

    assert_eq!(report.epochs.len(), EPOCHS, "run completes end-to-end");
    assert!(counter(&p, "fallback.host") >= 1);
    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert!(counter(&p, "fault.injected") >= 2);
    assert!(
        (report.final_accuracy() - clean.final_accuracy()).abs() <= 0.02,
        "chaos {} vs clean {}",
        report.final_accuracy(),
        clean.final_accuracy()
    );

    // Same seed, same plan: byte-identical RunReport JSONL.
    let again = run(&cfg).0;
    assert_eq!(report.to_jsonl(), again.to_jsonl());
}

#[test]
fn kernel_abort_during_overlapped_round_rides_the_ladder() {
    // Overlap on, permanent kernel failure from kernel op 2 onward. Round
    // 2 (selecting S_2) is in flight on the worker thread while epoch 1
    // trains, so the whole retry → host-fallback ladder runs *inside* the
    // overlapped round. The trained epochs must come out untouched: the
    // host rung selects with identical math, so the accuracy curve equals
    // the fault-free overlapped run's.
    let overlap_cfg = chaos_cfg(EPOCHS).with_overlap(true);
    let clean = run(&overlap_cfg).0;
    let cfg = overlap_cfg
        .clone()
        .with_fault_plan(0, FaultPlan::none().with_kernel_abort(2, u32::MAX));
    let (report, p) = run(&cfg);

    // Kernel op indices count rounds in both schedules, so the fault
    // hits exactly the rounds it would hit sequentially.
    let failed_rounds = (EPOCHS - 2) as u64;
    assert_eq!(counter(&p, "fallback.host"), failed_rounds);
    assert_eq!(counter(&p, "retry.attempts"), 2 * failed_rounds);
    assert_eq!(counter(&p, "fallback.random"), 0);
    assert_eq!(counter(&p, "drive.evicted"), 0);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
    // The ledger still reports a pipelined schedule: the ladder slows
    // rounds down but never silently de-pipelines them.
    for rec in &report.epochs {
        let o = rec.overlap.as_ref().expect("overlap mode records a ledger");
        assert_eq!(
            o.staleness,
            usize::from(rec.epoch > 0),
            "epoch {}",
            rec.epoch
        );
    }
}

#[test]
fn drive_dropout_during_inflight_overlapped_selection_evicts_cleanly() {
    // Two drives; drive 1 drops off the bus while a worker round is in
    // flight. The cluster must evict it, re-shard onto the survivor, and
    // finish the run with the same training outcome as a fault-free
    // overlapped run — an in-flight eviction may cost simulated time but
    // never picks or accuracy.
    let overlap_cfg = chaos_cfg(EPOCHS).with_drives(2).with_overlap(true);
    let clean = run(&overlap_cfg).0;
    let cfg = overlap_cfg
        .clone()
        .with_fault_plan(1, FaultPlan::none().with_dropout_after(7));
    let (report, p) = run(&cfg);

    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert_eq!(p.device().len(), 1);
    assert_eq!(p.device().evicted(), 1);
    let shards = p.device().shard_counts(300);
    assert_eq!(shards.iter().sum::<u64>(), 300);
    assert_eq!(report.epochs.len(), EPOCHS);
    assert_eq!(report.accuracy_curve(), clean.accuracy_curve());
}

#[test]
fn overlapped_chaos_replays_byte_identical() {
    // The acceptance scenario (kernel failure on drive 0 + dropout on
    // drive 1) with the overlapped scheduler on: faults land inside
    // worker rounds, yet the op-indexed plans and pre-split RNG streams
    // keep the replay byte-identical — thread interleaving must not leak
    // into fault timing any more than it leaks into clean runs.
    let cfg = chaos_cfg(EPOCHS)
        .with_drives(2)
        .with_overlap(true)
        .with_fault_plan(0, FaultPlan::none().with_kernel_abort(3, u32::MAX))
        .with_fault_plan(1, FaultPlan::none().with_dropout_after(10));
    let (report, p) = run(&cfg);
    let again = run(&cfg).0;

    assert_eq!(report.to_jsonl(), again.to_jsonl());
    assert_eq!(report.epochs.len(), EPOCHS);
    assert!(
        counter(&p, "fallback.host") >= 1,
        "ladder reaches the host rung"
    );
    assert_eq!(counter(&p, "drive.evicted"), 1);
    assert!(counter(&p, "fault.injected") >= 2);
}

/// Tiny fixture for the property runs: two easy classes, two epochs.
fn tiny_chaos_jsonl(seed: u64) -> String {
    let spec = FaultSpec {
        horizon_ops: 16,
        read_error_rate: 0.08,
        read_error_burst: 1,
        kernel_abort_rate: 0.08,
        kernel_abort_burst: 1,
        stall_rate: 0.1,
        stall_secs: (0.001, 0.05),
        corrupt_rate: 0.08,
        corrupt_records: 3,
        dropout_probability: 0.25,
    };
    let cfg = NessaConfig::new(0.4, 2)
        .with_batch_size(32)
        .with_seed(seed)
        .with_drives(2)
        .with_fault_plan(0, FaultPlan::seeded(seed, &spec));
    let synth = SynthConfig {
        train: 90,
        test: 40,
        dim: 4,
        classes: 2,
        cluster_std: 0.6,
        class_sep: 3.5,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut rng = Rng64::new(cfg.seed);
    let target = mlp(&[4, 10, 2], &mut rng);
    let selector = mlp(&[4, 10, 2], &mut rng);
    let mut p = NessaPipeline::new(cfg, target, selector, train, test);
    match p.run() {
        Ok(report) => report.to_jsonl(),
        Err(e) => format!("error: {e}"),
    }
}

proptest! {
    #[test]
    fn same_fault_seed_reproduces_identical_run_reports(seed in any::<u64>()) {
        // The whole point of op-indexed, seeded fault plans: re-running
        // the same chaos configuration replays the same run, byte for
        // byte — including runs the faults kill.
        prop_assert_eq!(tiny_chaos_jsonl(seed), tiny_chaos_jsonl(seed));
    }

    #[test]
    fn bounded_backoff_never_exceeds_the_stall_budget(
        budget in 0.0f64..12.0,
        base in 0.001f64..3.0,
        factor in 1.0f64..4.0,
        attempt in 0u32..20,
    ) {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: base,
            backoff_factor: factor,
            max_backoff_secs: 2.5,
        }
        .bounded_by(budget);
        let wait = policy.backoff_secs(attempt);
        prop_assert!(wait >= 0.0);
        prop_assert!(wait <= budget + 1e-12, "wait {} vs budget {}", wait, budget);
        // And therefore no retry sequence can exceed attempts × budget.
        prop_assert!(policy.total_backoff_secs() <= 3.0 * budget + 1e-9);
    }

    #[test]
    fn transient_errors_never_outlive_their_burst(failures in 1u32..3, at in 0u64..3) {
        // An explicit burst shorter than the retry budget is always
        // absorbed: the run completes without touching a fallback rung.
        let cfg = NessaConfig::new(0.4, 2)
            .with_batch_size(32)
            .with_seed(11)
            .with_telemetry(TelemetrySettings::memory())
            .with_fault_plan(0, FaultPlan::none().with_read_error(at, failures));
        let synth = SynthConfig {
            train: 90,
            test: 40,
            dim: 4,
            classes: 2,
            cluster_std: 0.6,
            class_sep: 3.5,
            ..SynthConfig::default()
        };
        let (train, test) = synth.generate();
        let mut rng = Rng64::new(cfg.seed);
        let target = mlp(&[4, 10, 2], &mut rng);
        let selector = mlp(&[4, 10, 2], &mut rng);
        let mut p = NessaPipeline::new(cfg, target, selector, train, test);
        prop_assert!(p.run().is_ok());
        let fired = counter(&p, "fault.injected");
        prop_assert!(fired <= failures as u64);
        prop_assert_eq!(counter(&p, "fallback.host"), 0);
        prop_assert_eq!(counter(&p, "fallback.random"), 0);
    }
}

#[test]
fn chaos_errors_format_for_operators() {
    // The typed errors the chaos paths produce must render actionably.
    let lost = PipelineError::AllDrivesLost { evicted: 3 };
    assert!(lost.to_string().contains("3 evicted"));
    let offline = DeviceError::Offline;
    assert!(!offline.is_transient());
}
