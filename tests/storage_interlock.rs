//! Integration tests across the storage stack: the on-flash record format,
//! the device byte accounting, and the FPGA capacity constraint driving
//! NeSSA's partitioning.

use nessa::data::{record, DatasetSpec, SynthConfig};
use nessa::smartssd::fpga::{FpgaSpec, KernelProfile};
use nessa::smartssd::{SmartSsd, SmartSsdConfig};

#[test]
fn encoded_dataset_matches_device_accounting() {
    let (train, _) = SynthConfig {
        train: 100,
        test: 10,
        dim: 16,
        classes: 5,
        bytes_per_sample: 2048,
        ..SynthConfig::default()
    }
    .generate();
    let encoded = record::encode_dataset(&train);
    let rec_len = record::record_len(train.dim(), train.bytes_per_sample()) as u64;
    // Stream exactly the encoded records through the device.
    let mut dev = SmartSsd::new(SmartSsdConfig::default());
    dev.read_records_to_fpga(train.len() as u64, rec_len)
        .expect("fault-free device");
    assert_eq!(
        dev.traffic().ssd_to_fpga + record::HEADER_LEN as u64,
        encoded.len() as u64,
        "device byte accounting must match the serialized footprint"
    );
    // And the stream decodes back to the identical dataset.
    let back = record::decode_dataset("roundtrip", &encoded).unwrap();
    assert_eq!(back.features().as_slice(), train.features().as_slice());
    assert_eq!(back.labels(), train.labels());
}

#[test]
fn every_table1_dataset_fits_after_partitioning() {
    // §3.2.3's premise: whole classes do NOT fit the FPGA's on-chip
    // memory at full scale, but mini-batch-sized chunks do.
    let spec = FpgaSpec::default();
    for ds in DatasetSpec::table1() {
        let per_class = ds.train_size / ds.classes;
        let whole_class = KernelProfile {
            samples: ds.train_size as u64,
            forward_macs_per_sample: 640,
            proxy_dim: ds.classes,
            chunk: per_class,
            k_per_chunk: 128,
        };
        let chunked = KernelProfile {
            chunk: 457,
            ..whole_class
        };
        assert!(
            chunked.check_fit(&spec).is_ok(),
            "{}: paper-sized chunk must fit",
            ds.name
        );
        if per_class > KernelProfile::max_chunk_for(&spec, ds.classes) {
            assert!(
                whole_class.check_fit(&spec).is_err(),
                "{}: whole class should overflow on-chip memory",
                ds.name
            );
        }
    }
}

#[test]
fn max_chunk_shrinks_with_proxy_dim() {
    let spec = FpgaSpec::default();
    let c10 = KernelProfile::max_chunk_for(&spec, 10);
    let c200 = KernelProfile::max_chunk_for(&spec, 200);
    assert!(c200 <= c10, "{c200} > {c10}");
}

#[test]
fn corrupted_streams_are_rejected_not_misread() {
    let (train, _) = SynthConfig {
        train: 20,
        test: 5,
        dim: 4,
        classes: 2,
        bytes_per_sample: 64,
        ..SynthConfig::default()
    }
    .generate();
    let mut bytes = record::encode_dataset(&train).to_vec();
    // Flip the record count upward: decode must fail, not over-read.
    let count_off = record::HEADER_LEN - 4;
    bytes[count_off] = 0xFF;
    assert!(record::decode_dataset("bad", &bytes).is_err());
}
