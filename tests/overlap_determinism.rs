//! Determinism harness for overlapped epoch pipelining.
//!
//! Three contracts, end to end:
//!
//! 1. **The sequential path is frozen.** With `overlap` off, the run
//!    report is byte-identical to the JSONL baseline checked in before
//!    the overlap refactor (`tests/fixtures/pr4_run_report.jsonl`) — the
//!    refactor that extracted the shared selection round moved code, not
//!    behavior.
//! 2. **The overlapped path is reproducible.** Two overlapped runs of
//!    the same seed produce byte-identical reports even though a worker
//!    thread races the trainer: every round draws from an RNG stream
//!    pre-split at run start, and all recorded times are simulated.
//! 3. **Concurrency adds no divergence of its own.** With the feedback
//!    loop off (so one-epoch-stale weights equal fresh weights and the
//!    trainer cannot influence selection), the overlapped schedule
//!    selects exactly the subsets the sequential schedule selects.
//!    Turning feedback back on routes the documented divergences in —
//!    the §3.2.1 one-epoch staleness, plus each mode's own trainer
//!    shuffle stream — and the prologue round (staleness 0, identical
//!    initial weights) still matches.

use nessa::core::{NessaConfig, NessaPipeline};
use nessa::data::SynthConfig;
use nessa::nn::models::mlp;
use nessa::tensor::rng::Rng64;

/// The exact fixture the PR-4 baseline was generated from.
fn baseline_pipeline(cfg: &NessaConfig) -> NessaPipeline {
    let synth = SynthConfig {
        train: 300,
        test: 120,
        dim: 8,
        classes: 3,
        cluster_std: 0.6,
        class_sep: 3.5,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut rng = Rng64::new(cfg.seed);
    let target = mlp(&[8, 24, 3], &mut rng);
    let selector = mlp(&[8, 24, 3], &mut rng);
    NessaPipeline::new(cfg.clone(), target, selector, train, test)
}

fn baseline_cfg() -> NessaConfig {
    NessaConfig::new(0.3, 6).with_batch_size(32).with_seed(7)
}

#[test]
fn sequential_report_is_byte_identical_to_pr4_baseline() {
    let report = baseline_pipeline(&baseline_cfg()).run().unwrap();
    let golden = include_str!("fixtures/pr4_run_report.jsonl");
    assert_eq!(
        report.to_jsonl(),
        golden,
        "sequential mode must reproduce the pre-overlap baseline byte for byte"
    );
}

#[test]
fn overlap_off_is_the_default() {
    // The baseline config never opts in, so the identity above really
    // exercises the default path.
    assert!(!baseline_cfg().overlap);
}

#[test]
fn overlapped_runs_are_byte_identical_across_executions() {
    let cfg = baseline_cfg().with_overlap(true);
    let a = baseline_pipeline(&cfg).run().unwrap();
    let b = baseline_pipeline(&cfg).run().unwrap();
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "thread interleaving must not leak into the report"
    );
    assert_eq!(a.accuracy_curve(), b.accuracy_curve());
    assert_eq!(a.traffic, b.traffic);
}

#[test]
fn overlapped_selection_matches_sequential_when_feedback_is_frozen() {
    // Feedback off ⇒ the selector keeps its initial weights forever, so
    // "one epoch stale" and "fresh" are the same weights. Biasing and
    // partitioning off ⇒ the candidate pool is static and the facility-
    // location picks are RNG-independent. Any remaining difference
    // between the schedules would be a concurrency bug.
    let cfg = baseline_cfg()
        .with_feedback(false)
        .with_subset_biasing(false)
        .with_partitioning(false);
    let mut seq = baseline_pipeline(&cfg);
    seq.run().unwrap();
    let mut ovl = baseline_pipeline(&cfg.clone().with_overlap(true));
    ovl.run().unwrap();
    assert_eq!(
        seq.selection_history(),
        ovl.selection_history(),
        "with feedback frozen the overlapped schedule must select identical subsets"
    );
}

#[test]
fn overlapped_selection_diverges_once_feedback_is_live() {
    // Same setup but with the feedback loop live: the overlapped worker
    // selects S_{e+1} with weights one epoch older than the sequential
    // schedule uses (and each mode trains with its own shuffle stream).
    // Epoch 0 (the synchronous prologue, staleness 0, identical initial
    // weights) still matches; later rounds differ.
    let cfg = baseline_cfg()
        .with_subset_biasing(false)
        .with_partitioning(false);
    let mut seq = baseline_pipeline(&cfg);
    seq.run().unwrap();
    let mut ovl = baseline_pipeline(&cfg.clone().with_overlap(true));
    let report = ovl.run().unwrap();
    let seq_hist = seq.selection_history();
    let ovl_hist = ovl.selection_history();
    assert_eq!(seq_hist.len(), ovl_hist.len());
    assert_eq!(
        seq_hist[0], ovl_hist[0],
        "the prologue round selects with identical (initial) weights"
    );
    assert_ne!(
        seq_hist, ovl_hist,
        "live feedback must surface the one-epoch staleness in later rounds"
    );
    // And the report says exactly that: staleness 0 at the prologue,
    // 1 everywhere else, never beyond the configured bound.
    for rec in &report.epochs {
        let o = rec.overlap.as_ref().expect("overlap mode records a ledger");
        let expect = usize::from(rec.epoch > 0);
        assert_eq!(o.staleness, expect, "epoch {}", rec.epoch);
    }
}

#[test]
fn zero_max_staleness_restores_sequential_selection() {
    // max_staleness == 0 forces every round back to the synchronous
    // path. With feedback frozen (the trainer's shuffle stream differs
    // between the two modes, so live feedback would diverge through the
    // trained weights) the schedule must select exactly like the
    // sequential reference, and the ledger must report staleness 0
    // everywhere.
    let cfg = baseline_cfg()
        .with_feedback(false)
        .with_subset_biasing(false)
        .with_partitioning(false);
    let mut seq = baseline_pipeline(&cfg);
    seq.run().unwrap();
    let mut sync = baseline_pipeline(&cfg.clone().with_overlap(true).with_max_staleness(0));
    let report = sync.run().unwrap();
    assert_eq!(
        seq.selection_history(),
        sync.selection_history(),
        "staleness 0 must select exactly like the sequential schedule"
    );
    for rec in &report.epochs {
        let o = rec.overlap.as_ref().expect("overlap mode records a ledger");
        assert_eq!(o.staleness, 0, "epoch {}", rec.epoch);
        assert!(
            o.sync_secs > 0.0,
            "epoch {} must select synchronously",
            rec.epoch
        );
        assert_eq!(o.select_side_secs, 0.0, "epoch {}", rec.epoch);
    }
}
