//! Robustness integration tests: the pipeline under injected label noise,
//! and distributed (multi-drive) selection quality.

use nessa::core::{run_policy, NessaConfig, Policy};
use nessa::data::{corrupt, SynthConfig};
use nessa::nn::models::mlp;
use nessa::select::facility::{GreedyVariant, SimilarityMatrix};
use nessa::select::greedi::greedi;
use nessa::tensor::rng::Rng64;

#[test]
fn pipeline_survives_label_noise() {
    let (train, test) = SynthConfig {
        train: 400,
        test: 160,
        dim: 12,
        classes: 4,
        cluster_std: 0.6,
        class_sep: 3.0,
        ..SynthConfig::default()
    }
    .generate();
    let mut rng = Rng64::new(1);
    let (noisy, _) = corrupt::inject_label_noise(&train, 0.2, &mut rng);
    let builder = |rng: &mut Rng64| mlp(&[12, 32, 4], rng);
    let clean = run_policy(
        &Policy::Nessa(NessaConfig::new(0.3, 10)),
        &train,
        &test,
        10,
        32,
        2,
        &builder,
    )
    .unwrap();
    let dirty = run_policy(
        &Policy::Nessa(NessaConfig::new(0.3, 10)),
        &noisy,
        &test,
        10,
        32,
        2,
        &builder,
    )
    .unwrap();
    // Noise hurts but must not collapse training (test labels are clean).
    assert!(
        clean.best_accuracy() > 0.8,
        "clean {}",
        clean.best_accuracy()
    );
    assert!(
        dirty.best_accuracy() > clean.best_accuracy() - 0.25,
        "noisy run collapsed: {} vs {}",
        dirty.best_accuracy(),
        clean.best_accuracy()
    );
}

#[test]
fn distributed_selection_matches_centralized_quality() {
    // GreeDi over 4 simulated drives vs centralized facility location on
    // real proxy-like data, judged by the facility objective.
    let (train, _) = SynthConfig {
        train: 300,
        test: 10,
        dim: 16,
        classes: 5,
        ..SynthConfig::default()
    }
    .generate();
    let feats = train.features();
    let sim = SimilarityMatrix::from_features(feats);
    let mut rng = Rng64::new(7);
    let central =
        nessa::select::facility::maximize(&sim, 30, GreedyVariant::Lazy, &mut rng).unwrap();
    let distributed = greedi(feats, 30, 4, GreedyVariant::Lazy, &mut rng).unwrap();
    let fc = sim.objective(&central.indices);
    let fd = sim.objective(&distributed.indices);
    assert!(fd >= 0.92 * fc, "distributed {fd} vs centralized {fc}");
    // Weights still cover the whole ground set.
    let total: f32 = distributed.weights.iter().sum();
    assert_eq!(total, 300.0);
}

#[test]
fn weight_temper_extremes_both_train() {
    let (train, test) = SynthConfig {
        train: 300,
        test: 120,
        dim: 12,
        classes: 4,
        ..SynthConfig::default()
    }
    .generate();
    let builder = |rng: &mut Rng64| mlp(&[12, 24, 4], rng);
    for temper in [0.0f32, 0.5, 1.0] {
        let mut cfg = NessaConfig::new(0.25, 8);
        cfg.weight_temper = temper;
        let r = run_policy(&Policy::Nessa(cfg), &train, &test, 8, 32, 3, &builder).unwrap();
        assert!(
            r.best_accuracy() > 0.5,
            "temper {temper}: accuracy {}",
            r.best_accuracy()
        );
    }
}
