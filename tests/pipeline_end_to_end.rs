//! End-to-end integration tests: the full NeSSA pipeline against the
//! paper's baselines on a shared synthetic dataset, spanning every crate
//! in the workspace.

use nessa::core::{run_policy, NessaConfig, Policy};
use nessa::data::{Dataset, SynthConfig};
use nessa::nn::models::{mlp, Network};
use nessa::tensor::rng::Rng64;

const EPOCHS: usize = 12;
const BATCH: usize = 32;

fn dataset() -> (Dataset, Dataset) {
    SynthConfig {
        name: "integration".into(),
        train: 600,
        test: 240,
        dim: 16,
        classes: 6,
        clusters_per_class: 5,
        cluster_std: 0.9,
        class_sep: 3.2,
        mode_spread: 0.4,
        hard_fraction: 0.15,
        hard_std_multiplier: 2.5,
        bytes_per_sample: 3000,
        seed: 99,
    }
    .generate()
}

fn builder(rng: &mut Rng64) -> Network {
    mlp(&[16, 48, 6], rng)
}

#[test]
fn nessa_tracks_full_data_accuracy_within_margin() {
    let (train, test) = dataset();
    let goal = run_policy(&Policy::Goal, &train, &test, EPOCHS, BATCH, 5, &builder).unwrap();
    let nessa = run_policy(
        &Policy::Nessa(NessaConfig::new(0.3, EPOCHS)),
        &train,
        &test,
        EPOCHS,
        BATCH,
        5,
        &builder,
    )
    .unwrap();
    let gap = goal.best_accuracy() - nessa.best_accuracy();
    assert!(
        goal.best_accuracy() > 0.75,
        "goal should learn this dataset: {}",
        goal.best_accuracy()
    );
    // The paper's Table 2 shows a 1-2 point gap at these operating
    // points; allow a wider band at this tiny scale.
    assert!(gap < 0.08, "accuracy gap too large: {gap}");
}

#[test]
fn nessa_beats_kcenters_at_small_subsets() {
    // Table 3's headline contrast: at a 10 % subset, NeSSA's facility
    // location far outperforms outlier-chasing K-Centers.
    let (train, test) = dataset();
    let nessa = run_policy(
        &Policy::Nessa(NessaConfig::new(0.1, EPOCHS)),
        &train,
        &test,
        EPOCHS,
        BATCH,
        6,
        &builder,
    )
    .unwrap();
    let kc = run_policy(
        &Policy::KCenters { fraction: 0.1 },
        &train,
        &test,
        EPOCHS,
        BATCH,
        6,
        &builder,
    )
    .unwrap();
    assert!(
        nessa.best_accuracy() >= kc.best_accuracy() - 0.02,
        "nessa {} vs kcenters {}",
        nessa.best_accuracy(),
        kc.best_accuracy()
    );
}

#[test]
fn near_storage_traffic_is_reduced() {
    let (train, test) = dataset();
    let nessa = run_policy(
        &Policy::Nessa(NessaConfig::new(0.25, EPOCHS)),
        &train,
        &test,
        EPOCHS,
        BATCH,
        7,
        &builder,
    )
    .unwrap();
    let t = nessa.traffic;
    // Interconnect traffic (subset + feedback) must be well below what
    // staying on-board avoided.
    assert!(t.ssd_to_fpga > 0 && t.fpga_to_host > 0 && t.host_to_fpga > 0);
    let reduction = t.ssd_to_fpga as f64 / t.fpga_to_host as f64;
    assert!(
        reduction > 2.0,
        "on-board/interconnect ratio only {reduction:.2}"
    );
    assert!(nessa.device_energy_j > 0.0);
}

#[test]
fn subset_biasing_and_sizing_compose() {
    let (train, test) = dataset();
    let mut cfg = NessaConfig::new(0.4, EPOCHS).with_dynamic_sizing(true);
    cfg.biasing_drop_every = 3;
    cfg.biasing_drop_fraction = 0.15;
    cfg.sizing_threshold = 0.2;
    let report = run_policy(
        &Policy::Nessa(cfg),
        &train,
        &test,
        EPOCHS,
        BATCH,
        8,
        &builder,
    )
    .unwrap();
    let first = report.epochs.first().unwrap();
    let last = report.epochs.last().unwrap();
    assert!(last.pool_size < first.pool_size, "pool never pruned");
    assert!(report.best_accuracy() > 0.6, "{}", report.best_accuracy());
}

#[test]
fn parallel_selection_matches_sequential() {
    // Per-class selection on 4 worker threads must produce the same run
    // as sequential selection (RNGs are pre-split per class).
    let (train, test) = dataset();
    let seq = run_policy(
        &Policy::Nessa(NessaConfig::new(0.3, 4).with_threads(1)),
        &train,
        &test,
        4,
        BATCH,
        11,
        &builder,
    )
    .unwrap();
    let par = run_policy(
        &Policy::Nessa(NessaConfig::new(0.3, 4).with_threads(4)),
        &train,
        &test,
        4,
        BATCH,
        11,
        &builder,
    )
    .unwrap();
    assert_eq!(seq.accuracy_curve(), par.accuracy_curve());
    assert_eq!(seq.traffic, par.traffic);
}

#[test]
fn full_run_is_deterministic() {
    let (train, test) = dataset();
    let cfg = NessaConfig::new(0.3, 5);
    let a = run_policy(
        &Policy::Nessa(cfg.clone()),
        &train,
        &test,
        5,
        BATCH,
        9,
        &builder,
    )
    .unwrap();
    let b = run_policy(&Policy::Nessa(cfg), &train, &test, 5, BATCH, 9, &builder).unwrap();
    assert_eq!(a.accuracy_curve(), b.accuracy_curve());
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn random_baseline_is_worse_or_equal_on_redundant_data() {
    let (train, test) = dataset();
    let nessa = run_policy(
        &Policy::Nessa(NessaConfig::new(0.15, EPOCHS)),
        &train,
        &test,
        EPOCHS,
        BATCH,
        10,
        &builder,
    )
    .unwrap();
    let rand = run_policy(
        &Policy::Random { fraction: 0.15 },
        &train,
        &test,
        EPOCHS,
        BATCH,
        10,
        &builder,
    )
    .unwrap();
    // Informative selection should not lose to random by any real margin.
    assert!(
        nessa.best_accuracy() >= rand.best_accuracy() - 0.04,
        "nessa {} vs random {}",
        nessa.best_accuracy(),
        rand.best_accuracy()
    );
}
