//! Property-based tests (proptest) over the workspace's core invariants.

use nessa::core::{NessaConfig, NessaPipeline};
use nessa::data::{record, Dataset, SynthConfig};
use nessa::nn::models::mlp;
use nessa::quant::QuantizedTensor;
use nessa::select::facility::{maximize, GreedyVariant, SimilarityMatrix};
use nessa::select::{fraction_count, kcenters};
use nessa::smartssd::nand::NandArray;
use nessa::telemetry::extract_num_field;
use nessa::tensor::approx::approx_eq_f64;
use nessa::tensor::linalg::{cross_sq_dists, pairwise_sq_dists};
use nessa::tensor::rng::Rng64;
use nessa::tensor::Tensor;
use proptest::prelude::*;

fn small_features() -> impl Strategy<Value = Tensor> {
    (2usize..24, 1usize..6, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = Rng64::new(seed);
        Tensor::rand_uniform(&[n, d], -5.0, 5.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn fraction_count_bounds(n in 0usize..10_000, f in 0.0001f32..1.0) {
        let k = fraction_count(n, f);
        prop_assert!(k <= n);
        if n > 0 {
            prop_assert!(k >= 1);
            // Never selects more than one extra sample beyond the exact
            // fractional amount.
            prop_assert!((k as f64) < n as f64 * f as f64 + 1.0 + 1e-6);
        } else {
            prop_assert_eq!(k, 0);
        }
    }

    #[test]
    fn facility_objective_is_monotone(feats in small_features(), seed in any::<u64>()) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(seed);
        let n = sim.len();
        let mut set: Vec<usize> = Vec::new();
        let mut prev = 0.0f32;
        for _ in 0..n.min(6) {
            let cand = rng.index(n);
            if set.contains(&cand) { continue; }
            set.push(cand);
            let cur = sim.objective(&set);
            prop_assert!(cur >= prev - 1e-2 * prev.abs().max(1.0),
                "objective decreased: {} -> {}", prev, cur);
            prev = cur;
        }
    }

    #[test]
    fn facility_weights_sum_to_pool(feats in small_features(), k in 1usize..8, seed in any::<u64>()) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(seed);
        let sel = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
        let total: f32 = sel.weights.iter().sum();
        prop_assert!((total - sim.len() as f32).abs() < 1e-3);
        prop_assert!(sel.weights.iter().all(|&w| w >= 1.0));
        // No duplicate picks.
        let mut sorted = sel.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
    }

    #[test]
    fn lazy_greedy_matches_naive_objective(feats in small_features(), k in 1usize..6) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(0);
        let k = k.min(sim.len());
        let lazy = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
        let naive = maximize(&sim, k, GreedyVariant::Naive, &mut rng).unwrap();
        let fl = sim.objective(&lazy.indices);
        let fn_ = sim.objective(&naive.indices);
        prop_assert!((fl - fn_).abs() <= 1e-2 * fn_.abs().max(1.0),
            "lazy {} vs naive {}", fl, fn_);
    }

    #[test]
    fn kcenters_objective_never_worse_than_singletons(feats in small_features(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let n = feats.dim(0);
        let k = (n / 2).max(1);
        let sel = kcenters::select(&feats, k, &mut rng);
        let multi = kcenters::max_min_dist(&feats, &sel.indices);
        let single = kcenters::max_min_dist(&feats, &sel.indices[..1]);
        prop_assert!(multi <= single + 1e-4);
    }

    #[test]
    fn quantization_round_trip_error_bounded(vals in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let t = Tensor::from_slice(&vals);
        let q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-4;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn record_round_trip_any_shape(
        n in 1usize..40,
        dim in 1usize..12,
        classes in 1usize..8,
        pad in 0usize..512,
        seed in any::<u64>()
    ) {
        let mut rng = Rng64::new(seed);
        let feats = Tensor::rand_uniform(&[n, dim], -10.0, 10.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|_| rng.index(classes)).collect();
        let ds = Dataset::new("prop", feats, labels, classes, 4 + 4 * dim + pad);
        let enc = record::encode_dataset(&ds);
        let back = record::decode_dataset("prop", &enc).unwrap();
        prop_assert_eq!(back.labels(), ds.labels());
        prop_assert_eq!(back.features().as_slice(), ds.features().as_slice());
    }

    #[test]
    fn pairwise_distances_satisfy_metric_basics(feats in small_features()) {
        let d = pairwise_sq_dists(&feats);
        let n = feats.dim(0);
        for i in 0..n {
            prop_assert_eq!(d.at(&[i, i]), 0.0);
            for j in 0..n {
                prop_assert!(d.at(&[i, j]) >= 0.0);
                prop_assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn cross_dists_diagonal_matches_pairwise(feats in small_features()) {
        let d1 = pairwise_sq_dists(&feats);
        let d2 = cross_sq_dists(&feats, &feats);
        for i in 0..feats.dim(0) {
            for j in 0..feats.dim(0) {
                prop_assert!((d1.at(&[i, j]) - d2.at(&[i, j])).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn nand_read_time_is_monotone_and_counts_bytes(
        a in 1u64..1_000_000,
        b in 1u64..1_000_000
    ) {
        let mut nand = NandArray::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = nand.read(lo);
        let t_hi = nand.read(hi);
        prop_assert!(t_hi >= t_lo);
        prop_assert_eq!(nand.bytes_read(), lo + hi);
    }

    #[test]
    fn synth_generation_is_seed_deterministic(seed in any::<u64>()) {
        let cfg = SynthConfig { train: 30, test: 10, dim: 4, classes: 3, seed, ..SynthConfig::default() };
        let (a, _) = cfg.generate();
        let (b, _) = cfg.generate();
        prop_assert_eq!(a.features().as_slice(), b.features().as_slice());
        prop_assert_eq!(a.labels(), b.labels());
    }
}

/// A tiny but complete pipeline for the overlap properties below: 90
/// training samples keep a full overlapped run in the low milliseconds,
/// so proptest can afford to drive the real thing.
fn overlap_pipeline(cfg: &NessaConfig) -> NessaPipeline {
    let synth = SynthConfig {
        train: 90,
        test: 30,
        dim: 6,
        classes: 3,
        cluster_std: 0.6,
        class_sep: 3.0,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut rng = Rng64::new(cfg.seed);
    let target = mlp(&[6, 12, 3], &mut rng);
    let selector = mlp(&[6, 12, 3], &mut rng);
    NessaPipeline::new(cfg.clone(), target, selector, train, test)
}

proptest! {
    #[test]
    fn overlap_epoch_total_composes_as_max(seed in any::<u64>(), epochs in 2usize..5) {
        // The serialized ledger must agree with itself: re-deriving
        // `total_s` from the JSONL's own `sync_s`/`select_side_s`/
        // `train_s`/`handoff_s` fields reproduces the critical-path
        // composition `sync + max(select_side, train) + handoff`.
        let cfg = NessaConfig::new(0.4, epochs)
            .with_batch_size(16)
            .with_seed(seed)
            .with_overlap(true);
        let report = overlap_pipeline(&cfg).run().unwrap();
        let jsonl = report.to_jsonl();
        for (line, rec) in jsonl.lines().zip(&report.epochs) {
            let get = |field: &str| extract_num_field(line, field)
                .unwrap_or_else(|| panic!("epoch line missing {field}: {line}"));
            let composed = get("sync_s") + get("select_side_s").max(get("train_s")) + get("handoff_s");
            prop_assert!(approx_eq_f64(get("total_s"), composed, 1e-12),
                "epoch {}: total_s {} != composed {}", rec.epoch, get("total_s"), composed);
            prop_assert!(approx_eq_f64(rec.total_secs(), get("total_s"), 1e-12));
            let o = rec.overlap.as_ref().expect("overlap mode records a ledger");
            // The hidden device time never exceeds either side.
            let hidden = o.select_side_secs.min(o.train_secs);
            prop_assert!(hidden <= o.select_side_secs && hidden <= o.train_secs);
        }
    }

    #[test]
    fn staleness_never_exceeds_the_configured_bound(
        seed in any::<u64>(),
        max_staleness in 0usize..3,
        epochs in 2usize..5
    ) {
        let cfg = NessaConfig::new(0.4, epochs)
            .with_batch_size(16)
            .with_seed(seed)
            .with_overlap(true)
            .with_max_staleness(max_staleness);
        let report = overlap_pipeline(&cfg).run().unwrap();
        for rec in &report.epochs {
            let o = rec.overlap.as_ref().expect("overlap mode records a ledger");
            prop_assert!(o.staleness <= max_staleness,
                "epoch {}: staleness {} > bound {}", rec.epoch, o.staleness, max_staleness);
            // Single-buffer pipelining never lets feedback age past one
            // epoch regardless of how lax the bound is (§3.2.1).
            prop_assert!(o.staleness <= 1);
            if max_staleness == 0 {
                prop_assert!(o.select_side_secs == 0.0,
                    "staleness 0 must force every round synchronous");
            }
        }
    }

    #[test]
    fn selection_is_independent_of_worker_thread_count(seed in any::<u64>()) {
        // Per-class RNG streams are pre-split before any class worker
        // runs, so carving the classes across 1 vs 4 threads must not
        // change a single pick — or a single byte of the report.
        let cfg = NessaConfig::new(0.4, 3)
            .with_batch_size(16)
            .with_seed(seed)
            .with_overlap(true);
        let mut one = overlap_pipeline(&cfg.clone().with_threads(1));
        let a = one.run().unwrap();
        let mut four = overlap_pipeline(&cfg.clone().with_threads(4));
        let b = four.run().unwrap();
        prop_assert_eq!(one.selection_history(), four.selection_history());
        prop_assert_eq!(a.to_jsonl(), b.to_jsonl());
    }
}
