//! Property-based tests (proptest) over the workspace's core invariants.

use nessa::data::{record, Dataset, SynthConfig};
use nessa::quant::QuantizedTensor;
use nessa::select::facility::{maximize, GreedyVariant, SimilarityMatrix};
use nessa::select::{fraction_count, kcenters};
use nessa::smartssd::nand::NandArray;
use nessa::tensor::linalg::{cross_sq_dists, pairwise_sq_dists};
use nessa::tensor::rng::Rng64;
use nessa::tensor::Tensor;
use proptest::prelude::*;

fn small_features() -> impl Strategy<Value = Tensor> {
    (2usize..24, 1usize..6, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = Rng64::new(seed);
        Tensor::rand_uniform(&[n, d], -5.0, 5.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn fraction_count_bounds(n in 0usize..10_000, f in 0.0001f32..1.0) {
        let k = fraction_count(n, f);
        prop_assert!(k <= n);
        if n > 0 {
            prop_assert!(k >= 1);
            // Never selects more than one extra sample beyond the exact
            // fractional amount.
            prop_assert!((k as f64) < n as f64 * f as f64 + 1.0 + 1e-6);
        } else {
            prop_assert_eq!(k, 0);
        }
    }

    #[test]
    fn facility_objective_is_monotone(feats in small_features(), seed in any::<u64>()) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(seed);
        let n = sim.len();
        let mut set: Vec<usize> = Vec::new();
        let mut prev = 0.0f32;
        for _ in 0..n.min(6) {
            let cand = rng.index(n);
            if set.contains(&cand) { continue; }
            set.push(cand);
            let cur = sim.objective(&set);
            prop_assert!(cur >= prev - 1e-2 * prev.abs().max(1.0),
                "objective decreased: {} -> {}", prev, cur);
            prev = cur;
        }
    }

    #[test]
    fn facility_weights_sum_to_pool(feats in small_features(), k in 1usize..8, seed in any::<u64>()) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(seed);
        let sel = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
        let total: f32 = sel.weights.iter().sum();
        prop_assert!((total - sim.len() as f32).abs() < 1e-3);
        prop_assert!(sel.weights.iter().all(|&w| w >= 1.0));
        // No duplicate picks.
        let mut sorted = sel.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sel.len());
    }

    #[test]
    fn lazy_greedy_matches_naive_objective(feats in small_features(), k in 1usize..6) {
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(0);
        let k = k.min(sim.len());
        let lazy = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
        let naive = maximize(&sim, k, GreedyVariant::Naive, &mut rng).unwrap();
        let fl = sim.objective(&lazy.indices);
        let fn_ = sim.objective(&naive.indices);
        prop_assert!((fl - fn_).abs() <= 1e-2 * fn_.abs().max(1.0),
            "lazy {} vs naive {}", fl, fn_);
    }

    #[test]
    fn kcenters_objective_never_worse_than_singletons(feats in small_features(), seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let n = feats.dim(0);
        let k = (n / 2).max(1);
        let sel = kcenters::select(&feats, k, &mut rng);
        let multi = kcenters::max_min_dist(&feats, &sel.indices);
        let single = kcenters::max_min_dist(&feats, &sel.indices[..1]);
        prop_assert!(multi <= single + 1e-4);
    }

    #[test]
    fn quantization_round_trip_error_bounded(vals in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let t = Tensor::from_slice(&vals);
        let q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-4;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    #[test]
    fn record_round_trip_any_shape(
        n in 1usize..40,
        dim in 1usize..12,
        classes in 1usize..8,
        pad in 0usize..512,
        seed in any::<u64>()
    ) {
        let mut rng = Rng64::new(seed);
        let feats = Tensor::rand_uniform(&[n, dim], -10.0, 10.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|_| rng.index(classes)).collect();
        let ds = Dataset::new("prop", feats, labels, classes, 4 + 4 * dim + pad);
        let enc = record::encode_dataset(&ds);
        let back = record::decode_dataset("prop", &enc).unwrap();
        prop_assert_eq!(back.labels(), ds.labels());
        prop_assert_eq!(back.features().as_slice(), ds.features().as_slice());
    }

    #[test]
    fn pairwise_distances_satisfy_metric_basics(feats in small_features()) {
        let d = pairwise_sq_dists(&feats);
        let n = feats.dim(0);
        for i in 0..n {
            prop_assert_eq!(d.at(&[i, i]), 0.0);
            for j in 0..n {
                prop_assert!(d.at(&[i, j]) >= 0.0);
                prop_assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn cross_dists_diagonal_matches_pairwise(feats in small_features()) {
        let d1 = pairwise_sq_dists(&feats);
        let d2 = cross_sq_dists(&feats, &feats);
        for i in 0..feats.dim(0) {
            for j in 0..feats.dim(0) {
                prop_assert!((d1.at(&[i, j]) - d2.at(&[i, j])).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn nand_read_time_is_monotone_and_counts_bytes(
        a in 1u64..1_000_000,
        b in 1u64..1_000_000
    ) {
        let mut nand = NandArray::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = nand.read(lo);
        let t_hi = nand.read(hi);
        prop_assert!(t_hi >= t_lo);
        prop_assert_eq!(nand.bytes_read(), lo + hi);
    }

    #[test]
    fn synth_generation_is_seed_deterministic(seed in any::<u64>()) {
        let cfg = SynthConfig { train: 30, test: 10, dim: 4, classes: 3, seed, ..SynthConfig::default() };
        let (a, _) = cfg.generate();
        let (b, _) = cfg.generate();
        prop_assert_eq!(a.features().as_slice(), b.features().as_slice());
        prop_assert_eq!(a.labels(), b.labels());
    }
}
