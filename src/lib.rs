//! # NeSSA — Near-Storage Data Selection for Accelerated ML Training
//!
//! A full-system Rust reproduction of *NeSSA* (Prakriya et al.,
//! HotStorage '23): a SmartSSD+GPU training architecture that selects
//! coresets of large datasets **inside the storage device**, so only the
//! most informative samples ever cross the interconnect to the GPU.
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`tensor`] — dense `f32` tensors, linear algebra, seeded RNG,
//! * [`nn`] — the neural-network training engine and GPU cost models,
//! * [`data`] — the Table-1 dataset catalog and synthetic generators,
//! * [`select`] — facility-location (CRAIG), K-Centers, k-medoids, random,
//! * [`quant`] — int8 quantization for the FPGA feedback loop,
//! * [`smartssd`] — the discrete-event SmartSSD simulator,
//! * [`core`] — the assembled NeSSA pipeline, baselines, and timing,
//! * [`telemetry`] — spans, metrics, and timeline/JSONL run profiling.
//!
//! # Quickstart
//!
//! ```
//! use nessa::core::{run_policy, NessaConfig, Policy};
//! use nessa::data::SynthConfig;
//! use nessa::nn::models::mlp;
//! use nessa::tensor::rng::Rng64;
//!
//! // A small synthetic dataset (10 classes, CIFAR-like redundancy).
//! let (train, test) = SynthConfig::default().generate();
//!
//! // Train on 30 % of the data selected near-storage each epoch.
//! let policy = Policy::Nessa(NessaConfig::new(0.3, 5));
//! let report = run_policy(
//!     &policy, &train, &test, 5, 64, 42,
//!     &|rng: &mut Rng64| mlp(&[32, 64, 10], rng),
//! )
//! .unwrap();
//! println!("{report}");
//! assert_eq!(report.epochs.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nessa_core as core;
pub use nessa_data as data;
pub use nessa_nn as nn;
pub use nessa_quant as quant;
pub use nessa_select as select;
pub use nessa_smartssd as smartssd;
pub use nessa_telemetry as telemetry;
pub use nessa_tensor as tensor;

// The types most users touch first, re-exported at the crate root.
pub use nessa_core::{run_policy, NessaConfig, NessaPipeline, Policy, RunReport};
pub use nessa_data::{Dataset, DatasetSpec, SynthConfig};
pub use nessa_smartssd::{SmartSsd, SmartSsdConfig};
