//! Property tests for the log-bucket histogram: bucket-edge monotonicity,
//! count conservation, and percentile bounds.

use nessa_telemetry::Histogram;
use proptest::prelude::*;

#[test]
fn bucket_upper_edges_are_strictly_increasing() {
    let edges = Histogram::bucket_upper_edges();
    assert!(!edges.is_empty());
    for pair in edges.windows(2) {
        assert!(
            pair[1] > pair[0],
            "edges must be strictly increasing: {} !> {}",
            pair[1],
            pair[0]
        );
    }
}

proptest! {
    #[test]
    fn bucket_counts_conserve_observations(xs in prop::collection::vec(1e-10f64..1e4, 1..64)) {
        let h = Histogram::default();
        for &x in &xs {
            h.observe(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        let total: u64 = h.bucket_counts().iter().sum();
        prop_assert_eq!(total, xs.len() as u64);
    }

    #[test]
    fn quantiles_stay_within_observed_range(xs in prop::collection::vec(1e-9f64..1e3, 1..64)) {
        let h = Histogram::default();
        for &x in &xs {
            h.observe(x);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty histogram");
            prop_assert!(v >= lo, "q{q}: {v} < min {lo}");
            prop_assert!(v <= hi, "q{q}: {v} > max {hi}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(xs in prop::collection::vec(1e-9f64..1e3, 1..64)) {
        let h = Histogram::default();
        for &x in &xs {
            h.observe(x);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
    }

    #[test]
    fn min_max_bracket_every_observation(xs in prop::collection::vec(1e-10f64..1e4, 1..48)) {
        let h = Histogram::default();
        for &x in &xs {
            h.observe(x);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), Some(lo));
        prop_assert_eq!(h.max(), Some(hi));
        prop_assert!(h.sum() >= 0.0);
    }
}
