//! Parse-back of the telemetry JSONL stream.
//!
//! The sink side ([`crate::sink`]) writes one JSON object per line; this
//! module is its inverse: a small recursive-descent JSON parser (still
//! zero-dependency) plus a typed decoder that turns each line back into a
//! [`TelemetryEvent`]. The offline trace analyzer (`nessa-trace`) builds
//! entirely on this API, and the legacy field extractors in
//! [`crate::sink`] are reimplemented on top of it so escaped quotes and
//! nested objects are handled correctly.

use crate::metrics::HistogramSummary;
use crate::span::{AttrValue, SpanRecord};
use crate::DeviceEvent;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving field order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
        let mut p = Parser { text, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != text.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Field lookup on an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON syntax or schema error, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{c}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some('-' | '+' | '.' | 'e' | 'E' | '0'..='9')) {
            self.bump();
        }
        self.text[start..self.pos]
            .parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| ParseError {
                offset: start,
                message: format!("invalid number '{}'", &self.text[start..self.pos]),
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex = self
                            .text
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("invalid \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our encoder;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(JsonValue::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// One decoded line of a telemetry JSONL stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A completed host span.
    Span(SpanRecord),
    /// A bridged device-trace event (simulated clock).
    Device(DeviceEvent),
    /// A counter value at flush time.
    Counter {
        /// Metric name.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// A gauge value at flush time.
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: f64,
    },
    /// A histogram summary at flush time.
    Histogram {
        /// Metric name.
        name: String,
        /// Count/sum/min/max and quantile estimates.
        summary: HistogramSummary,
    },
    /// A line of a type this decoder does not know (e.g. the `epoch` /
    /// `run` lines of `RunReport::to_jsonl`); carried through verbatim so
    /// mixed artifacts stay loadable.
    Other(JsonValue),
}

fn num_attr(v: f64) -> AttrValue {
    if v.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&v) {
        AttrValue::U64(v as u64)
    } else if v.fract() == 0.0 && v >= i64::MIN as f64 && v < 0.0 {
        AttrValue::I64(v as i64)
    } else {
        AttrValue::F64(v)
    }
}

fn field_f64(obj: &JsonValue, key: &str, line_err: &str) -> Result<f64, ParseError> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ParseError {
            offset: 0,
            message: format!("{line_err}: missing numeric field '{key}'"),
        })
}

fn field_str(obj: &JsonValue, key: &str, line_err: &str) -> Result<String, ParseError> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| ParseError {
            offset: 0,
            message: format!("{line_err}: missing string field '{key}'"),
        })
}

/// Decodes one JSONL line into a [`TelemetryEvent`].
///
/// Unknown `type` values decode to [`TelemetryEvent::Other`]; lines that
/// are not JSON objects (or have no `type` field) are errors.
pub fn parse_line(line: &str) -> Result<TelemetryEvent, ParseError> {
    let value = JsonValue::parse(line.trim())?;
    let ty = field_str(&value, "type", "event line")?;
    match ty.as_str() {
        "span" => {
            let parent = field_f64(&value, "parent", "span line")? as u64;
            let mut attrs = Vec::new();
            if let Some(fields) = value.get("attrs").and_then(JsonValue::as_obj) {
                for (k, v) in fields {
                    let attr = match v {
                        JsonValue::Num(n) => num_attr(*n),
                        JsonValue::Str(s) => AttrValue::Str(s.clone()),
                        // Non-finite floats encode as null (see
                        // `json::number`); surface them as NaN.
                        JsonValue::Null => AttrValue::F64(f64::NAN),
                        other => AttrValue::Str(format!("{other:?}")),
                    };
                    attrs.push((k.clone(), attr));
                }
            }
            Ok(TelemetryEvent::Span(SpanRecord {
                id: field_f64(&value, "id", "span line")? as u64,
                parent: (parent != 0).then_some(parent),
                name: field_str(&value, "name", "span line")?,
                attrs,
                // `start_s` is absent in pre-trace-analyzer artifacts;
                // treat those spans as starting at the stream origin.
                start_secs: value
                    .get("start_s")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0),
                wall_secs: field_f64(&value, "wall_s", "span line")?,
                sim_secs: field_f64(&value, "sim_s", "span line")?,
            }))
        }
        "device" => Ok(TelemetryEvent::Device(DeviceEvent {
            phase: field_str(&value, "phase", "device line")?,
            start_s: field_f64(&value, "start_s", "device line")?,
            duration_s: field_f64(&value, "duration_s", "device line")?,
            bytes: field_f64(&value, "bytes", "device line")? as u64,
        })),
        "counter" => Ok(TelemetryEvent::Counter {
            name: field_str(&value, "name", "counter line")?,
            value: field_f64(&value, "value", "counter line")? as u64,
        }),
        "gauge" => Ok(TelemetryEvent::Gauge {
            name: field_str(&value, "name", "gauge line")?,
            value: field_f64(&value, "value", "gauge line")?,
        }),
        "histogram" => Ok(TelemetryEvent::Histogram {
            name: field_str(&value, "name", "histogram line")?,
            summary: HistogramSummary {
                count: field_f64(&value, "count", "histogram line")? as u64,
                sum: field_f64(&value, "sum", "histogram line")?,
                min: field_f64(&value, "min", "histogram line")?,
                max: field_f64(&value, "max", "histogram line")?,
                p50: field_f64(&value, "p50", "histogram line")?,
                p95: field_f64(&value, "p95", "histogram line")?,
                p99: field_f64(&value, "p99", "histogram line")?,
            },
        }),
        _ => Ok(TelemetryEvent::Other(value)),
    }
}

/// Decodes a whole JSONL stream, skipping blank lines. The error carries
/// the 1-based line number of the first offending line.
pub fn parse_stream(text: &str) -> Result<Vec<TelemetryEvent>, StreamError> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l).map_err(|error| StreamError { line: i + 1, error }))
        .collect()
}

/// A [`ParseError`] tagged with the line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamError {
    /// 1-based line number.
    pub line: usize,
    /// The underlying parse error.
    pub error: ParseError,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{device_event_line, span_line};

    #[test]
    fn parses_scalars_and_structure() {
        let v = JsonValue::parse(r#"{"a":1.5,"b":[true,null,"x"],"c":{"d":-2e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2e3));
    }

    #[test]
    fn decodes_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{}x"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn span_line_round_trips() {
        let rec = SpanRecord {
            id: 7,
            parent: Some(3),
            name: "select".into(),
            attrs: vec![
                ("epoch".into(), 2usize.into()),
                ("note".into(), "a\"b".into()),
                ("gain".into(), 0.75f64.into()),
            ],
            start_secs: 1.25,
            wall_secs: 0.5,
            sim_secs: 0.1 + 0.2,
        };
        match parse_line(&span_line(&rec)).unwrap() {
            TelemetryEvent::Span(back) => assert_eq!(back, rec),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn device_line_round_trips() {
        let ev = DeviceEvent {
            phase: "scan".into(),
            start_s: 0.5,
            duration_s: 0.25,
            bytes: 4096,
        };
        match parse_line(&device_event_line(&ev)).unwrap() {
            TelemetryEvent::Device(back) => assert_eq!(back, ev),
            other => panic!("expected device, got {other:?}"),
        }
    }

    #[test]
    fn span_without_start_s_defaults_to_origin() {
        let legacy = r#"{"type":"span","id":1,"parent":0,"name":"epoch","wall_s":0.5,"sim_s":1.0,"attrs":{}}"#;
        match parse_line(legacy).unwrap() {
            TelemetryEvent::Span(rec) => {
                assert_eq!(rec.start_secs, 0.0);
                assert_eq!(rec.parent, None);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn unknown_type_is_carried_through() {
        let line = r#"{"type":"epoch","epoch":3,"test_acc":0.9}"#;
        match parse_line(line).unwrap() {
            TelemetryEvent::Other(v) => {
                assert_eq!(v.get("type").unwrap().as_str(), Some("epoch"));
            }
            other => panic!("expected other, got {other:?}"),
        }
    }

    #[test]
    fn stream_reports_offending_line() {
        let text = "{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n\nnot json\n";
        let err = parse_stream(text).unwrap_err();
        assert_eq!(err.line, 3);
    }
}
