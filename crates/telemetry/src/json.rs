//! A minimal JSON encoder — just enough to emit telemetry event lines.
//!
//! The telemetry crate is intentionally zero-dependency, so instead of a
//! serde derive this module provides a small append-only object builder.
//! Numbers use Rust's `Display` for `f64`, which is the shortest string
//! that round-trips to the same bit pattern, so simulated-clock seconds
//! written here can be re-parsed exactly (the profiling binary relies on
//! this for its span-vs-report agreement check).

use std::fmt::Write as _;

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An append-only JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", quote(key), quote(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", quote(key), value);
        self
    }

    /// Adds a signed integer field.
    pub fn i64_field(mut self, key: &str, value: i64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", quote(key), value);
        self
    }

    /// Adds a float field (`null` if non-finite).
    pub fn f64_field(mut self, key: &str, value: f64) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", quote(key), number(value));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal).
    pub fn raw_field(mut self, key: &str, raw: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, "{}:{}", quote(key), raw);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip() {
        let v = 0.1 + 0.2;
        assert_eq!(number(v).parse::<f64>().unwrap(), v);
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn object_builder_renders_fields_in_order() {
        let s = JsonObject::new()
            .str_field("type", "span")
            .u64_field("id", 7)
            .f64_field("sim_s", 1.5)
            .raw_field("attrs", "{}")
            .finish();
        assert_eq!(s, r#"{"type":"span","id":7,"sim_s":1.5,"attrs":{}}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
