//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! All handles are cheap `Arc` clones backed by atomics, so instrumented
//! code can stash them once (e.g. per-batch loss counters in the trainer)
//! and update them from hot loops without locking. Histograms use
//! log-spaced fixed buckets: [`BUCKETS_PER_DECADE`] buckets per decade
//! between `10^MIN_DECADE` and `10^MAX_DECADE`, plus underflow/overflow
//! buckets, giving ~±15% relative quantile error with zero allocation on
//! the observe path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram resolution: buckets per power of ten.
pub const BUCKETS_PER_DECADE: usize = 8;
/// Smallest finite bucket edge is `10^MIN_DECADE`.
pub const MIN_DECADE: i32 = -9;
/// Largest finite bucket edge is `10^MAX_DECADE`.
pub const MAX_DECADE: i32 = 3;
/// Number of finite buckets (underflow and overflow are extra).
pub const FINITE_BUCKETS: usize = ((MAX_DECADE - MIN_DECADE) as usize) * BUCKETS_PER_DECADE;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge (stored as `f64` bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    // underflow | FINITE_BUCKETS log-spaced | overflow
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits_times_1e9: AtomicU64, // sum * 1e9 rounded, for lock-free accumulation
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A fixed-bucket, log-spaced histogram of non-negative values.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..FINITE_BUCKETS + 2).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits_times_1e9: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }
}

/// Upper edge of finite bucket `i` (0-based within the finite range).
fn finite_edge(i: usize) -> f64 {
    10f64.powf(MIN_DECADE as f64 + (i as f64 + 1.0) / BUCKETS_PER_DECADE as f64)
}

/// Index into the bucket array (0 = underflow, last = overflow).
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 10f64.powi(MIN_DECADE) {
        return 0; // underflow (also NaN and non-positive values)
    }
    if v > 10f64.powi(MAX_DECADE) {
        return FINITE_BUCKETS + 1;
    }
    let pos = (v.log10() - MIN_DECADE as f64) * BUCKETS_PER_DECADE as f64;
    // ceil-1 gives the first bucket whose upper edge is >= v; clamp guards
    // float edge cases at the decade boundaries.
    (pos.ceil() as usize).clamp(1, FINITE_BUCKETS)
}

impl Histogram {
    /// Records one observation. Negative and NaN values land in the
    /// underflow bucket and do not perturb min/max.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let nano = (v.abs() * 1e9).round() as u64;
            let signed = if v < 0.0 { 0 } else { nano };
            inner
                .sum_bits_times_1e9
                .fetch_add(signed, Ordering::Relaxed);
            atomic_min_f64(&inner.min_bits, v);
            atomic_max_f64(&inner.max_bits, v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Approximate sum of non-negative observations (1 ns resolution).
    pub fn sum(&self) -> f64 {
        self.0.sum_bits_times_1e9.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Smallest finite observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.min_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Largest finite observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        let v = f64::from_bits(self.0.max_bits.load(Ordering::Relaxed));
        v.is_finite().then_some(v)
    }

    /// Raw bucket counts: underflow, finite buckets, overflow.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper edges of the finite buckets, ascending.
    pub fn bucket_upper_edges() -> Vec<f64> {
        (0..FINITE_BUCKETS).map(finite_edge).collect()
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper edge of the
    /// first bucket whose cumulative count reaches `q * count`, clamped
    /// to the observed `[min, max]` range. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let counts = self.bucket_counts();
        let mut cumulative = 0u64;
        let mut raw = f64::INFINITY;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                raw = if i == 0 {
                    10f64.powi(MIN_DECADE)
                } else if i <= FINITE_BUCKETS {
                    finite_edge(i - 1)
                } else {
                    f64::INFINITY
                };
                break;
            }
        }
        let lo = self.min().unwrap_or(raw);
        let hi = self.max().unwrap_or(raw);
        Some(raw.clamp(lo, hi))
    }
}

fn atomic_min_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_max_f64(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A point-in-time rendering of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Summary statistics for one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// A named collection of counters, gauges, and histograms.
///
/// Handles returned by the accessor methods stay live after the registry
/// is snapshot; re-requesting a name returns a clone of the same metric.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Returns (creating if needed) the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (creating if needed) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns (creating if needed) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Captures every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min().unwrap_or(0.0),
                            max: h.max().unwrap_or(0.0),
                            p50: h.quantile(0.50).unwrap_or(0.0),
                            p95: h.quantile(0.95).unwrap_or(0.0),
                            p99: h.quantile(0.99).unwrap_or(0.0),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let reg = MetricsRegistry::default();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x").get(), 5);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::default();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_quantiles_bounded_by_observations() {
        let h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64 / 100.0);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((0.01..=1.0).contains(&p50), "p50={p50}");
        assert!(p99 >= p50 && p99 <= 1.0, "p99={p99}");
        assert!((h.sum() - 50.5).abs() < 1e-6);
        assert_eq!(h.min(), Some(0.01));
        assert_eq!(h.max(), Some(1.0));
    }

    #[test]
    fn histogram_single_value_quantiles_collapse() {
        let h = Histogram::default();
        h.observe(0.125);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.125));
        }
    }

    #[test]
    fn histogram_handles_out_of_range() {
        let h = Histogram::default();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(1e12);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 4);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 3); // 0, -3, NaN underflow
        assert_eq!(*counts.last().unwrap(), 1); // 1e12 overflow
    }

    #[test]
    fn bucket_edges_ascend() {
        let edges = Histogram::bucket_upper_edges();
        assert_eq!(edges.len(), FINITE_BUCKETS);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn snapshot_lists_all_metrics() {
        let reg = MetricsRegistry::default();
        reg.counter("a").inc();
        reg.gauge("b").set(2.0);
        reg.histogram("c").observe(0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 1)]);
        assert_eq!(snap.gauges, vec![("b".to_string(), 2.0)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
