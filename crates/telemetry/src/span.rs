//! Completed-span records and attribute values.

use std::fmt;

/// A typed span/event attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (epoch numbers, counts, byte totals).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rates, fractions).
    F64(f64),
    /// Short string (labels, variant names).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::F64(v as f64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the run (1-based; 0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `"epoch"` or `"scan"`.
    pub name: String,
    /// Key/value attributes attached while the span was open.
    pub attrs: Vec<(String, AttrValue)>,
    /// Host wall-clock offset of the span's open, in seconds since the
    /// telemetry stream was created (0 for artifacts written before this
    /// field existed).
    pub start_secs: f64,
    /// Host wall-clock duration in seconds.
    pub wall_secs: f64,
    /// Simulated-device seconds attributed to this span (0 when the span
    /// covers host-only work).
    pub sim_secs: f64,
}

impl SpanRecord {
    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: the attribute as a `u64` if it is one.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            Some(AttrValue::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The span's dominant-clock cost: the larger of its simulated-device
    /// and host wall seconds. Device-attributed phases (scan/select/ship/
    /// feedback) are dominated by the sim clock; host-only phases (train)
    /// by the wall clock. Critical-path extraction ranks spans by this.
    pub fn cost_secs(&self) -> f64 {
        self.sim_secs.max(self.wall_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_lookup_by_key() {
        let rec = SpanRecord {
            id: 1,
            parent: None,
            name: "scan".into(),
            attrs: vec![("epoch".into(), 3usize.into()), ("note".into(), "x".into())],
            start_secs: 0.0,
            wall_secs: 0.0,
            sim_secs: 0.5,
        };
        assert_eq!(rec.attr_u64("epoch"), Some(3));
        assert_eq!(rec.attr("note"), Some(&AttrValue::Str("x".into())));
        assert_eq!(rec.attr("missing"), None);
        assert_eq!(rec.cost_secs(), 0.5);
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(5u64), AttrValue::U64(5));
        assert_eq!(AttrValue::from(-2i32), AttrValue::I64(-2));
        assert_eq!(AttrValue::from(1.5f64), AttrValue::F64(1.5));
        assert_eq!(AttrValue::from("hi").to_string(), "hi");
    }
}
