//! The single sanctioned source of host wall-clock readings.
//!
//! NeSSA's selection results must be bit-reproducible under a fixed seed:
//! the trace-diff regression gates compare simulated-clock metrics across
//! runs, and the paper's ablations assume identical subsets for identical
//! seeds. Wall-clock reads are therefore quarantined: every monotonic
//! timestamp in the workspace is taken here (or by the SmartSSD
//! simulator's own `SimClock`, which is virtual and deterministic), and
//! `nessa-lint` rule **D1** rejects `Instant::now` / `SystemTime::now`
//! anywhere else. Wall time may *decorate* telemetry (span durations,
//! health heartbeats) but must never *decide* anything on the selection
//! path.

pub use std::time::Instant;

/// Reads the monotonic host clock.
///
/// This is the only place outside the SmartSSD simulator's virtual
/// `SimClock` where the workspace consults real time.
pub fn now() -> Instant {
    Instant::now()
}

/// Seconds elapsed since `earlier`, as `f64`.
pub fn secs_since(earlier: Instant) -> f64 {
    earlier.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(secs_since(a) >= 0.0);
    }
}
