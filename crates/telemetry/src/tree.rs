//! A reconstructed span hierarchy.
//!
//! Spans are collected (and streamed) flat, in completion order, with
//! parent links by id. [`SpanTree`] indexes that flat list into a
//! walkable tree: the timeline renderer, the offline trace analyzer, and
//! the critical-path extraction all traverse the same structure.

use crate::span::SpanRecord;
use std::collections::BTreeMap;

/// An indexed view over a flat list of completed spans.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    spans: Vec<SpanRecord>,
    by_id: BTreeMap<u64, usize>,
    children: BTreeMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the tree. Spans whose parent id is unknown (e.g. the parent
    /// never closed) are treated as roots. Within a level, the original
    /// (completion) order is preserved.
    pub fn build(spans: Vec<SpanRecord>) -> Self {
        let by_id: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match s.parent.filter(|p| by_id.contains_key(p)) {
                Some(p) => children.entry(p).or_default().push(i),
                None => roots.push(i),
            }
        }
        Self {
            spans,
            by_id,
            children,
            roots,
        }
    }

    /// All spans, in the original order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of spans in the tree.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the tree has no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks up a span by id.
    pub fn get(&self, id: u64) -> Option<&SpanRecord> {
        self.by_id.get(&id).map(|&i| &self.spans[i])
    }

    /// The top-level spans.
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.roots.iter().map(|&i| &self.spans[i])
    }

    /// The direct children of span `id`.
    pub fn children(&self, id: u64) -> impl Iterator<Item = &SpanRecord> {
        self.children
            .get(&id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.spans[i])
    }

    /// Depth-first pre-order walk; `visit` receives each span and its
    /// depth (roots are depth 0).
    pub fn walk(&self, mut visit: impl FnMut(&SpanRecord, usize)) {
        fn rec(
            tree: &SpanTree,
            idx: usize,
            depth: usize,
            visit: &mut impl FnMut(&SpanRecord, usize),
        ) {
            let span = &tree.spans[idx];
            visit(span, depth);
            if let Some(kids) = tree.children.get(&span.id) {
                for &k in kids {
                    rec(tree, k, depth + 1, visit);
                }
            }
        }
        for &r in &self.roots {
            rec(self, r, 0, &mut visit);
        }
    }

    /// The chain of most-expensive descendants starting at span `id`
    /// (inclusive), where a span's cost is [`SpanRecord::cost_secs`] — the
    /// critical path through that subtree at span granularity.
    pub fn critical_path(&self, id: u64) -> Vec<&SpanRecord> {
        let mut path = Vec::new();
        let mut cur = self.get(id);
        while let Some(span) = cur {
            path.push(span);
            cur = self
                .children(span.id)
                .max_by(|a, b| a.cost_secs().total_cmp(&b.cost_secs()));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &str, wall: f64, sim: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            attrs: Vec::new(),
            start_secs: 0.0,
            wall_secs: wall,
            sim_secs: sim,
        }
    }

    fn sample() -> SpanTree {
        SpanTree::build(vec![
            span(2, Some(1), "scan", 0.01, 0.4),
            span(3, Some(1), "select", 0.02, 1.5),
            span(4, Some(3), "greedy", 0.015, 1.2),
            span(1, None, "epoch", 0.5, 1.9),
            span(5, Some(9), "orphan", 0.1, 0.0),
        ])
    }

    #[test]
    fn roots_children_and_lookup() {
        let tree = sample();
        let roots: Vec<&str> = tree.roots().map(|s| s.name.as_str()).collect();
        assert_eq!(roots, vec!["epoch", "orphan"]);
        let kids: Vec<&str> = tree.children(1).map(|s| s.name.as_str()).collect();
        assert_eq!(kids, vec!["scan", "select"]);
        assert_eq!(tree.get(4).unwrap().name, "greedy");
        assert!(tree.get(99).is_none());
    }

    #[test]
    fn walk_is_preorder_with_depths() {
        let tree = sample();
        let mut seen = Vec::new();
        tree.walk(|s, d| seen.push((s.name.clone(), d)));
        assert_eq!(
            seen,
            vec![
                ("epoch".to_string(), 0),
                ("scan".to_string(), 1),
                ("select".to_string(), 1),
                ("greedy".to_string(), 2),
                ("orphan".to_string(), 0),
            ]
        );
    }

    #[test]
    fn critical_path_follows_max_cost() {
        let tree = sample();
        let path: Vec<&str> = tree
            .critical_path(1)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(path, vec!["epoch", "select", "greedy"]);
    }

    #[test]
    fn empty_tree_is_safe() {
        let tree = SpanTree::build(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.roots().count(), 0);
        assert!(tree.critical_path(1).is_empty());
    }
}
