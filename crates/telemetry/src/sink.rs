//! Output sinks: JSONL line encoding and the human-readable timeline.

use crate::json::JsonObject;
use crate::metrics::MetricsSnapshot;
use crate::parse::JsonValue;
use crate::span::{AttrValue, SpanRecord};
use crate::DeviceEvent;
use std::fmt::Write as _;

fn attrs_json(attrs: &[(String, AttrValue)]) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in attrs {
        obj = match v {
            AttrValue::U64(v) => obj.u64_field(k, *v),
            AttrValue::I64(v) => obj.i64_field(k, *v),
            AttrValue::F64(v) => obj.f64_field(k, *v),
            AttrValue::Str(v) => obj.str_field(k, v),
        };
    }
    obj.finish()
}

/// Encodes one span as a JSONL event line (no trailing newline).
pub fn span_line(rec: &SpanRecord) -> String {
    let mut obj = JsonObject::new()
        .str_field("type", "span")
        .u64_field("id", rec.id)
        .u64_field("parent", rec.parent.unwrap_or(0))
        .str_field("name", &rec.name)
        .f64_field("start_s", rec.start_secs)
        .f64_field("wall_s", rec.wall_secs)
        .f64_field("sim_s", rec.sim_secs);
    obj = obj.raw_field("attrs", &attrs_json(&rec.attrs));
    obj.finish()
}

/// Encodes one bridged device-trace event as a JSONL line.
pub fn device_event_line(ev: &DeviceEvent) -> String {
    JsonObject::new()
        .str_field("type", "device")
        .str_field("phase", &ev.phase)
        .f64_field("start_s", ev.start_s)
        .f64_field("duration_s", ev.duration_s)
        .u64_field("bytes", ev.bytes)
        .finish()
}

/// Encodes every metric in the snapshot, one JSONL line per metric.
pub fn metrics_lines(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, value) in &snapshot.counters {
        lines.push(
            JsonObject::new()
                .str_field("type", "counter")
                .str_field("name", name)
                .u64_field("value", *value)
                .finish(),
        );
    }
    for (name, value) in &snapshot.gauges {
        lines.push(
            JsonObject::new()
                .str_field("type", "gauge")
                .str_field("name", name)
                .f64_field("value", *value)
                .finish(),
        );
    }
    for (name, h) in &snapshot.histograms {
        lines.push(
            JsonObject::new()
                .str_field("type", "histogram")
                .str_field("name", name)
                .u64_field("count", h.count)
                .f64_field("sum", h.sum)
                .f64_field("min", h.min)
                .f64_field("max", h.max)
                .f64_field("p50", h.p50)
                .f64_field("p95", h.p95)
                .f64_field("p99", h.p99)
                .finish(),
        );
    }
    lines
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s > 0.0 {
        format!("{:.1}us", s * 1e6)
    } else {
        "-".to_string()
    }
}

/// Renders the human-readable timeline: the span tree followed by a
/// metrics summary.
pub fn render_timeline(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("telemetry timeline\n");
    out.push_str("  spans (sim = simulated device clock, wall = host clock):\n");
    if spans.is_empty() {
        out.push_str("    (none)\n");
    } else {
        let tree = crate::tree::SpanTree::build(spans.to_vec());
        tree.walk(|rec, depth| {
            let indent = "  ".repeat(depth + 2);
            let attrs = rec
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{indent}{:<24} sim {:>10}  wall {:>10}  {attrs}",
                rec.name,
                fmt_secs(rec.sim_secs),
                fmt_secs(rec.wall_secs),
            );
        });
    }
    if !snapshot.counters.is_empty() {
        out.push_str("  counters:\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "    {name:<32} {value}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "    {name:<32} {value:.6}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("  histograms (count / p50 / p95 / p99 / max):\n");
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "    {name:<32} {} / {:.3e} / {:.3e} / {:.3e} / {:.3e}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    out
}

/// Looks up `key` in a parsed line: at the top level first, then inside
/// the `attrs` sub-object (span lines keep their attributes nested).
fn lookup<'a>(line: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    line.get(key)
        .or_else(|| line.get("attrs").and_then(|a| a.get(key)))
}

/// Extracts a string field from a JSONL line (top level or span attrs).
///
/// Built on the full parser in [`crate::parse`], so escaped quotes and
/// nested objects are handled correctly; returns `None` for lines that do
/// not parse as a JSON object or lack a string-valued `key`.
pub fn extract_str_field(line: &str, key: &str) -> Option<String> {
    let value = JsonValue::parse(line.trim()).ok()?;
    lookup(&value, key)?.as_str().map(str::to_string)
}

/// Extracts a numeric (or integer) field from a JSONL line (top level or
/// span attrs). See [`extract_str_field`] for parsing behavior.
pub fn extract_num_field(line: &str, key: &str) -> Option<f64> {
    let value = JsonValue::parse(line.trim()).ok()?;
    lookup(&value, key)?.as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "scan".into(),
            attrs: vec![("epoch".into(), 0usize.into())],
            start_secs: 0.125,
            wall_secs: 0.001,
            sim_secs: 0.25,
        }
    }

    #[test]
    fn span_line_shape() {
        let line = span_line(&sample_span());
        assert_eq!(extract_str_field(&line, "type").as_deref(), Some("span"));
        assert_eq!(extract_str_field(&line, "name").as_deref(), Some("scan"));
        assert_eq!(extract_num_field(&line, "start_s"), Some(0.125));
        assert_eq!(extract_num_field(&line, "sim_s"), Some(0.25));
        assert_eq!(extract_num_field(&line, "parent"), Some(1.0));
        assert_eq!(extract_num_field(&line, "epoch"), Some(0.0));
    }

    #[test]
    fn extractors_survive_escaped_quotes_and_nesting() {
        // A string value containing an escaped quote and something that
        // looks like another field must not confuse later lookups.
        let line = r#"{"type":"span","name":"a\"b","trap":"\"sim_s\":999,","attrs":{"label":"x,y"},"sim_s":0.5}"#;
        assert_eq!(extract_str_field(line, "name").as_deref(), Some("a\"b"));
        assert_eq!(extract_num_field(line, "sim_s"), Some(0.5));
        assert_eq!(extract_str_field(line, "label").as_deref(), Some("x,y"));
        // Nested-object values don't terminate the scan early.
        let nested = r#"{"a":{"b":{"c":1}},"d":2}"#;
        assert_eq!(extract_num_field(nested, "d"), Some(2.0));
        // Whole-line garbage returns None instead of a bogus match.
        assert_eq!(extract_num_field("not json \"d\":3", "d"), None);
    }

    #[test]
    fn device_line_shape() {
        let ev = DeviceEvent {
            phase: "select".into(),
            start_s: 1.0,
            duration_s: 0.5,
            bytes: 4096,
        };
        let line = device_event_line(&ev);
        assert_eq!(extract_str_field(&line, "phase").as_deref(), Some("select"));
        assert_eq!(extract_num_field(&line, "bytes"), Some(4096.0));
    }

    #[test]
    fn sim_seconds_round_trip_through_jsonl() {
        let mut rec = sample_span();
        rec.sim_secs = 0.1 + 0.2; // classic non-representable sum
        let line = span_line(&rec);
        assert_eq!(extract_num_field(&line, "sim_s"), Some(rec.sim_secs));
    }

    #[test]
    fn timeline_renders_tree_and_metrics() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "epoch".into(),
                attrs: vec![("epoch".into(), 0usize.into())],
                start_secs: 0.0,
                wall_secs: 0.5,
                sim_secs: 2.0,
            },
            sample_span(),
        ];
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("train.batches".into(), 12));
        let text = render_timeline(&spans, &snap);
        assert!(text.contains("epoch"));
        assert!(text.contains("scan"));
        assert!(text.contains("train.batches"));
        // child indented deeper than parent
        let epoch_indent = text.lines().find(|l| l.contains("epoch ")).unwrap();
        let scan_indent = text.lines().find(|l| l.contains("scan ")).unwrap();
        let lead = |s: &str| s.len() - s.trim_start().len();
        assert!(lead(scan_indent) > lead(epoch_indent));
    }
}
