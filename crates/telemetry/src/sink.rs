//! Output sinks: JSONL line encoding and the human-readable timeline.

use crate::json::{quote, JsonObject};
use crate::metrics::MetricsSnapshot;
use crate::span::{AttrValue, SpanRecord};
use crate::DeviceEvent;
use std::fmt::Write as _;

fn attrs_json(attrs: &[(String, AttrValue)]) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in attrs {
        obj = match v {
            AttrValue::U64(v) => obj.u64_field(k, *v),
            AttrValue::I64(v) => obj.i64_field(k, *v),
            AttrValue::F64(v) => obj.f64_field(k, *v),
            AttrValue::Str(v) => obj.str_field(k, v),
        };
    }
    obj.finish()
}

/// Encodes one span as a JSONL event line (no trailing newline).
pub fn span_line(rec: &SpanRecord) -> String {
    let mut obj = JsonObject::new()
        .str_field("type", "span")
        .u64_field("id", rec.id)
        .u64_field("parent", rec.parent.unwrap_or(0))
        .str_field("name", &rec.name)
        .f64_field("wall_s", rec.wall_secs)
        .f64_field("sim_s", rec.sim_secs);
    obj = obj.raw_field("attrs", &attrs_json(&rec.attrs));
    obj.finish()
}

/// Encodes one bridged device-trace event as a JSONL line.
pub fn device_event_line(ev: &DeviceEvent) -> String {
    JsonObject::new()
        .str_field("type", "device")
        .str_field("phase", &ev.phase)
        .f64_field("start_s", ev.start_s)
        .f64_field("duration_s", ev.duration_s)
        .u64_field("bytes", ev.bytes)
        .finish()
}

/// Encodes every metric in the snapshot, one JSONL line per metric.
pub fn metrics_lines(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, value) in &snapshot.counters {
        lines.push(
            JsonObject::new()
                .str_field("type", "counter")
                .str_field("name", name)
                .u64_field("value", *value)
                .finish(),
        );
    }
    for (name, value) in &snapshot.gauges {
        lines.push(
            JsonObject::new()
                .str_field("type", "gauge")
                .str_field("name", name)
                .f64_field("value", *value)
                .finish(),
        );
    }
    for (name, h) in &snapshot.histograms {
        lines.push(
            JsonObject::new()
                .str_field("type", "histogram")
                .str_field("name", name)
                .u64_field("count", h.count)
                .f64_field("sum", h.sum)
                .f64_field("min", h.min)
                .f64_field("max", h.max)
                .f64_field("p50", h.p50)
                .f64_field("p95", h.p95)
                .f64_field("p99", h.p99)
                .finish(),
        );
    }
    lines
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s > 0.0 {
        format!("{:.1}us", s * 1e6)
    } else {
        "-".to_string()
    }
}

fn render_span_tree(out: &mut String, spans: &[SpanRecord], parent: Option<u64>, depth: usize) {
    for rec in spans.iter().filter(|r| r.parent == parent) {
        let indent = "  ".repeat(depth + 1);
        let attrs = rec
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{indent}{:<24} sim {:>10}  wall {:>10}  {attrs}",
            rec.name,
            fmt_secs(rec.sim_secs),
            fmt_secs(rec.wall_secs),
        );
        render_span_tree(out, spans, Some(rec.id), depth + 1);
    }
}

/// Renders the human-readable timeline: the span tree followed by a
/// metrics summary.
pub fn render_timeline(spans: &[SpanRecord], snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("telemetry timeline\n");
    out.push_str("  spans (sim = simulated device clock, wall = host clock):\n");
    if spans.is_empty() {
        out.push_str("    (none)\n");
    } else {
        render_span_tree(&mut out, spans, None, 1);
    }
    if !snapshot.counters.is_empty() {
        out.push_str("  counters:\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "    {name:<32} {value}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "    {name:<32} {value:.6}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("  histograms (count / p50 / p95 / p99 / max):\n");
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "    {name:<32} {} / {:.3e} / {:.3e} / {:.3e} / {:.3e}",
                h.count, h.p50, h.p95, h.p99, h.max
            );
        }
    }
    out
}

/// Quick structural validation used by tests and the profiling binary:
/// checks that a line is a braced object and extracts a string field.
pub fn extract_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("{}:", quote(key));
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if !rest.starts_with('"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts a numeric (or integer) field from a JSONL line.
pub fn extract_num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("{}:", quote(key));
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> SpanRecord {
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "scan".into(),
            attrs: vec![("epoch".into(), 0usize.into())],
            wall_secs: 0.001,
            sim_secs: 0.25,
        }
    }

    #[test]
    fn span_line_shape() {
        let line = span_line(&sample_span());
        assert_eq!(extract_str_field(&line, "type").as_deref(), Some("span"));
        assert_eq!(extract_str_field(&line, "name").as_deref(), Some("scan"));
        assert_eq!(extract_num_field(&line, "sim_s"), Some(0.25));
        assert_eq!(extract_num_field(&line, "parent"), Some(1.0));
        assert_eq!(extract_num_field(&line, "epoch"), Some(0.0));
    }

    #[test]
    fn device_line_shape() {
        let ev = DeviceEvent {
            phase: "select".into(),
            start_s: 1.0,
            duration_s: 0.5,
            bytes: 4096,
        };
        let line = device_event_line(&ev);
        assert_eq!(extract_str_field(&line, "phase").as_deref(), Some("select"));
        assert_eq!(extract_num_field(&line, "bytes"), Some(4096.0));
    }

    #[test]
    fn sim_seconds_round_trip_through_jsonl() {
        let mut rec = sample_span();
        rec.sim_secs = 0.1 + 0.2; // classic non-representable sum
        let line = span_line(&rec);
        assert_eq!(extract_num_field(&line, "sim_s"), Some(rec.sim_secs));
    }

    #[test]
    fn timeline_renders_tree_and_metrics() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "epoch".into(),
                attrs: vec![("epoch".into(), 0usize.into())],
                wall_secs: 0.5,
                sim_secs: 2.0,
            },
            sample_span(),
        ];
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("train.batches".into(), 12));
        let text = render_timeline(&spans, &snap);
        assert!(text.contains("epoch"));
        assert!(text.contains("scan"));
        assert!(text.contains("train.batches"));
        // child indented deeper than parent
        let epoch_indent = text.lines().find(|l| l.contains("epoch ")).unwrap();
        let scan_indent = text.lines().find(|l| l.contains("scan ")).unwrap();
        let lead = |s: &str| s.len() - s.trim_start().len();
        assert!(lead(scan_indent) > lead(epoch_indent));
    }
}
