//! Unified telemetry for the NeSSA pipeline.
//!
//! Three pieces, zero external dependencies:
//!
//! * **Spans** — hierarchical RAII timers ([`Telemetry::span`]) that
//!   capture host wall-clock time automatically and accept
//!   simulated-device seconds explicitly (the SmartSSD simulator runs on
//!   a virtual clock, so sim time must be attributed by the caller).
//! * **Metrics** — a registry of named counters, gauges, and log-bucket
//!   histograms ([`Telemetry::counter`] et al.), cheap enough for
//!   per-batch hot loops.
//! * **Sinks** — everything is collected in memory; on top of that the
//!   `Timeline` mode prints a human-readable span tree + metrics summary
//!   at [`Telemetry::flush`], and the `Jsonl` mode streams one JSON
//!   object per completed span/bridged device event to a file, appending
//!   metric lines at flush.
//!
//! Instrumentation is opt-in per run: construct a [`Telemetry`] from
//! [`TelemetrySettings`] (typically via [`TelemetrySettings::from_env`],
//! which reads `NESSA_TELEMETRY=off|memory|timeline|jsonl|jsonl:<path>`).
//! A disabled handle ([`Telemetry::disabled`]) makes every call a no-op
//! so instrumented code needs no `if` guards.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod parse;
pub mod phase;
pub mod sink;
pub mod span;
pub mod tree;

pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use parse::{parse_line, parse_stream, JsonValue, ParseError, StreamError, TelemetryEvent};
pub use sink::{extract_num_field, extract_str_field, render_timeline};
pub use span::{AttrValue, SpanRecord};
pub use tree::SpanTree;

use crate::clock::Instant;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Where telemetry goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Telemetry disabled; all calls are no-ops.
    #[default]
    Off,
    /// Collect in memory only (programmatic access via `spans()` etc.).
    Memory,
    /// Memory + a human-readable timeline printed to stdout at flush.
    Timeline,
    /// Memory + one JSON object per event appended to a `.jsonl` file.
    Jsonl,
}

/// Configuration for constructing a [`Telemetry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySettings {
    /// Selected sink mode.
    pub mode: TelemetryMode,
    /// Output path for [`TelemetryMode::Jsonl`]; defaults to
    /// `nessa-telemetry.jsonl` in the current directory.
    pub jsonl_path: Option<PathBuf>,
}

impl TelemetrySettings {
    /// Telemetry disabled.
    pub fn off() -> Self {
        Self::default()
    }

    /// In-memory collection only.
    pub fn memory() -> Self {
        Self {
            mode: TelemetryMode::Memory,
            jsonl_path: None,
        }
    }

    /// Timeline printing at flush.
    pub fn timeline() -> Self {
        Self {
            mode: TelemetryMode::Timeline,
            jsonl_path: None,
        }
    }

    /// JSONL streaming to `path`.
    pub fn jsonl(path: impl Into<PathBuf>) -> Self {
        Self {
            mode: TelemetryMode::Jsonl,
            jsonl_path: Some(path.into()),
        }
    }

    /// Parses the `NESSA_TELEMETRY` environment variable:
    /// `off` (or unset/empty), `memory`, `timeline`, `jsonl`, or
    /// `jsonl:<path>`. Unrecognized values fall back to `off`.
    pub fn from_env() -> Self {
        match std::env::var("NESSA_TELEMETRY") {
            Ok(v) => Self::parse(&v),
            Err(_) => Self::off(),
        }
    }

    /// Parses a `NESSA_TELEMETRY`-style value (see [`Self::from_env`]).
    pub fn parse(value: &str) -> Self {
        let v = value.trim();
        if let Some(path) = v.strip_prefix("jsonl:") {
            return Self::jsonl(path.trim());
        }
        match v.to_ascii_lowercase().as_str() {
            "memory" => Self::memory(),
            "timeline" => Self::timeline(),
            "jsonl" => Self {
                mode: TelemetryMode::Jsonl,
                jsonl_path: None,
            },
            _ => Self::off(),
        }
    }

    /// The JSONL output path this configuration resolves to.
    pub fn resolved_jsonl_path(&self) -> PathBuf {
        self.jsonl_path
            .clone()
            .unwrap_or_else(|| PathBuf::from("nessa-telemetry.jsonl"))
    }
}

/// A device-level trace event bridged from the SmartSSD simulator's
/// `Trace` into the unified stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceEvent {
    /// Device phase label (e.g. `"scan"`, `"select"`).
    pub phase: String,
    /// Simulated start time in seconds since run start.
    pub start_s: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Bytes moved during the event.
    pub bytes: u64,
}

struct Inner {
    mode: TelemetryMode,
    created: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    device_events: Mutex<Vec<DeviceEvent>>,
    metrics: MetricsRegistry,
    next_id: AtomicU64,
    // Open spans as (owning thread, span id). Parenting is *per thread*:
    // a new span nests under the innermost open span of its own thread,
    // so concurrent spans on different threads (the overlapped pipeline's
    // selection worker vs. the training thread) never cross-parent.
    open_stack: Mutex<Vec<(std::thread::ThreadId, u64)>>,
    jsonl: Mutex<Option<BufWriter<fs::File>>>,
    jsonl_path: Option<PathBuf>,
    // Heartbeat for the live health monitor: when the last span closed.
    last_close: Mutex<Option<Instant>>,
}

/// A cloneable handle to one run's telemetry stream.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same collector.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("mode", &self.mode())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// A handle on which every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Builds a telemetry stream for `settings`. In `Jsonl` mode the
    /// output file is created (truncated) immediately; if that fails a
    /// warning is printed and the stream degrades to `Memory`.
    pub fn new(settings: &TelemetrySettings) -> Self {
        let mut mode = settings.mode;
        if mode == TelemetryMode::Off {
            return Self::disabled();
        }
        let mut jsonl = None;
        let mut jsonl_path = None;
        if mode == TelemetryMode::Jsonl {
            let path = settings.resolved_jsonl_path();
            match fs::File::create(&path) {
                Ok(f) => {
                    jsonl = Some(BufWriter::new(f));
                    jsonl_path = Some(path);
                }
                Err(e) => {
                    eprintln!(
                        "nessa-telemetry: cannot create {} ({e}); falling back to memory mode",
                        path.display()
                    );
                    mode = TelemetryMode::Memory;
                }
            }
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                mode,
                created: clock::now(),
                spans: Mutex::new(Vec::new()),
                device_events: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::default(),
                next_id: AtomicU64::new(1),
                open_stack: Mutex::new(Vec::new()),
                jsonl: Mutex::new(jsonl),
                jsonl_path,
                last_close: Mutex::new(None),
            })),
        }
    }

    /// Convenience: build from the `NESSA_TELEMETRY` environment variable.
    pub fn from_env() -> Self {
        Self::new(&TelemetrySettings::from_env())
    }

    /// Whether any collection is happening.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The active mode (`Off` for a disabled handle).
    pub fn mode(&self) -> TelemetryMode {
        self.inner
            .as_ref()
            .map(|i| i.mode)
            .unwrap_or(TelemetryMode::Off)
    }

    /// The JSONL output path, when streaming to a file.
    pub fn jsonl_path(&self) -> Option<&Path> {
        self.inner.as_ref()?.jsonl_path.as_deref()
    }

    /// Opens a span. The returned guard records host wall time until it
    /// is dropped (or [`SpanGuard::finish`]ed); simulated seconds and
    /// attributes are attached via the guard. Spans opened while another
    /// span from the same stream is open **on the same thread** become
    /// its children; spans on other threads are unaffected (use
    /// [`Self::span_child_of`] to parent across threads explicitly).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open_span(name, None)
    }

    /// Opens a span explicitly parented to `parent` (a span id from
    /// [`SpanGuard::id`]) instead of this thread's innermost open span.
    /// The overlapped pipeline uses this to hang a worker thread's
    /// selection spans under the main thread's `epoch` span; subsequent
    /// spans opened on the worker thread nest under it as usual.
    pub fn span_child_of(&self, name: &str, parent: Option<u64>) -> SpanGuard {
        self.open_span(name, Some(parent))
    }

    fn open_span(&self, name: &str, forced_parent: Option<Option<u64>>) -> SpanGuard {
        let Some(inner) = self.inner.as_ref() else {
            return SpanGuard {
                inner: None,
                record: None,
                start: clock::now(),
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let thread = std::thread::current().id();
        let parent = {
            let mut stack = inner.open_stack.lock().unwrap();
            let natural = stack
                .iter()
                .rev()
                .find(|(t, _)| *t == thread)
                .map(|&(_, id)| id);
            stack.push((thread, id));
            forced_parent.unwrap_or(natural)
        };
        SpanGuard {
            inner: Some(Arc::clone(inner)),
            record: Some(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                attrs: Vec::new(),
                start_secs: inner.created.elapsed().as_secs_f64(),
                wall_secs: 0.0,
                sim_secs: 0.0,
            }),
            start: clock::now(),
        }
    }

    /// Counter handle. On a disabled stream the handle works but feeds
    /// an unregistered metric.
    pub fn counter(&self, name: &str) -> Counter {
        match self.inner.as_ref() {
            Some(i) => i.metrics.counter(name),
            None => Counter::default(),
        }
    }

    /// Gauge handle (see [`Self::counter`] for disabled behavior).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.inner.as_ref() {
            Some(i) => i.metrics.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Histogram handle (see [`Self::counter`] for disabled behavior).
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.inner.as_ref() {
            Some(i) => i.metrics.histogram(name),
            None => Histogram::default(),
        }
    }

    /// Bridges one device-trace event into the stream.
    pub fn record_device_event(&self, event: DeviceEvent) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        if inner.mode == TelemetryMode::Jsonl {
            let line = sink::device_event_line(&event);
            if let Some(w) = inner.jsonl.lock().unwrap().as_mut() {
                let _ = writeln!(w, "{line}");
            }
        }
        inner.device_events.lock().unwrap().push(event);
    }

    /// Seconds since the most recent span closed — the health monitor's
    /// heartbeat signal ("no span closed within the stall budget" means
    /// the pipeline is wedged). Counts from stream creation until the
    /// first span closes; `None` on a disabled handle.
    pub fn idle_secs(&self) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let last = *inner.last_close.lock().unwrap();
        Some(match last {
            Some(t) => t.elapsed().as_secs_f64(),
            None => inner.created.elapsed().as_secs_f64(),
        })
    }

    /// Seconds since the stream was created (host wall clock); `None` on
    /// a disabled handle. Span `start_secs` offsets count from the same
    /// origin.
    pub fn elapsed_secs(&self) -> Option<f64> {
        self.inner
            .as_ref()
            .map(|i| i.created.elapsed().as_secs_f64())
    }

    /// All completed spans so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|i| i.spans.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// All bridged device events so far.
    pub fn device_events(&self) -> Vec<DeviceEvent> {
        self.inner
            .as_ref()
            .map(|i| i.device_events.lock().unwrap().clone())
            .unwrap_or_default()
    }

    /// Point-in-time snapshot of every metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|i| i.metrics.snapshot())
            .unwrap_or_default()
    }

    /// Renders the timeline view (regardless of mode).
    pub fn render_timeline(&self) -> String {
        sink::render_timeline(&self.spans(), &self.metrics_snapshot())
    }

    /// Finishes the stream for this run: prints the timeline in
    /// `Timeline` mode; appends metric lines and syncs the file in
    /// `Jsonl` mode. Safe to call multiple times (metric lines are
    /// re-appended with current values).
    pub fn flush(&self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        match inner.mode {
            TelemetryMode::Timeline => print!("{}", self.render_timeline()),
            TelemetryMode::Jsonl => {
                let snapshot = inner.metrics.snapshot();
                if let Some(w) = inner.jsonl.lock().unwrap().as_mut() {
                    for line in sink::metrics_lines(&snapshot) {
                        let _ = writeln!(w, "{line}");
                    }
                    let _ = w.flush();
                }
            }
            TelemetryMode::Off | TelemetryMode::Memory => {}
        }
    }
}

/// RAII timer for one span; created by [`Telemetry::span`].
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    record: Option<SpanRecord>,
    start: Instant,
}

impl SpanGuard {
    /// This span's id (`None` on a disabled stream) — pass it to
    /// [`Telemetry::span_child_of`] to parent a span from another thread
    /// under this one.
    pub fn id(&self) -> Option<u64> {
        self.record.as_ref().map(|r| r.id)
    }

    /// Attaches an attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: impl Into<AttrValue>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Attaches an attribute in place.
    pub fn set_attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(rec) = self.record.as_mut() {
            rec.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Adds simulated-device seconds to this span.
    pub fn add_sim_secs(&mut self, secs: f64) {
        if let Some(rec) = self.record.as_mut() {
            rec.sim_secs += secs;
        }
    }

    /// Simulated seconds accumulated so far.
    pub fn sim_secs(&self) -> f64 {
        self.record.as_ref().map(|r| r.sim_secs).unwrap_or(0.0)
    }

    /// Completes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(inner), Some(mut rec)) = (self.inner.take(), self.record.take()) else {
            return;
        };
        rec.wall_secs = self.start.elapsed().as_secs_f64();
        {
            let mut stack = inner.open_stack.lock().unwrap();
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == rec.id) {
                stack.remove(pos);
            }
        }
        if inner.mode == TelemetryMode::Jsonl {
            let line = sink::span_line(&rec);
            if let Some(w) = inner.jsonl.lock().unwrap().as_mut() {
                let _ = writeln!(w, "{line}");
            }
        }
        inner.spans.lock().unwrap().push(rec);
        *inner.last_close.lock().unwrap() = Some(clock::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "nessa-telemetry-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let mut span = t.span("noop");
        span.set_attr("k", 1u64);
        span.add_sim_secs(1.0);
        drop(span);
        t.counter("c").inc();
        t.flush();
        assert!(t.spans().is_empty());
        assert!(t.metrics_snapshot().counters.is_empty());
    }

    #[test]
    fn spans_nest_and_record_sim_time() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        {
            let mut epoch = t.span("epoch").with_attr("epoch", 0usize);
            {
                let mut scan = t.span("scan").with_attr("epoch", 0usize);
                scan.add_sim_secs(0.5);
                scan.finish();
            }
            epoch.add_sim_secs(0.5);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let scan = spans.iter().find(|s| s.name == "scan").unwrap();
        let epoch = spans.iter().find(|s| s.name == "epoch").unwrap();
        assert_eq!(scan.parent, Some(epoch.id));
        assert_eq!(epoch.parent, None);
        assert_eq!(scan.sim_secs, 0.5);
        assert!(scan.wall_secs >= 0.0);
        assert_eq!(scan.attr_u64("epoch"), Some(0));
    }

    #[test]
    fn sibling_spans_share_parent() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        {
            let _root = t.span("root");
            t.span("a").finish();
            t.span("b").finish();
        }
        let spans = t.spans();
        let root_id = spans.iter().find(|s| s.name == "root").unwrap().id;
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(root_id), "{name} should nest under root");
        }
    }

    #[test]
    fn spans_on_other_threads_do_not_cross_parent() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        {
            let _train = t.span("train");
            let t2 = t.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    // Opened while `train` is live on the main thread:
                    // must NOT become its child.
                    t2.span("worker-root").finish();
                });
            });
        }
        let spans = t.spans();
        let worker = spans.iter().find(|s| s.name == "worker-root").unwrap();
        assert_eq!(worker.parent, None, "no cross-thread auto-parenting");
    }

    #[test]
    fn span_child_of_parents_across_threads() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        {
            let epoch = t.span("epoch");
            let epoch_id = epoch.id();
            assert!(epoch_id.is_some());
            let t2 = t.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let wrapper = t2.span_child_of("wrapper", epoch_id);
                    // Natural nesting continues under the explicit parent
                    // on the worker thread.
                    t2.span("inner").finish();
                    wrapper.finish();
                });
                let _train = t.span("train");
            });
        }
        let spans = t.spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let epoch_id = by_name("epoch").id;
        assert_eq!(by_name("wrapper").parent, Some(epoch_id));
        assert_eq!(by_name("inner").parent, Some(by_name("wrapper").id));
        assert_eq!(by_name("train").parent, Some(epoch_id));
        // Disabled streams hand out no ids and stay inert.
        let off = Telemetry::disabled();
        assert_eq!(off.span("x").id(), None);
        off.span_child_of("y", Some(1)).finish();
        assert!(off.spans().is_empty());
    }

    #[test]
    fn settings_parse_env_forms() {
        assert_eq!(TelemetrySettings::parse("off").mode, TelemetryMode::Off);
        assert_eq!(TelemetrySettings::parse("").mode, TelemetryMode::Off);
        assert_eq!(TelemetrySettings::parse("bogus").mode, TelemetryMode::Off);
        assert_eq!(
            TelemetrySettings::parse("Memory").mode,
            TelemetryMode::Memory
        );
        assert_eq!(
            TelemetrySettings::parse("timeline").mode,
            TelemetryMode::Timeline
        );
        let plain = TelemetrySettings::parse("jsonl");
        assert_eq!(plain.mode, TelemetryMode::Jsonl);
        assert_eq!(
            plain.resolved_jsonl_path(),
            PathBuf::from("nessa-telemetry.jsonl")
        );
        let with_path = TelemetrySettings::parse("jsonl:/tmp/run.jsonl");
        assert_eq!(with_path.jsonl_path, Some(PathBuf::from("/tmp/run.jsonl")));
    }

    #[test]
    fn jsonl_mode_streams_spans_events_and_metrics() {
        let path = temp_path("stream");
        let t = Telemetry::new(&TelemetrySettings::jsonl(&path));
        {
            let mut s = t.span("scan").with_attr("epoch", 1usize);
            s.add_sim_secs(0.25);
        }
        t.record_device_event(DeviceEvent {
            phase: "scan".into(),
            start_s: 0.0,
            duration_s: 0.25,
            bytes: 1024,
        });
        t.counter("train.batches").add(3);
        t.histogram("select.gain").observe(0.5);
        t.flush();
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 4, "expected span+device+metrics lines");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let types: Vec<String> = lines
            .iter()
            .filter_map(|l| extract_str_field(l, "type"))
            .collect();
        for ty in ["span", "device", "counter", "histogram"] {
            assert!(types.iter().any(|t| t == ty), "missing type {ty}");
        }
        let span_line = lines
            .iter()
            .find(|l| extract_str_field(l, "type").as_deref() == Some("span"))
            .unwrap();
        assert_eq!(extract_num_field(span_line, "sim_s"), Some(0.25));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn span_starts_are_monotonic_from_stream_origin() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        t.span("first").finish();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.span("second").finish();
        let spans = t.spans();
        let first = spans.iter().find(|s| s.name == "first").unwrap();
        let second = spans.iter().find(|s| s.name == "second").unwrap();
        assert!(first.start_secs >= 0.0);
        assert!(second.start_secs > first.start_secs);
        assert!(t.elapsed_secs().unwrap() >= second.start_secs);
    }

    #[test]
    fn idle_secs_resets_on_span_close() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        assert!(t.idle_secs().unwrap() >= 0.0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let before = t.idle_secs().unwrap();
        t.span("beat").finish();
        let after = t.idle_secs().unwrap();
        assert!(after < before, "{after} !< {before}");
        assert_eq!(Telemetry::disabled().idle_secs(), None);
    }

    #[test]
    fn clones_share_the_stream() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        let t2 = t.clone();
        t2.span("from-clone").finish();
        t2.counter("c").inc();
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.metrics_snapshot().counters, vec![("c".to_string(), 1)]);
    }

    #[test]
    fn jsonl_open_failure_degrades_to_memory() {
        let t = Telemetry::new(&TelemetrySettings::jsonl(
            "/nonexistent-dir-zz/x/y/run.jsonl",
        ));
        assert!(t.is_enabled());
        assert_eq!(t.mode(), TelemetryMode::Memory);
        t.span("still-works").finish();
        assert_eq!(t.spans().len(), 1);
    }
}
