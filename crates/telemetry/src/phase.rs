//! The registered pipeline phase names.
//!
//! `nessa-trace` reports group spans by name: a span whose name is not in
//! this set silently falls out of the per-phase tables and the critical
//! path. To make that failure mode impossible to introduce quietly,
//! library code may only open spans named from this registry
//! (`nessa-lint` rule **T1**); tests and examples are free to use ad-hoc
//! names.
//!
//! The set mirrors the paper's five pipeline steps (Figure 3) plus the
//! enclosing epoch span and the fault-handling phases (retry backoff and
//! degradation-ladder fallbacks).
//!
//! Counter names get the same treatment: library code may only create
//! counters named from [`REGISTERED_COUNTERS`], so fleet-wide roll-ups
//! (and the chaos gate's assertions) never silently miss a renamed
//! counter.

/// Every span name library code is allowed to pass to `Telemetry::span`.
///
/// Keep this list in sync with `nessa-lint`'s `REGISTERED_PHASES` (a
/// cross-check test in `crates/lint/tests` asserts equality).
pub const REGISTERED_PHASES: &[&str] = &[
    // One training epoch (parent of the pipeline steps), then the five
    // pipeline steps in order: flash → FPGA candidate streaming, the
    // quantized forward + facility-location kernel, subset shipment to
    // the host/GPU, GPU-side training on the weighted subset, and the
    // quantized-weight feedback to the FPGA.
    "epoch",
    "scan",
    "select",
    "ship",
    "train",
    "feedback",
    // Fault tolerance: `retry` is the backoff wait before re-running a
    // faulted device phase; `fallback` is a degradation-ladder rung
    // engaging (host staging / random picks).
    "retry",
    "fallback",
    // Overlapped pipelining (paper §3, Figure 3): `overlap.select` wraps
    // a selection round running on a worker thread concurrently with
    // `train`; `overlap.wait` is the main thread joining that worker;
    // `overlap.handoff` is the deterministic hand-off (quantized-weight
    // feedback) that serializes the two sides at the epoch boundary.
    "overlap.select",
    "overlap.wait",
    "overlap.handoff",
];

/// Every counter name library code is allowed to pass to
/// `Telemetry::counter`.
///
/// Keep this list in sync with `nessa-lint`'s `REGISTERED_COUNTERS` (the
/// same cross-check test asserts equality).
pub const REGISTERED_COUNTERS: &[&str] = &[
    // Heartbeat verdicts past the stall budget.
    "health.stalls",
    // Training progress (batches / samples consumed).
    "train.batches",
    "train.samples",
    // Fault-tolerance accounting (see the degradation ladder).
    "fault.injected",
    "retry.attempts",
    "fallback.host",
    "fallback.random",
    "drive.evicted",
    "data.quarantined",
];

/// Whether `name` is a registered phase.
pub fn is_registered(name: &str) -> bool {
    REGISTERED_PHASES.contains(&name)
}

/// Whether `name` is a registered counter.
pub fn is_registered_counter(name: &str) -> bool {
    REGISTERED_COUNTERS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_phases_are_registered() {
        for name in [
            "epoch",
            "scan",
            "select",
            "ship",
            "train",
            "feedback",
            "retry",
            "fallback",
            "overlap.select",
            "overlap.wait",
            "overlap.handoff",
        ] {
            assert!(is_registered(name), "{name} missing from registry");
        }
        assert!(!is_registered("warmup"));
        assert!(!is_registered("overlap.other"));
    }

    #[test]
    fn fault_counters_are_registered() {
        for name in [
            "fault.injected",
            "retry.attempts",
            "fallback.host",
            "fallback.random",
            "drive.evicted",
            "data.quarantined",
        ] {
            assert!(is_registered_counter(name), "{name} missing from registry");
        }
        assert!(!is_registered_counter("fault.imagined"));
    }

    #[test]
    fn registry_has_no_duplicates() {
        for list in [REGISTERED_PHASES, REGISTERED_COUNTERS] {
            let mut sorted = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), list.len());
        }
    }
}
