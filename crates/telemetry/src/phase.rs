//! The registered pipeline phase names.
//!
//! `nessa-trace` reports group spans by name: a span whose name is not in
//! this set silently falls out of the per-phase tables and the critical
//! path. To make that failure mode impossible to introduce quietly,
//! library code may only open spans named from this registry
//! (`nessa-lint` rule **T1**); tests and examples are free to use ad-hoc
//! names.
//!
//! The set mirrors the paper's five pipeline steps (Figure 3) plus the
//! enclosing epoch span.

/// Every span name library code is allowed to pass to `Telemetry::span`.
///
/// Keep this list in sync with `nessa-lint`'s `REGISTERED_PHASES` (a
/// cross-check test in `crates/lint/tests` asserts equality).
pub const REGISTERED_PHASES: &[&str] = &[
    // One training epoch (parent of the five pipeline steps).
    "epoch",  // (1) Flash → FPGA candidate streaming.
    "scan",   // (2) Quantized forward + facility-location kernel on the FPGA.
    "select", // (3) Subset shipment to the host/GPU.
    "ship",   // (4) GPU-side training on the weighted subset.
    "train",  // (5) Quantized-weight feedback to the FPGA.
    "feedback",
];

/// Whether `name` is a registered phase.
pub fn is_registered(name: &str) -> bool {
    REGISTERED_PHASES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_phases_are_registered() {
        for name in ["epoch", "scan", "select", "ship", "train", "feedback"] {
            assert!(is_registered(name), "{name} missing from registry");
        }
        assert!(!is_registered("warmup"));
    }

    #[test]
    fn registry_has_no_duplicates() {
        let mut sorted = REGISTERED_PHASES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), REGISTERED_PHASES.len());
    }
}
