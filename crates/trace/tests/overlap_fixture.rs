//! Regression pin for the *measured* overlap ratio on a golden trace.
//!
//! The fixture is the span shape an overlapped profile run emits on a
//! machine with two or more cores (worker round and trainer genuinely
//! concurrent), with hand-rounded wall times so the expected ratios are
//! exact. Three epochs:
//!
//! * **epoch 0** — synchronous prologue round (`scan`/`select`/`ship`
//!   direct children) plus a pipelined round for epoch 1 under an
//!   `overlap.select` wrapper; the `train` interval `[4.2 ms, 8.0 ms]`
//!   sits entirely inside the wrapper `[4.0 ms, 8.6 ms]`, so the shorter
//!   (train) side is fully hidden → ratio 1.0,
//! * **epoch 1** — steady state; the round `[12.8 ms, 16.8 ms]` overlaps
//!   train `[13.0 ms, 18.0 ms]` for 3.8 ms of the round's 4.0 ms →
//!   ratio 0.95,
//! * **epoch 2** — final epoch, nothing left to select; no ratio.
//!
//! Any change to the interval bookkeeping in `TraceReport::from_trace`
//! that shifts these numbers fails here against checked-in bytes.

use nessa_trace::{RunTrace, TraceReport};

fn golden() -> TraceReport {
    let trace = RunTrace::from_str(include_str!("fixtures/overlap_profile.jsonl"))
        .expect("golden overlap trace parses");
    TraceReport::from_trace(&trace)
}

#[test]
fn measured_ratios_match_the_golden_trace() {
    let rep = golden();
    assert_eq!(rep.epochs.len(), 3);
    let r0 = rep.epochs[0].overlap_ratio.expect("epoch 0 has both sides");
    assert!(
        (r0 - 1.0).abs() < 1e-12,
        "train fully inside the round must measure 1.0, got {r0}"
    );
    let r1 = rep.epochs[1].overlap_ratio.expect("epoch 1 has both sides");
    assert!((r1 - 0.95).abs() < 1e-9, "expected 0.95, got {r1}");
    assert_eq!(
        rep.epochs[2].overlap_ratio, None,
        "the final epoch spawns no round, so there is nothing to measure"
    );
}

#[test]
fn mean_measured_ratio_averages_only_measurable_epochs() {
    let rep = golden();
    let mean = rep.mean_overlap_ratio().expect("two measurable epochs");
    assert!((mean - 0.975).abs() < 1e-9, "expected 0.975, got {mean}");
}

#[test]
fn estimate_stays_independent_of_the_measured_ratio() {
    // The legacy estimate divides simulated device seconds by train wall
    // seconds; it must keep reporting even where the measured ratio does
    // (epoch 0/1) and where it cannot (epoch 2 still has sim + train).
    let rep = golden();
    for e in &rep.epochs {
        let est = e.overlap_ratio_est.expect("train wall > 0 everywhere");
        assert!(est > 0.0);
    }
    let e0 = rep.epochs[0].overlap_ratio_est.unwrap();
    let expected = (0.00062 + 0.000016 + 0.000134 + 0.00077 + 0.0000056) / 0.0038;
    assert!(
        (e0 - expected).abs() < 1e-9,
        "expected {expected}, got {e0}"
    );
}

#[test]
fn phase_breakdown_reports_the_wrapper_not_its_children() {
    // Per-epoch phase stats stay direct-children-only (baseline summary
    // compatibility): the pipelined round appears as `overlap.select`,
    // and its nested scan/select/ship do not leak into epoch 1's table.
    let rep = golden();
    let e1 = &rep.epochs[1];
    assert!(e1.phases.contains_key("overlap.select"));
    assert!(e1.phases.contains_key("overlap.wait"));
    assert!(e1.phases.contains_key("overlap.handoff"));
    assert!(!e1.phases.contains_key("scan"));
    assert!(!e1.phases.contains_key("ship"));
}

#[test]
fn render_prints_measured_and_estimated_ratios() {
    let text = golden().render();
    assert!(text.contains("mean measured overlap ratio: 0.975"));
    assert!(text.contains("mean overlap estimate (device sim / train wall):"));
}
