//! JSONL round trip: what a live `Telemetry` handle holds in memory must
//! survive serialization to JSONL and re-parsing through `nessa-trace`
//! unchanged — same span tree, same device events, same metric values and
//! histogram quantiles.

use nessa_telemetry::{DeviceEvent, Telemetry, TelemetrySettings};
use nessa_trace::{RunSummary, RunTrace, TraceReport};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "nessa-trace-roundtrip-{}-{tag}.jsonl",
        std::process::id()
    ))
}

/// Drives a miniature two-epoch pipeline against a live handle.
fn run_workload(telemetry: &Telemetry) {
    let batches = telemetry.counter("train.batches");
    let queue = telemetry.gauge("ship.queue_depth");
    let select_hist = telemetry.histogram("select.chunk_secs");
    for epoch in 0..2u64 {
        let mut epoch_span = telemetry.span("epoch").with_attr("epoch", epoch);
        {
            let mut scan = telemetry
                .span("scan")
                .with_attr("epoch", epoch)
                .with_attr("bytes", 4096u64 * (epoch + 1));
            scan.add_sim_secs(0.125 + epoch as f64 * 0.03125);
            telemetry.record_device_event(DeviceEvent {
                phase: "scan".into(),
                start_s: epoch as f64,
                duration_s: 0.125,
                bytes: 4096 * (epoch + 1),
            });
            epoch_span.add_sim_secs(scan.sim_secs());
        }
        {
            let mut select = telemetry
                .span("select")
                .with_attr("epoch", epoch)
                .with_attr("fraction", 0.3);
            select.add_sim_secs(0.25);
            select_hist.observe(0.0625 * (epoch + 1) as f64);
            select_hist.observe(0.03125);
            epoch_span.add_sim_secs(select.sim_secs());
        }
        {
            let train = telemetry
                .span("train")
                .with_attr("epoch", epoch)
                .with_attr("model", "mlp");
            batches.add(20);
            queue.set(3.0 - epoch as f64 + 0.5);
            train.finish();
        }
        epoch_span.finish();
    }
}

#[test]
fn jsonl_round_trip_matches_in_memory_state() {
    let path = temp_path("full");
    let telemetry = Telemetry::new(&TelemetrySettings::jsonl(&path));
    run_workload(&telemetry);
    telemetry.flush();

    let live = RunTrace::from_telemetry(&telemetry);
    let parsed = RunTrace::from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Span tree: identical ids, structure, names, attrs, and all three
    // timestamps (f64 serialization is shortest-round-trip, so exact).
    assert_eq!(parsed.tree.len(), live.tree.len());
    assert_eq!(parsed.tree.spans(), live.tree.spans());

    // Device events, in stream order.
    assert_eq!(parsed.device_events, live.device_events);

    // Metrics: counters and gauges exact; histogram summaries (including
    // the p50/p95/p99 quantile estimates) must survive bit-for-bit.
    let snapshot = telemetry.metrics_snapshot();
    assert_eq!(parsed.counters["train.batches"], 40);
    assert_eq!(parsed.counters, snapshot.counters.iter().cloned().collect());
    assert_eq!(parsed.gauges, snapshot.gauges.iter().cloned().collect());
    assert_eq!(
        parsed.histograms,
        snapshot.histograms.iter().cloned().collect()
    );
    let h = &parsed.histograms["select.chunk_secs"];
    assert_eq!(h.count, 4);
    assert!(h.p50 > 0.0 && h.p95 >= h.p50 && h.p99 >= h.p95);

    // Derived views agree between the live handle and the parsed file.
    let live_report = TraceReport::from_trace(&live);
    let parsed_report = TraceReport::from_trace(&parsed);
    assert_eq!(parsed_report.epochs.len(), 2);
    for (a, b) in live_report.epochs.iter().zip(&parsed_report.epochs) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.critical_path, b.critical_path);
    }
    assert_eq!(
        RunSummary::from_trace(&parsed),
        RunSummary::from_trace(&live)
    );
}

#[test]
fn flushing_twice_still_yields_final_metric_values() {
    let path = temp_path("twoflush");
    let telemetry = Telemetry::new(&TelemetrySettings::jsonl(&path));
    let c = telemetry.counter("c");
    c.inc();
    telemetry.flush();
    c.add(9);
    telemetry.flush();
    let parsed = RunTrace::from_path(&path).unwrap();
    std::fs::remove_file(&path).ok();
    // Metric lines are appended per flush; the last generation wins.
    assert_eq!(parsed.counters["c"], 10);
}
