//! Offline analysis of NeSSA telemetry streams.
//!
//! `nessa-telemetry` records what happened (spans, device events,
//! metrics); this crate answers *where the epoch went and whether a
//! change made it slower*. It loads a telemetry JSONL artifact back into
//! typed form ([`RunTrace`]) and provides three views on top:
//!
//! * **Report** ([`TraceReport`]) — per-epoch and per-phase wall/sim
//!   breakdowns, critical-path extraction, the selection-vs-training
//!   overlap ratio (the paper's central trade-off), and histogram
//!   quantiles.
//! * **Export** ([`chrome::chrome_trace`]) — Chrome trace-event JSON
//!   loadable in `chrome://tracing` or Perfetto, with host spans and
//!   simulated-clock device events on separate tracks.
//! * **Diff** ([`diff::diff_runs`]) — compares two runs through
//!   tolerance-based regression gates and emits the `BENCH_pipeline.json`
//!   trajectory artifact consumed by CI.
//!
//! The CLI lives in `nessa-bench` (`cargo run -p nessa-bench --bin trace`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod diff;
pub mod report;
pub mod run;

pub use chrome::chrome_trace;
pub use diff::{
    bench_artifact, diff_runs, DiffGates, DiffItem, DiffReport, PhaseSummary, Quantiles, RunSummary,
};
pub use report::{EpochReport, PhaseStat, TraceReport};
pub use run::{LoadError, RunTrace};
