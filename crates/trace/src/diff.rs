//! The diff view: tolerance-based regression gates between two runs.
//!
//! A [`RunSummary`] condenses a trace into the numbers worth tracking
//! per commit: per-epoch wall/sim totals and exact quantiles of the
//! per-epoch phase durations (exact, because offline we have every
//! sample — unlike the live log-bucket histograms). Summaries serialize
//! to a small JSON object so a baseline can be checked into the repo;
//! [`diff_runs`] compares two of them and fails when a gated metric
//! regresses beyond the tolerance.
//!
//! Wall-clock metrics are machine-dependent, so gates default to the
//! **simulated** clock (deterministic under a fixed seed) and wall gating
//! is opt-in ([`DiffGates::gate_wall`]).

use crate::report::TraceReport;
use crate::run::RunTrace;
use nessa_telemetry::json::JsonObject;
use nessa_telemetry::JsonValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact quantiles over a small sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Quantiles {
    /// Computes exact quantiles (nearest-rank) of `values`.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Quantiles {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        }
    }

    fn to_json(self) -> String {
        JsonObject::new()
            .f64_field("p50", self.p50)
            .f64_field("p95", self.p95)
            .f64_field("p99", self.p99)
            .finish()
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(Quantiles {
            p50: v.get("p50")?.as_f64()?,
            p95: v.get("p95")?.as_f64()?,
            p99: v.get("p99")?.as_f64()?,
        })
    }
}

/// Per-phase duration summary: total plus exact per-epoch quantiles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseSummary {
    /// Summed seconds across epochs.
    pub total: f64,
    /// Quantiles of the per-epoch values.
    pub quantiles: Quantiles,
}

/// The comparable condensation of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Number of epoch spans.
    pub epoch_count: usize,
    /// Summed epoch-span wall seconds.
    pub total_wall_s: f64,
    /// Summed epoch-span simulated seconds.
    pub total_sim_s: f64,
    /// Quantiles of per-epoch wall seconds.
    pub epoch_wall: Quantiles,
    /// Quantiles of per-epoch simulated seconds.
    pub epoch_sim: Quantiles,
    /// Phase name → simulated-clock summary.
    pub phase_sim: BTreeMap<String, PhaseSummary>,
    /// Phase name → wall-clock summary.
    pub phase_wall: BTreeMap<String, PhaseSummary>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
}

impl RunSummary {
    /// Condenses a loaded trace.
    pub fn from_trace(trace: &RunTrace) -> Self {
        let report = TraceReport::from_trace(trace);
        let mut phase_sim_values: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut phase_wall_values: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let mut epoch_wall = Vec::new();
        let mut epoch_sim = Vec::new();
        for e in &report.epochs {
            epoch_wall.push(e.wall_s);
            epoch_sim.push(e.sim_s);
            for (name, p) in &e.phases {
                phase_sim_values
                    .entry(name.clone())
                    .or_default()
                    .push(p.sim_s);
                phase_wall_values
                    .entry(name.clone())
                    .or_default()
                    .push(p.wall_s);
            }
        }
        let summarize = |values: BTreeMap<String, Vec<f64>>| {
            values
                .into_iter()
                .map(|(name, vals)| {
                    (
                        name,
                        PhaseSummary {
                            total: vals.iter().sum(),
                            quantiles: Quantiles::from_values(&vals),
                        },
                    )
                })
                .collect()
        };
        RunSummary {
            epoch_count: report.epochs.len(),
            total_wall_s: epoch_wall.iter().sum(),
            total_sim_s: epoch_sim.iter().sum(),
            epoch_wall: Quantiles::from_values(&epoch_wall),
            epoch_sim: Quantiles::from_values(&epoch_sim),
            phase_sim: summarize(phase_sim_values),
            phase_wall: summarize(phase_wall_values),
            counters: trace.counters.clone(),
        }
    }

    /// Serializes the summary (the `BENCH_pipeline.json` building block).
    pub fn to_json(&self) -> String {
        let phases = |map: &BTreeMap<String, PhaseSummary>| {
            let mut obj = JsonObject::new();
            for (name, p) in map {
                obj = obj.raw_field(
                    name,
                    &JsonObject::new()
                        .f64_field("total", p.total)
                        .raw_field("quantiles", &p.quantiles.to_json())
                        .finish(),
                );
            }
            obj.finish()
        };
        let mut counters = JsonObject::new();
        for (name, v) in &self.counters {
            counters = counters.u64_field(name, *v);
        }
        JsonObject::new()
            .str_field("type", "nessa-run-summary")
            .u64_field("epoch_count", self.epoch_count as u64)
            .f64_field("total_wall_s", self.total_wall_s)
            .f64_field("total_sim_s", self.total_sim_s)
            .raw_field("epoch_wall", &self.epoch_wall.to_json())
            .raw_field("epoch_sim", &self.epoch_sim.to_json())
            .raw_field("phase_sim", &phases(&self.phase_sim))
            .raw_field("phase_wall", &phases(&self.phase_wall))
            .raw_field("counters", &counters.finish())
            .finish()
    }

    /// Parses a serialized summary. Returns `None` when `v` is not a
    /// `nessa-run-summary` object.
    pub fn from_json(v: &JsonValue) -> Option<Self> {
        if v.get("type")?.as_str()? != "nessa-run-summary" {
            return None;
        }
        let phases = |key: &str| -> Option<BTreeMap<String, PhaseSummary>> {
            let mut out = BTreeMap::new();
            for (name, p) in v.get(key)?.as_obj()? {
                out.insert(
                    name.clone(),
                    PhaseSummary {
                        total: p.get("total")?.as_f64()?,
                        quantiles: Quantiles::from_json(p.get("quantiles")?)?,
                    },
                );
            }
            Some(out)
        };
        let mut counters = BTreeMap::new();
        if let Some(fields) = v.get("counters").and_then(JsonValue::as_obj) {
            for (name, value) in fields {
                counters.insert(name.clone(), value.as_u64()?);
            }
        }
        Some(RunSummary {
            epoch_count: v.get("epoch_count")?.as_u64()? as usize,
            total_wall_s: v.get("total_wall_s")?.as_f64()?,
            total_sim_s: v.get("total_sim_s")?.as_f64()?,
            epoch_wall: Quantiles::from_json(v.get("epoch_wall")?)?,
            epoch_sim: Quantiles::from_json(v.get("epoch_sim")?)?,
            phase_sim: phases("phase_sim")?,
            phase_wall: phases("phase_wall")?,
            counters,
        })
    }
}

/// Regression-gate configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffGates {
    /// Maximum tolerated regression, in percent, on gated metrics.
    pub max_regress_pct: f64,
    /// Also gate wall-clock metrics (off by default: wall time varies
    /// with the machine; the simulated clock is deterministic).
    pub gate_wall: bool,
}

impl Default for DiffGates {
    fn default() -> Self {
        DiffGates {
            max_regress_pct: 10.0,
            gate_wall: false,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffItem {
    /// Metric name, e.g. `phase.select.sim_p95`.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (positive = slower/bigger).
    pub delta_pct: f64,
    /// Whether the gate applies to this metric.
    pub gated: bool,
}

impl DiffItem {
    /// Whether this item trips its gate at `max_regress_pct`.
    pub fn regressed(&self, max_regress_pct: f64) -> bool {
        self.gated && self.delta_pct > max_regress_pct
    }
}

/// The outcome of comparing two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every compared metric.
    pub items: Vec<DiffItem>,
    /// The gates the comparison ran under.
    pub gates: DiffGates,
}

impl DiffReport {
    /// Whether every gated metric stayed within tolerance.
    pub fn passed(&self) -> bool {
        !self
            .items
            .iter()
            .any(|i| i.regressed(self.gates.max_regress_pct))
    }

    /// The items that tripped their gate.
    pub fn regressions(&self) -> Vec<&DiffItem> {
        self.items
            .iter()
            .filter(|i| i.regressed(self.gates.max_regress_pct))
            .collect()
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run diff (gate: >{:.1}% regression on {} metrics fails)",
            self.gates.max_regress_pct,
            if self.gates.gate_wall {
                "sim+wall"
            } else {
                "sim"
            }
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>14} {:>14} {:>9}  gate",
            "metric", "baseline", "current", "delta"
        );
        for i in &self.items {
            let _ = writeln!(
                out,
                "  {:<28} {:>14.6e} {:>14.6e} {:>+8.2}%  {}",
                i.metric,
                i.base,
                i.current,
                i.delta_pct,
                if !i.gated {
                    "-"
                } else if i.regressed(self.gates.max_regress_pct) {
                    "FAIL"
                } else {
                    "ok"
                }
            );
        }
        let _ = writeln!(out, "  => {}", if self.passed() { "PASS" } else { "FAIL" });
        out
    }
}

fn push_item(
    items: &mut Vec<DiffItem>,
    metric: impl Into<String>,
    base: f64,
    current: f64,
    gated: bool,
) {
    let delta_pct = if base != 0.0 {
        100.0 * (current - base) / base
    } else if current == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    items.push(DiffItem {
        metric: metric.into(),
        base,
        current,
        delta_pct,
        // A metric absent (zero) in the baseline has no meaningful
        // relative change; report it but never gate it.
        gated: gated && base != 0.0,
    });
}

/// Compares two summaries under the given gates.
pub fn diff_runs(base: &RunSummary, current: &RunSummary, gates: DiffGates) -> DiffReport {
    let mut items = Vec::new();
    push_item(
        &mut items,
        "epoch.count",
        base.epoch_count as f64,
        current.epoch_count as f64,
        false,
    );
    push_item(
        &mut items,
        "epoch.total_sim_s",
        base.total_sim_s,
        current.total_sim_s,
        true,
    );
    push_item(
        &mut items,
        "epoch.sim_p95",
        base.epoch_sim.p95,
        current.epoch_sim.p95,
        true,
    );
    push_item(
        &mut items,
        "epoch.total_wall_s",
        base.total_wall_s,
        current.total_wall_s,
        gates.gate_wall,
    );
    push_item(
        &mut items,
        "epoch.wall_p95",
        base.epoch_wall.p95,
        current.epoch_wall.p95,
        gates.gate_wall,
    );
    let phase_names: std::collections::BTreeSet<&String> = base
        .phase_sim
        .keys()
        .chain(current.phase_sim.keys())
        .collect();
    for name in phase_names {
        let b = base.phase_sim.get(name).copied().unwrap_or_default();
        let c = current.phase_sim.get(name).copied().unwrap_or_default();
        push_item(
            &mut items,
            format!("phase.{name}.sim_total"),
            b.total,
            c.total,
            true,
        );
        push_item(
            &mut items,
            format!("phase.{name}.sim_p95"),
            b.quantiles.p95,
            c.quantiles.p95,
            true,
        );
        let bw = base.phase_wall.get(name).copied().unwrap_or_default();
        let cw = current.phase_wall.get(name).copied().unwrap_or_default();
        push_item(
            &mut items,
            format!("phase.{name}.wall_total"),
            bw.total,
            cw.total,
            gates.gate_wall,
        );
    }
    let counter_names: std::collections::BTreeSet<&String> = base
        .counters
        .keys()
        .chain(current.counters.keys())
        .collect();
    for name in counter_names {
        push_item(
            &mut items,
            format!("counter.{name}"),
            base.counters.get(name).copied().unwrap_or(0) as f64,
            current.counters.get(name).copied().unwrap_or(0) as f64,
            false,
        );
    }
    DiffReport { items, gates }
}

/// Renders the `BENCH_pipeline.json` trajectory artifact: the diff
/// verdict plus both summaries, so CI uploads one self-contained file
/// per commit.
pub fn bench_artifact(base: &RunSummary, current: &RunSummary, report: &DiffReport) -> String {
    let mut diffs = Vec::new();
    for i in &report.items {
        diffs.push(
            JsonObject::new()
                .str_field("metric", &i.metric)
                .f64_field("base", i.base)
                .f64_field("current", i.current)
                .f64_field("delta_pct", i.delta_pct)
                .raw_field("gated", if i.gated { "true" } else { "false" })
                .raw_field(
                    "regressed",
                    if i.regressed(report.gates.max_regress_pct) {
                        "true"
                    } else {
                        "false"
                    },
                )
                .finish(),
        );
    }
    let mut out = JsonObject::new()
        .str_field("type", "nessa-bench-pipeline")
        .raw_field("passed", if report.passed() { "true" } else { "false" })
        .f64_field("max_regress_pct", report.gates.max_regress_pct)
        .raw_field(
            "gate_wall",
            if report.gates.gate_wall {
                "true"
            } else {
                "false"
            },
        )
        .raw_field("baseline", &base.to_json())
        .raw_field("current", &current.to_json())
        .raw_field("diffs", &format!("[{}]", diffs.join(",")))
        .finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::{SpanRecord, SpanTree};

    fn trace_with_epoch_sims(sims: &[f64]) -> RunTrace {
        let mut spans = Vec::new();
        let mut id = 1u64;
        for (epoch, &sim) in sims.iter().enumerate() {
            let parent = id;
            spans.push(SpanRecord {
                id: parent,
                parent: None,
                name: "epoch".into(),
                attrs: vec![("epoch".into(), (epoch as u64).into())],
                start_secs: epoch as f64,
                wall_secs: 0.5,
                sim_secs: sim,
            });
            id += 1;
            for (name, frac) in [("select", 0.6), ("train", 0.0)] {
                spans.push(SpanRecord {
                    id,
                    parent: Some(parent),
                    name: name.into(),
                    attrs: vec![("epoch".into(), (epoch as u64).into())],
                    start_secs: epoch as f64,
                    wall_secs: 0.2,
                    sim_secs: sim * frac,
                });
                id += 1;
            }
        }
        let mut trace = RunTrace {
            tree: SpanTree::build(spans),
            ..RunTrace::default()
        };
        trace.counters.insert("train.batches".into(), 40);
        trace
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let q = Quantiles::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(q.p50, 3.0);
        assert_eq!(q.p95, 5.0);
        assert_eq!(q.p99, 5.0);
        assert_eq!(Quantiles::from_values(&[]), Quantiles::default());
    }

    #[test]
    fn summary_json_round_trips() {
        let summary = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0, 1.2, 0.9]));
        let json = summary.to_json();
        let back = RunSummary::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn identical_runs_pass() {
        let s = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0, 1.1]));
        let report = diff_runs(&s, &s, DiffGates::default());
        assert!(report.passed());
        assert!(report.regressions().is_empty());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0, 1.0, 1.0]));
        // 50 % slower epochs: way past the 10 % default tolerance.
        let slow = RunSummary::from_trace(&trace_with_epoch_sims(&[1.5, 1.5, 1.5]));
        let report = diff_runs(&base, &slow, DiffGates::default());
        assert!(!report.passed());
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|i| i.metric.as_str())
            .collect();
        assert!(names.contains(&"epoch.total_sim_s"), "{names:?}");
        assert!(names.contains(&"phase.select.sim_p95"), "{names:?}");
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn improvements_and_tolerated_noise_pass() {
        let base = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0, 1.0]));
        let faster = RunSummary::from_trace(&trace_with_epoch_sims(&[0.5, 0.5]));
        assert!(diff_runs(&base, &faster, DiffGates::default()).passed());
        let slightly_slower = RunSummary::from_trace(&trace_with_epoch_sims(&[1.05, 1.05]));
        assert!(diff_runs(&base, &slightly_slower, DiffGates::default()).passed());
    }

    #[test]
    fn wall_gating_is_opt_in() {
        let base = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0]));
        let mut cur = base.clone();
        cur.total_wall_s *= 10.0;
        assert!(diff_runs(&base, &cur, DiffGates::default()).passed());
        let gates = DiffGates {
            gate_wall: true,
            ..DiffGates::default()
        };
        assert!(!diff_runs(&base, &cur, gates).passed());
    }

    #[test]
    fn new_phase_is_reported_but_not_gated() {
        let base = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0]));
        let mut cur = base.clone();
        cur.phase_sim.insert(
            "newphase".into(),
            PhaseSummary {
                total: 5.0,
                quantiles: Quantiles {
                    p50: 5.0,
                    p95: 5.0,
                    p99: 5.0,
                },
            },
        );
        let report = diff_runs(&base, &cur, DiffGates::default());
        assert!(report.passed());
        let item = report
            .items
            .iter()
            .find(|i| i.metric == "phase.newphase.sim_total")
            .unwrap();
        assert!(!item.gated);
        assert!(item.delta_pct.is_infinite());
    }

    #[test]
    fn bench_artifact_is_valid_json_with_verdict() {
        let base = RunSummary::from_trace(&trace_with_epoch_sims(&[1.0, 1.0]));
        let cur = RunSummary::from_trace(&trace_with_epoch_sims(&[2.0, 2.0]));
        let report = diff_runs(&base, &cur, DiffGates::default());
        let artifact = bench_artifact(&base, &cur, &report);
        let v = JsonValue::parse(&artifact).unwrap();
        assert_eq!(
            v.get("type").unwrap().as_str(),
            Some("nessa-bench-pipeline")
        );
        assert_eq!(v.get("passed"), Some(&JsonValue::Bool(false)));
        assert!(v.get("diffs").unwrap().as_arr().unwrap().len() > 5);
        let back = RunSummary::from_json(v.get("current").unwrap()).unwrap();
        assert_eq!(back, cur);
    }
}
