//! Chrome trace-event export.
//!
//! Emits the JSON array flavor of the [Trace Event Format] — complete
//! (`"ph":"X"`) events only — loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Host spans and device events land
//! on separate process tracks because they run on different clocks:
//!
//! * **pid 1 "host"** — every span, `ts` = wall-clock microseconds since
//!   the telemetry stream was created, `dur` = wall microseconds. Nesting
//!   reproduces the span tree.
//! * **pid 2 "device"** — bridged SmartSSD events, `ts`/`dur` in
//!   *simulated*-clock microseconds; each phase label gets its own `tid`
//!   so scan/select/ship/feedback render as parallel tracks.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::run::RunTrace;
use nessa_telemetry::json::JsonObject;
use nessa_telemetry::AttrValue;
use std::collections::BTreeMap;

/// Host-span process id.
pub const HOST_PID: u64 = 1;
/// Device-event process id.
pub const DEVICE_PID: u64 = 2;

fn secs_to_us(s: f64) -> f64 {
    s * 1e6
}

fn attr_args(attrs: &[(String, AttrValue)]) -> String {
    let mut obj = JsonObject::new();
    for (k, v) in attrs {
        obj = match v {
            AttrValue::U64(v) => obj.u64_field(k, *v),
            AttrValue::I64(v) => obj.i64_field(k, *v),
            AttrValue::F64(v) => obj.f64_field(k, *v),
            AttrValue::Str(v) => obj.str_field(k, v),
        };
    }
    obj.finish()
}

/// Renders the trace as Chrome trace-event JSON (an array of complete
/// events), one event per line for diff-friendliness.
pub fn chrome_trace(trace: &RunTrace) -> String {
    let mut events = Vec::new();
    for span in trace.tree.spans() {
        events.push(
            JsonObject::new()
                .str_field("name", &span.name)
                .str_field("cat", "host")
                .str_field("ph", "X")
                .u64_field("pid", HOST_PID)
                .u64_field("tid", 1)
                .f64_field("ts", secs_to_us(span.start_secs))
                .f64_field("dur", secs_to_us(span.wall_secs))
                .raw_field("args", &attr_args(&span.attrs))
                .finish(),
        );
    }
    // One tid per device phase label, in order of first appearance, so
    // overlapping phases render as parallel tracks.
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut next_tid = 1u64;
    for ev in &trace.device_events {
        let tid = *tids.entry(ev.phase.as_str()).or_insert_with(|| {
            let t = next_tid;
            next_tid += 1;
            t
        });
        events.push(
            JsonObject::new()
                .str_field("name", &ev.phase)
                .str_field("cat", "device-sim")
                .str_field("ph", "X")
                .u64_field("pid", DEVICE_PID)
                .u64_field("tid", tid)
                .f64_field("ts", secs_to_us(ev.start_s))
                .f64_field("dur", secs_to_us(ev.duration_s))
                .raw_field(
                    "args",
                    &JsonObject::new().u64_field("bytes", ev.bytes).finish(),
                )
                .finish(),
        );
    }
    let mut out = String::from("[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::{DeviceEvent, JsonValue, SpanRecord, SpanTree};

    fn sample_trace() -> RunTrace {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "epoch".into(),
                attrs: vec![("epoch".into(), 0u64.into())],
                start_secs: 0.0,
                wall_secs: 0.5,
                sim_secs: 0.4,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "scan".into(),
                attrs: Vec::new(),
                start_secs: 0.1,
                wall_secs: 0.05,
                sim_secs: 0.2,
            },
        ];
        RunTrace {
            tree: SpanTree::build(spans),
            device_events: vec![
                DeviceEvent {
                    phase: "scan".into(),
                    start_s: 0.0,
                    duration_s: 0.2,
                    bytes: 1024,
                },
                DeviceEvent {
                    phase: "select".into(),
                    start_s: 0.2,
                    duration_s: 0.1,
                    bytes: 0,
                },
            ],
            ..RunTrace::default()
        }
    }

    #[test]
    fn output_is_a_valid_event_array() {
        let text = chrome_trace(&sample_trace());
        let parsed = JsonValue::parse(&text).unwrap();
        let events = parsed.as_arr().unwrap();
        assert_eq!(events.len(), 4);
        for ev in events {
            assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
            for key in ["name", "pid", "tid", "ts", "dur"] {
                assert!(ev.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn clock_domains_use_separate_pids() {
        let text = chrome_trace(&sample_trace());
        let parsed = JsonValue::parse(&text).unwrap();
        let events = parsed.as_arr().unwrap().to_vec();
        let host: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").unwrap().as_u64() == Some(HOST_PID))
            .collect();
        let device: Vec<_> = events
            .iter()
            .filter(|e| e.get("pid").unwrap().as_u64() == Some(DEVICE_PID))
            .collect();
        assert_eq!(host.len(), 2);
        assert_eq!(device.len(), 2);
        // Host span ts/dur are wall microseconds.
        let scan = host
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("scan"))
            .unwrap();
        assert_eq!(scan.get("ts").unwrap().as_f64(), Some(0.1e6));
        assert_eq!(scan.get("dur").unwrap().as_f64(), Some(0.05e6));
        // Device phases get distinct tids.
        let tids: Vec<u64> = device
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_ne!(tids[0], tids[1]);
    }

    #[test]
    fn span_args_carry_attributes() {
        let text = chrome_trace(&sample_trace());
        let parsed = JsonValue::parse(&text).unwrap();
        let epoch = parsed
            .as_arr()
            .unwrap()
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("epoch"))
            .cloned()
            .unwrap();
        assert_eq!(
            epoch.get("args").unwrap().get("epoch").unwrap().as_u64(),
            Some(0)
        );
    }
}
