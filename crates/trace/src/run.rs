//! Loading a telemetry stream back into typed form.

use nessa_telemetry::{
    parse_stream, DeviceEvent, HistogramSummary, SpanTree, StreamError, Telemetry, TelemetryEvent,
};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A fully-loaded telemetry stream for one run.
///
/// Metric lines are appended at every `Telemetry::flush`, so a stream may
/// contain several generations of the same metric; the *last* value wins
/// (it is the end-of-run state).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// The reconstructed span hierarchy.
    pub tree: SpanTree,
    /// Bridged device events (simulated clock), in stream order.
    pub device_events: Vec<DeviceEvent>,
    /// Final counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Final histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Lines of types this crate does not interpret (e.g. `epoch`/`run`
    /// lines from `RunReport::to_jsonl` sharing the file).
    pub other_lines: usize,
}

impl RunTrace {
    /// Assembles a trace from already-decoded events.
    pub fn from_events(events: Vec<TelemetryEvent>) -> Self {
        let mut spans = Vec::new();
        let mut out = RunTrace::default();
        for ev in events {
            match ev {
                TelemetryEvent::Span(s) => spans.push(s),
                TelemetryEvent::Device(d) => out.device_events.push(d),
                TelemetryEvent::Counter { name, value } => {
                    out.counters.insert(name, value);
                }
                TelemetryEvent::Gauge { name, value } => {
                    out.gauges.insert(name, value);
                }
                TelemetryEvent::Histogram { name, summary } => {
                    out.histograms.insert(name, summary);
                }
                TelemetryEvent::Other(_) => out.other_lines += 1,
            }
        }
        out.tree = SpanTree::build(spans);
        out
    }

    /// Parses a JSONL stream.
    // Deliberately mirrors `FromStr::from_str`; kept inherent so callers
    // get it without importing the trait.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Self, StreamError> {
        Ok(Self::from_events(parse_stream(text)?))
    }

    /// Reads and parses a JSONL artifact from disk.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, LoadError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
            path: path.display().to_string(),
            error: e,
        })?;
        Self::from_str(&text).map_err(LoadError::Parse)
    }

    /// Captures the current state of a live telemetry handle — the same
    /// shape the JSONL round trip produces, for in-memory comparison.
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        let snapshot = telemetry.metrics_snapshot();
        RunTrace {
            tree: SpanTree::build(telemetry.spans()),
            device_events: telemetry.device_events(),
            counters: snapshot.counters.into_iter().collect(),
            gauges: snapshot.gauges.into_iter().collect(),
            histograms: snapshot.histograms.into_iter().collect(),
            other_lines: 0,
        }
    }
}

/// Why a trace artifact could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying I/O error.
        error: std::io::Error,
    },
    /// A line failed to parse.
    Parse(StreamError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            LoadError::Parse(e) => write!(f, "malformed telemetry stream: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_metric_lines_win() {
        let text = "\
{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n\
{\"type\":\"gauge\",\"name\":\"g\",\"value\":0.5}\n\
{\"type\":\"counter\",\"name\":\"c\",\"value\":7}\n";
        let trace = RunTrace::from_str(text).unwrap();
        assert_eq!(trace.counters["c"], 7);
        assert_eq!(trace.gauges["g"], 0.5);
    }

    #[test]
    fn unknown_lines_are_counted_not_fatal() {
        let text = "{\"type\":\"epoch\",\"epoch\":0}\n{\"type\":\"run\",\"name\":\"x\"}\n";
        let trace = RunTrace::from_str(text).unwrap();
        assert_eq!(trace.other_lines, 2);
        assert!(trace.tree.is_empty());
    }

    #[test]
    fn missing_file_reports_path() {
        let err = RunTrace::from_path("/no/such/file.jsonl").unwrap_err();
        assert!(err.to_string().contains("/no/such/file.jsonl"));
    }
}
