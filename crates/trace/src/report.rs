//! The report view: where did the epoch go?

use crate::run::RunTrace;
use nessa_telemetry::HistogramSummary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate of one phase's spans within a scope (one epoch or the run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Number of spans.
    pub count: usize,
    /// Summed host wall seconds.
    pub wall_s: f64,
    /// Summed simulated device seconds.
    pub sim_s: f64,
}

impl PhaseStat {
    fn add(&mut self, wall_s: f64, sim_s: f64) {
        self.count += 1;
        self.wall_s += wall_s;
        self.sim_s += sim_s;
    }
}

/// One epoch's time breakdown.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Epoch number (from the `epoch` span attribute).
    pub epoch: u64,
    /// The epoch span's host wall seconds.
    pub wall_s: f64,
    /// The epoch span's simulated device seconds.
    pub sim_s: f64,
    /// Phase name → aggregate over the epoch span's children.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Span names along the most-expensive descendant chain (dominant
    /// clock, see `SpanRecord::cost_secs`), starting at `epoch`.
    pub critical_path: Vec<String>,
    /// **Measured** selection-vs-training concurrency, from real span
    /// intervals: the wall-clock intersection of the selection side
    /// (scan/select/ship/fallback/retry/`overlap.select` spans anywhere
    /// in the epoch subtree) with the `train` spans, divided by the
    /// shorter side's union length. 1.0 means the shorter side ran
    /// entirely under the longer one; a sequential schedule measures
    /// ≈ 0. `None` when either side is absent or took no measurable
    /// wall time.
    pub overlap_ratio: Option<f64>,
    /// The legacy *estimate*: simulated device seconds of the epoch's
    /// non-`train` children divided by the `train` child's wall seconds
    /// (how much training time selection *would need to hide under*,
    /// not how much it actually did). Kept for old baselines and
    /// capacity planning.
    pub overlap_ratio_est: Option<f64>,
}

/// Span names that count as the near-storage selection side when
/// measuring concurrency against `train` spans.
const SELECT_SIDE: &[&str] = &[
    "scan",
    "select",
    "ship",
    "fallback",
    "retry",
    "overlap.select",
];

/// Sorts and merges wall-clock intervals into a disjoint union.
fn merge_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn union_len(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Total overlap between two disjoint, sorted interval unions.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// The full report over one run's trace.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-epoch breakdowns, ordered by epoch number.
    pub epochs: Vec<EpochReport>,
    /// Phase name → aggregate across all epochs.
    pub phase_totals: BTreeMap<String, PhaseStat>,
    /// Device phase label → (event count, summed sim seconds, bytes).
    pub device_phases: BTreeMap<String, (usize, f64, u64)>,
    /// Final histogram summaries (p50/p95/p99 come from the log-bucket
    /// histogram lines, so they carry its ~±15 % relative error).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TraceReport {
    /// Builds the report from a loaded trace.
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut epochs = Vec::new();
        let mut phase_totals: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for root in trace.tree.roots().filter(|s| s.name == "epoch") {
            let mut rep = EpochReport {
                epoch: root.attr_u64("epoch").unwrap_or(u64::MAX),
                wall_s: root.wall_secs,
                sim_s: root.sim_secs,
                ..EpochReport::default()
            };
            let mut device_sim = 0.0;
            let mut train_wall = 0.0;
            for child in trace.tree.children(root.id) {
                rep.phases
                    .entry(child.name.clone())
                    .or_default()
                    .add(child.wall_secs, child.sim_secs);
                phase_totals
                    .entry(child.name.clone())
                    .or_default()
                    .add(child.wall_secs, child.sim_secs);
                if child.name == "train" {
                    train_wall += child.wall_secs;
                } else {
                    device_sim += child.sim_secs;
                }
            }
            rep.critical_path = trace
                .tree
                .critical_path(root.id)
                .iter()
                .map(|s| s.name.clone())
                .collect();
            rep.overlap_ratio_est = (train_wall > 0.0).then_some(device_sim / train_wall);
            // Measured concurrency: collect wall intervals from the
            // whole epoch subtree (overlapped rounds nest their
            // scan/select/ship under an `overlap.select` wrapper, one
            // level down) and intersect the two sides.
            let mut select_iv: Vec<(f64, f64)> = Vec::new();
            let mut train_iv: Vec<(f64, f64)> = Vec::new();
            let mut stack: Vec<u64> = vec![root.id];
            while let Some(id) = stack.pop() {
                for child in trace.tree.children(id) {
                    stack.push(child.id);
                    let interval = (child.start_secs, child.start_secs + child.wall_secs);
                    if child.name == "train" {
                        train_iv.push(interval);
                    } else if SELECT_SIDE.contains(&child.name.as_str()) {
                        select_iv.push(interval);
                    }
                }
            }
            let select_u = merge_intervals(select_iv);
            let train_u = merge_intervals(train_iv);
            let shorter = union_len(&select_u).min(union_len(&train_u));
            rep.overlap_ratio =
                (shorter > 0.0).then(|| intersection_len(&select_u, &train_u) / shorter);
            epochs.push(rep);
        }
        epochs.sort_by_key(|e| e.epoch);
        let mut device_phases: BTreeMap<String, (usize, f64, u64)> = BTreeMap::new();
        for ev in &trace.device_events {
            let slot = device_phases.entry(ev.phase.clone()).or_default();
            slot.0 += 1;
            slot.1 += ev.duration_s;
            slot.2 += ev.bytes;
        }
        TraceReport {
            epochs,
            phase_totals,
            device_phases,
            histograms: trace.histograms.clone(),
        }
    }

    /// Mean **measured** selection-vs-training overlap ratio across
    /// epochs that have one (see [`EpochReport::overlap_ratio`]).
    pub fn mean_overlap_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.epochs.iter().filter_map(|e| e.overlap_ratio).collect();
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    }

    /// Mean of the legacy sim-vs-wall overlap *estimate* (see
    /// [`EpochReport::overlap_ratio_est`]).
    pub fn mean_overlap_ratio_est(&self) -> Option<f64> {
        let ratios: Vec<f64> = self
            .epochs
            .iter()
            .filter_map(|e| e.overlap_ratio_est)
            .collect();
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace report ({} epochs)", self.epochs.len());
        out.push_str("  per-epoch breakdown (sim = simulated device clock, wall = host clock):\n");
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "    epoch {:<3} wall {:>10.6}s  sim {:>10.6}s  overlap {}  (est {})",
                e.epoch,
                e.wall_s,
                e.sim_s,
                match e.overlap_ratio {
                    Some(r) => format!("{r:.3}"),
                    None => "-".into(),
                },
                match e.overlap_ratio_est {
                    Some(r) => format!("{r:.3e}"),
                    None => "-".into(),
                }
            );
            for (name, p) in &e.phases {
                let _ = writeln!(
                    out,
                    "      {:<10} x{:<2} wall {:>10.6}s  sim {:>10.6}s",
                    name, p.count, p.wall_s, p.sim_s
                );
            }
            let _ = writeln!(out, "      critical path: {}", e.critical_path.join(" > "));
        }
        out.push_str("  phase totals:\n");
        for (name, p) in &self.phase_totals {
            let _ = writeln!(
                out,
                "    {:<10} x{:<3} wall {:>10.6}s  sim {:>10.6}s",
                name, p.count, p.wall_s, p.sim_s
            );
        }
        if let Some(r) = self.mean_overlap_ratio() {
            let _ = writeln!(
                out,
                "  mean measured overlap ratio: {r:.3} (1 = shorter side fully hidden; sequential ≈ 0)"
            );
        }
        if let Some(r) = self.mean_overlap_ratio_est() {
            let _ = writeln!(
                out,
                "  mean overlap estimate (device sim / train wall): {r:.3e} (<1 = selection could hide under training)"
            );
        }
        if !self.device_phases.is_empty() {
            out.push_str("  device events (sim clock):\n");
            for (name, (count, secs, bytes)) in &self.device_phases {
                let _ = writeln!(
                    out,
                    "    {:<12} x{:<4} {:>12.6}s  {:>14} B",
                    name, count, secs, bytes
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms (count / p50 / p95 / p99):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {:<28} {} / {:.3e} / {:.3e} / {:.3e}",
                    name, h.count, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::{SpanRecord, SpanTree};

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        epoch: u64,
        wall: f64,
        sim: f64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            attrs: vec![("epoch".into(), epoch.into())],
            start_secs: 0.0,
            wall_secs: wall,
            sim_secs: sim,
        }
    }

    fn two_epoch_trace() -> RunTrace {
        let spans = vec![
            span(1, None, "epoch", 0, 1.0, 0.9),
            span(2, Some(1), "scan", 0, 0.01, 0.3),
            span(3, Some(1), "select", 0, 0.02, 0.5),
            span(4, Some(1), "train", 0, 0.8, 0.0),
            span(5, Some(1), "feedback", 0, 0.01, 0.1),
            span(6, None, "epoch", 1, 1.1, 0.4),
            span(7, Some(6), "train", 1, 1.0, 0.0),
            span(8, Some(6), "feedback", 1, 0.01, 0.4),
        ];
        RunTrace {
            tree: SpanTree::build(spans),
            ..RunTrace::default()
        }
    }

    #[test]
    fn epochs_sorted_with_phase_stats() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].epoch, 0);
        let scan = &rep.epochs[0].phases["scan"];
        assert_eq!(scan.count, 1);
        assert_eq!(scan.sim_s, 0.3);
        assert_eq!(rep.phase_totals["train"].count, 2);
        assert!((rep.phase_totals["train"].wall_s - 1.8).abs() < 1e-12);
    }

    #[test]
    fn overlap_estimate_is_device_sim_over_train_wall() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        // epoch 0: (0.3 + 0.5 + 0.1) sim vs 0.8 train wall.
        let r0 = rep.epochs[0].overlap_ratio_est.unwrap();
        assert!((r0 - 0.9 / 0.8).abs() < 1e-12, "{r0}");
        // epoch 1: 0.4 / 1.0.
        let r1 = rep.epochs[1].overlap_ratio_est.unwrap();
        assert!((r1 - 0.4).abs() < 1e-12, "{r1}");
        let mean = rep.mean_overlap_ratio_est().unwrap();
        assert!((mean - (r0 + r1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn measured_overlap_comes_from_span_intervals() {
        // All two_epoch_trace spans start at t = 0, so epoch 0's select
        // side ([0, 0.02]) sits entirely inside train ([0, 0.8]):
        // measured ratio 1. Epoch 1 has no selection spans at all, so
        // there is nothing to measure.
        let rep = TraceReport::from_trace(&two_epoch_trace());
        let r0 = rep.epochs[0].overlap_ratio.unwrap();
        assert!((r0 - 1.0).abs() < 1e-12, "{r0}");
        assert_eq!(rep.epochs[1].overlap_ratio, None);
        let mean = rep.mean_overlap_ratio().unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
    }

    fn span_at(id: u64, parent: Option<u64>, name: &str, start: f64, wall: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            attrs: vec![("epoch".into(), 0u64.into())],
            start_secs: start,
            wall_secs: wall,
            sim_secs: 0.0,
        }
    }

    #[test]
    fn measured_overlap_walks_nested_overlap_rounds() {
        // An overlapped epoch: the worker's scan/select/ship nest under
        // an `overlap.select` wrapper while train runs [0.0, 1.0].
        // Select-side union: wrapper [0.1, 0.9] already covers its
        // children (dedup via interval union), plus an exposed tail
        // retry [1.2, 1.4]. Intersection with train = 0.8; shorter side
        // = select union (0.8 + 0.2 = 1.0) vs train (1.0) → 0.8.
        let spans = vec![
            span_at(1, None, "epoch", 0.0, 1.5),
            span_at(2, Some(1), "train", 0.0, 1.0),
            span_at(3, Some(1), "overlap.select", 0.1, 0.8),
            span_at(4, Some(3), "scan", 0.1, 0.3),
            span_at(5, Some(3), "select", 0.4, 0.3),
            span_at(6, Some(3), "ship", 0.7, 0.2),
            span_at(7, Some(1), "retry", 1.2, 0.2),
            span_at(8, Some(1), "overlap.handoff", 1.0, 0.1),
        ];
        let trace = RunTrace {
            tree: SpanTree::build(spans),
            ..RunTrace::default()
        };
        let rep = TraceReport::from_trace(&trace);
        let r = rep.epochs[0].overlap_ratio.unwrap();
        assert!((r - 0.8).abs() < 1e-12, "{r}");
        // The handoff serializes: it never counts toward either side.
        // Direct-children phase stats still see the wrapper, not its
        // children.
        assert!(rep.epochs[0].phases.contains_key("overlap.select"));
        assert!(!rep.epochs[0].phases.contains_key("scan"));
    }

    #[test]
    fn interval_helpers_merge_and_intersect() {
        let merged = merge_intervals(vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 4.0)]);
        assert_eq!(merged, vec![(0.0, 2.0), (3.0, 4.0)]);
        assert!((union_len(&merged) - 3.0).abs() < 1e-12);
        let other = merge_intervals(vec![(1.5, 3.5)]);
        assert!((intersection_len(&merged, &other) - 1.0).abs() < 1e-12);
        assert_eq!(intersection_len(&merged, &[]), 0.0);
    }

    #[test]
    fn critical_path_descends_dominant_phase() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        // epoch 0's dominant child is train (wall 0.8 > select sim 0.5).
        assert_eq!(rep.epochs[0].critical_path, vec!["epoch", "train"]);
        assert!(rep.render().contains("critical path: epoch > train"));
    }

    #[test]
    fn empty_trace_renders() {
        let rep = TraceReport::from_trace(&RunTrace::default());
        assert!(rep.epochs.is_empty());
        assert!(rep.render().contains("0 epochs"));
    }
}
