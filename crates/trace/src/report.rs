//! The report view: where did the epoch go?

use crate::run::RunTrace;
use nessa_telemetry::HistogramSummary;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate of one phase's spans within a scope (one epoch or the run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Number of spans.
    pub count: usize,
    /// Summed host wall seconds.
    pub wall_s: f64,
    /// Summed simulated device seconds.
    pub sim_s: f64,
}

impl PhaseStat {
    fn add(&mut self, wall_s: f64, sim_s: f64) {
        self.count += 1;
        self.wall_s += wall_s;
        self.sim_s += sim_s;
    }
}

/// One epoch's time breakdown.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Epoch number (from the `epoch` span attribute).
    pub epoch: u64,
    /// The epoch span's host wall seconds.
    pub wall_s: f64,
    /// The epoch span's simulated device seconds.
    pub sim_s: f64,
    /// Phase name → aggregate over the epoch span's children.
    pub phases: BTreeMap<String, PhaseStat>,
    /// Span names along the most-expensive descendant chain (dominant
    /// clock, see `SpanRecord::cost_secs`), starting at `epoch`.
    pub critical_path: Vec<String>,
    /// Simulated device seconds of the selection side (every child
    /// except `train`) divided by the `train` child's wall seconds.
    /// NeSSA's premise is that this stays below 1: selection on the
    /// SmartSSD hides under GPU training time. `None` when the epoch has
    /// no train span (or it took no measurable time).
    pub overlap_ratio: Option<f64>,
}

/// The full report over one run's trace.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Per-epoch breakdowns, ordered by epoch number.
    pub epochs: Vec<EpochReport>,
    /// Phase name → aggregate across all epochs.
    pub phase_totals: BTreeMap<String, PhaseStat>,
    /// Device phase label → (event count, summed sim seconds, bytes).
    pub device_phases: BTreeMap<String, (usize, f64, u64)>,
    /// Final histogram summaries (p50/p95/p99 come from the log-bucket
    /// histogram lines, so they carry its ~±15 % relative error).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TraceReport {
    /// Builds the report from a loaded trace.
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut epochs = Vec::new();
        let mut phase_totals: BTreeMap<String, PhaseStat> = BTreeMap::new();
        for root in trace.tree.roots().filter(|s| s.name == "epoch") {
            let mut rep = EpochReport {
                epoch: root.attr_u64("epoch").unwrap_or(u64::MAX),
                wall_s: root.wall_secs,
                sim_s: root.sim_secs,
                ..EpochReport::default()
            };
            let mut device_sim = 0.0;
            let mut train_wall = 0.0;
            for child in trace.tree.children(root.id) {
                rep.phases
                    .entry(child.name.clone())
                    .or_default()
                    .add(child.wall_secs, child.sim_secs);
                phase_totals
                    .entry(child.name.clone())
                    .or_default()
                    .add(child.wall_secs, child.sim_secs);
                if child.name == "train" {
                    train_wall += child.wall_secs;
                } else {
                    device_sim += child.sim_secs;
                }
            }
            rep.critical_path = trace
                .tree
                .critical_path(root.id)
                .iter()
                .map(|s| s.name.clone())
                .collect();
            rep.overlap_ratio = (train_wall > 0.0).then_some(device_sim / train_wall);
            epochs.push(rep);
        }
        epochs.sort_by_key(|e| e.epoch);
        let mut device_phases: BTreeMap<String, (usize, f64, u64)> = BTreeMap::new();
        for ev in &trace.device_events {
            let slot = device_phases.entry(ev.phase.clone()).or_default();
            slot.0 += 1;
            slot.1 += ev.duration_s;
            slot.2 += ev.bytes;
        }
        TraceReport {
            epochs,
            phase_totals,
            device_phases,
            histograms: trace.histograms.clone(),
        }
    }

    /// Mean selection-vs-training overlap ratio across epochs that have
    /// one.
    pub fn mean_overlap_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.epochs.iter().filter_map(|e| e.overlap_ratio).collect();
        (!ratios.is_empty()).then(|| ratios.iter().sum::<f64>() / ratios.len() as f64)
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace report ({} epochs)", self.epochs.len());
        out.push_str("  per-epoch breakdown (sim = simulated device clock, wall = host clock):\n");
        for e in &self.epochs {
            let _ = writeln!(
                out,
                "    epoch {:<3} wall {:>10.6}s  sim {:>10.6}s  overlap {}",
                e.epoch,
                e.wall_s,
                e.sim_s,
                match e.overlap_ratio {
                    Some(r) => format!("{r:.3e}"),
                    None => "-".into(),
                }
            );
            for (name, p) in &e.phases {
                let _ = writeln!(
                    out,
                    "      {:<10} x{:<2} wall {:>10.6}s  sim {:>10.6}s",
                    name, p.count, p.wall_s, p.sim_s
                );
            }
            let _ = writeln!(out, "      critical path: {}", e.critical_path.join(" > "));
        }
        out.push_str("  phase totals:\n");
        for (name, p) in &self.phase_totals {
            let _ = writeln!(
                out,
                "    {:<10} x{:<3} wall {:>10.6}s  sim {:>10.6}s",
                name, p.count, p.wall_s, p.sim_s
            );
        }
        if let Some(r) = self.mean_overlap_ratio() {
            let _ = writeln!(
                out,
                "  mean selection/training overlap ratio: {r:.3e} (<1 = selection hides under training)"
            );
        }
        if !self.device_phases.is_empty() {
            out.push_str("  device events (sim clock):\n");
            for (name, (count, secs, bytes)) in &self.device_phases {
                let _ = writeln!(
                    out,
                    "    {:<12} x{:<4} {:>12.6}s  {:>14} B",
                    name, count, secs, bytes
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms (count / p50 / p95 / p99):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {:<28} {} / {:.3e} / {:.3e} / {:.3e}",
                    name, h.count, h.p50, h.p95, h.p99
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::{SpanRecord, SpanTree};

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        epoch: u64,
        wall: f64,
        sim: f64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            attrs: vec![("epoch".into(), epoch.into())],
            start_secs: 0.0,
            wall_secs: wall,
            sim_secs: sim,
        }
    }

    fn two_epoch_trace() -> RunTrace {
        let spans = vec![
            span(1, None, "epoch", 0, 1.0, 0.9),
            span(2, Some(1), "scan", 0, 0.01, 0.3),
            span(3, Some(1), "select", 0, 0.02, 0.5),
            span(4, Some(1), "train", 0, 0.8, 0.0),
            span(5, Some(1), "feedback", 0, 0.01, 0.1),
            span(6, None, "epoch", 1, 1.1, 0.4),
            span(7, Some(6), "train", 1, 1.0, 0.0),
            span(8, Some(6), "feedback", 1, 0.01, 0.4),
        ];
        RunTrace {
            tree: SpanTree::build(spans),
            ..RunTrace::default()
        }
    }

    #[test]
    fn epochs_sorted_with_phase_stats() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].epoch, 0);
        let scan = &rep.epochs[0].phases["scan"];
        assert_eq!(scan.count, 1);
        assert_eq!(scan.sim_s, 0.3);
        assert_eq!(rep.phase_totals["train"].count, 2);
        assert!((rep.phase_totals["train"].wall_s - 1.8).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_is_device_sim_over_train_wall() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        // epoch 0: (0.3 + 0.5 + 0.1) sim vs 0.8 train wall.
        let r0 = rep.epochs[0].overlap_ratio.unwrap();
        assert!((r0 - 0.9 / 0.8).abs() < 1e-12, "{r0}");
        // epoch 1: 0.4 / 1.0.
        let r1 = rep.epochs[1].overlap_ratio.unwrap();
        assert!((r1 - 0.4).abs() < 1e-12, "{r1}");
        let mean = rep.mean_overlap_ratio().unwrap();
        assert!((mean - (r0 + r1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_descends_dominant_phase() {
        let rep = TraceReport::from_trace(&two_epoch_trace());
        // epoch 0's dominant child is train (wall 0.8 > select sim 0.5).
        assert_eq!(rep.epochs[0].critical_path, vec!["epoch", "train"]);
        assert!(rep.render().contains("critical path: epoch > train"));
    }

    #[test]
    fn empty_trace_renders() {
        let rep = TraceReport::from_trace(&RunTrace::default());
        assert!(rep.epochs.is_empty());
        assert!(rep.render().contains("0 epochs"));
    }
}
