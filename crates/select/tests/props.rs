//! Property tests for the selection algorithms.

use nessa_select::craig::{select_per_class, select_per_class_factored, CraigOptions};
use nessa_select::facility::{maximize, GreedyVariant, SimilarityMatrix};
use nessa_select::{fraction_count, kcenters, kmedoids, random};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use proptest::prelude::*;

fn features(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(&[n, d], -3.0, 3.0, &mut rng)
}

fn labels(n: usize, classes: usize, seed: u64) -> Vec<usize> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.index(classes)).collect()
}

proptest! {
    #[test]
    fn greedy_objective_grows_with_k(n in 4usize..24, d in 1usize..5, seed in any::<u64>()) {
        let sim = SimilarityMatrix::from_features(&features(n, d, seed));
        let mut rng = Rng64::new(seed ^ 1);
        let mut prev = 0.0f32;
        for k in 1..=n.min(6) {
            let sel = maximize(&sim, k, GreedyVariant::Lazy, &mut rng).unwrap();
            let f = sim.objective(&sel.indices);
            prop_assert!(f >= prev - 1e-3 * prev.abs().max(1.0), "k={}: {} < {}", k, f, prev);
            prev = f;
        }
    }

    #[test]
    fn per_class_selection_is_stratified(
        n in 8usize..60, classes in 2usize..5, f in 0.1f32..0.9, seed in any::<u64>()
    ) {
        let feats = features(n, 4, seed);
        let ys = labels(n, classes, seed ^ 2);
        let mut rng = Rng64::new(seed ^ 3);
        let sel =
            select_per_class(&feats, &ys, classes, f, &CraigOptions::default(), &mut rng).unwrap();
        // Every selected index has a valid label; per-class counts honour
        // fraction_count.
        let mut per_class = vec![0usize; classes];
        for &i in &sel.indices {
            per_class[ys[i]] += 1;
        }
        let mut sizes = vec![0usize; classes];
        for &y in &ys {
            sizes[y] += 1;
        }
        for c in 0..classes {
            prop_assert_eq!(per_class[c], fraction_count(sizes[c], f), "class {}", c);
        }
        // Weights cover the whole pool.
        let total: f32 = sel.weights.iter().sum();
        prop_assert!((total - n as f32).abs() < 1e-3);
    }

    #[test]
    fn factored_equals_flat_on_rank_one_case(
        n in 4usize..20, c in 2usize..4, seed in any::<u64>()
    ) {
        // Features with a constant second factor reduce the outer-product
        // distance to a scaled flat distance.
        let a = features(n, c, seed);
        let ones = Tensor::ones(&[n, 1]);
        let ys = labels(n, 2, seed ^ 4);
        let opts = CraigOptions::default();
        let flat = select_per_class(&a, &ys, 2, 0.5, &opts, &mut Rng64::new(9)).unwrap();
        let fact =
            select_per_class_factored(&a, &ones, &ys, 2, 0.5, &opts, &mut Rng64::new(9)).unwrap();
        prop_assert_eq!(flat.indices, fact.indices);
    }

    #[test]
    fn kcenters_weights_cover_pool(n in 2usize..40, k in 1usize..10, seed in any::<u64>()) {
        let feats = features(n, 3, seed);
        let mut rng = Rng64::new(seed ^ 5);
        let sel = kcenters::select(&feats, k, &mut rng);
        let total: f32 = sel.weights.iter().sum();
        prop_assert!((total - n as f32).abs() < 1e-3);
        prop_assert!(sel.weights.iter().all(|&w| w >= 1.0));
    }

    #[test]
    fn kmedoids_refine_never_worsens(n in 4usize..24, k in 1usize..5, seed in any::<u64>()) {
        let feats = features(n, 3, seed);
        let mut rng = Rng64::new(seed ^ 6);
        let start = rng.sample_indices(n, k.min(n));
        let before = kmedoids::cost(&feats, &start);
        let refined = kmedoids::refine(&feats, &start, 10);
        let after = kmedoids::cost(&feats, &refined.indices);
        prop_assert!(after <= before + 1e-3);
    }

    #[test]
    fn random_selection_weights_are_unbiased(n in 1usize..200, k in 1usize..50, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let sel = random::select(n, k, &mut rng);
        let total: f32 = sel.weights.iter().sum();
        prop_assert!((total - n as f32).abs() < 1e-2);
    }
}
