//! Uniform random selection baseline.

use crate::{fraction_count, Selection};
use nessa_tensor::rng::Rng64;

/// Selects `k` candidates uniformly at random from a pool of `n`, with all
/// weights equal to `n / k` so the weighted gradient remains an unbiased
/// estimate of the full-pool gradient.
///
/// `k ≥ n` returns all candidates with unit weights.
pub fn select(n: usize, k: usize, rng: &mut Rng64) -> Selection {
    if n == 0 || k == 0 {
        return Selection::default();
    }
    let k = k.min(n);
    let indices = rng.sample_indices(n, k);
    let w = n as f32 / k as f32;
    let weights = vec![w; k];
    Selection::new(indices, weights)
}

/// Selects `⌈fraction · |class|⌉` candidates uniformly within each class.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]` or any label is `≥ classes`.
pub fn select_per_class(
    labels: &[usize],
    classes: usize,
    fraction: f32,
    rng: &mut Rng64,
) -> Selection {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    assert!(labels.iter().all(|&y| y < classes), "label out of range");
    let mut by_class = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y].push(i);
    }
    let mut merged = Selection::default();
    for members in &by_class {
        if members.is_empty() {
            continue;
        }
        let k = fraction_count(members.len(), fraction);
        merged.extend(select(members.len(), k, rng).into_global(members));
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn selects_distinct_indices() {
        let mut rng = Rng64::new(0);
        let sel = select(50, 10, &mut rng);
        assert_eq!(sel.len(), 10);
        let set: HashSet<_> = sel.indices.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(sel.weights.iter().all(|&w| w == 5.0));
    }

    #[test]
    fn weights_preserve_total_mass() {
        let mut rng = Rng64::new(1);
        let sel = select(100, 25, &mut rng);
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn k_ge_n_selects_all() {
        let mut rng = Rng64::new(2);
        let sel = select(5, 10, &mut rng);
        assert_eq!(sel.len(), 5);
        assert!(sel.weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn per_class_is_stratified() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let mut rng = Rng64::new(3);
        let sel = select_per_class(&labels, 4, 0.3, &mut rng);
        for c in 0..4 {
            let picks = sel.indices.iter().filter(|&&i| labels[i] == c).count();
            assert_eq!(picks, 3, "class {c}");
        }
    }

    #[test]
    fn empty_pool() {
        let mut rng = Rng64::new(4);
        assert!(select(0, 3, &mut rng).is_empty());
        assert!(select(3, 0, &mut rng).is_empty());
    }
}
