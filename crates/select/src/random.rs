//! Uniform random selection baseline.
//!
//! Doubles as the last rung of the pipeline's degradation ladder:
//! [`select_per_class_checked`] is the panic-free entry point the host
//! falls back to when both the device kernel and the host-side
//! facility-location path are out.

use crate::{fraction_count, SelectError, Selection};
use nessa_tensor::rng::Rng64;

/// Selects `k` candidates uniformly at random from a pool of `n`, with all
/// weights equal to `n / k` so the weighted gradient remains an unbiased
/// estimate of the full-pool gradient.
///
/// `k ≥ n` returns all candidates with unit weights.
pub fn select(n: usize, k: usize, rng: &mut Rng64) -> Selection {
    if n == 0 || k == 0 {
        return Selection::default();
    }
    let k = k.min(n);
    let indices = rng.sample_indices(n, k);
    let w = n as f32 / k as f32;
    let weights = vec![w; k];
    Selection::new(indices, weights)
}

/// Selects `⌈fraction · |class|⌉` candidates uniformly within each class.
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]` or any label is `≥ classes`.
pub fn select_per_class(
    labels: &[usize],
    classes: usize,
    fraction: f32,
    rng: &mut Rng64,
) -> Selection {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    assert!(labels.iter().all(|&y| y < classes), "label out of range");
    let mut by_class = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y].push(i);
    }
    let mut merged = Selection::default();
    for members in &by_class {
        if members.is_empty() {
            continue;
        }
        let k = fraction_count(members.len(), fraction);
        merged.extend(select(members.len(), k, rng).into_global(members));
    }
    merged
}

/// Panic-free [`select_per_class`]: the degradation-ladder entry point
/// used by the pipeline when facility-location selection is unavailable.
///
/// # Errors
///
/// Returns [`SelectError::BadFraction`] when `fraction` is outside
/// `(0, 1]` and [`SelectError::LabelOutOfRange`] when any label is
/// `≥ classes`.
pub fn select_per_class_checked(
    labels: &[usize],
    classes: usize,
    fraction: f32,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SelectError::BadFraction(fraction));
    }
    if let Some(&label) = labels.iter().find(|&&y| y >= classes) {
        return Err(SelectError::LabelOutOfRange { label, classes });
    }
    Ok(select_per_class(labels, classes, fraction, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn selects_distinct_indices() {
        let mut rng = Rng64::new(0);
        let sel = select(50, 10, &mut rng);
        assert_eq!(sel.len(), 10);
        let set: HashSet<_> = sel.indices.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(sel.weights.iter().all(|&w| w == 5.0));
    }

    #[test]
    fn weights_preserve_total_mass() {
        let mut rng = Rng64::new(1);
        let sel = select(100, 25, &mut rng);
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn k_ge_n_selects_all() {
        let mut rng = Rng64::new(2);
        let sel = select(5, 10, &mut rng);
        assert_eq!(sel.len(), 5);
        assert!(sel.weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn per_class_is_stratified() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let mut rng = Rng64::new(3);
        let sel = select_per_class(&labels, 4, 0.3, &mut rng);
        for c in 0..4 {
            let picks = sel.indices.iter().filter(|&&i| labels[i] == c).count();
            assert_eq!(picks, 3, "class {c}");
        }
    }

    #[test]
    fn checked_variant_rejects_bad_inputs_without_panicking() {
        let mut rng = Rng64::new(5);
        let labels = vec![0usize, 1, 2];
        assert!(matches!(
            select_per_class_checked(&labels, 3, 0.0, &mut rng),
            Err(SelectError::BadFraction(_))
        ));
        assert!(matches!(
            select_per_class_checked(&labels, 2, 0.5, &mut rng),
            Err(SelectError::LabelOutOfRange {
                label: 2,
                classes: 2
            })
        ));
        let sel = select_per_class_checked(&labels, 3, 1.0, &mut rng).unwrap();
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn checked_variant_matches_panicking_variant() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let a = select_per_class(&labels, 4, 0.3, &mut Rng64::new(9));
        let b = select_per_class_checked(&labels, 4, 0.3, &mut Rng64::new(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_pool() {
        let mut rng = Rng64::new(4);
        assert!(select(0, 3, &mut rng).is_empty());
        assert!(select(3, 0, &mut rng).is_empty());
    }
}
