//! Per-class CRAIG selection with NeSSA's dataset-partitioning option.
//!
//! CRAIG (Mirzasoleiman et al., ICML '20) selects medoids **within each
//! class** by facility location over gradient-proxy similarities and weighs
//! each medoid by its cluster size. NeSSA adapts the same core to the
//! SmartSSD and adds partitioning (paper §3.2.3): each class's candidate
//! pool is split into random chunks small enough for the FPGA's 4.32 MB
//! on-chip memory, and medoids are selected per chunk — turning the
//! quadratic similarity computation into a sum of small quadratics.
//!
//! Per-class work is independent, so classes are processed on std scoped
//! threads.

use crate::facility::{maximize_metered, GreedyVariant, SimilarityMatrix};
use crate::fraction_count;
use crate::metrics::SelectMetrics;
use crate::{SelectError, Selection};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// Options for [`select_per_class`].
#[derive(Debug, Clone)]
pub struct CraigOptions {
    /// Greedy maximizer to use inside each class/chunk.
    pub variant: GreedyVariant,
    /// Dataset partitioning (paper §3.2.3): split each class into random
    /// chunks of at most this many candidates and select proportionally
    /// from each. `None` selects over whole classes.
    pub partition_chunk: Option<usize>,
    /// Worker threads for per-class parallelism (1 = sequential).
    pub threads: usize,
    /// Telemetry handles updated while the kernel runs (`None` = no
    /// instrumentation). Handles are shared across worker threads.
    pub metrics: Option<SelectMetrics>,
}

impl Default for CraigOptions {
    fn default() -> Self {
        Self {
            variant: GreedyVariant::Lazy,
            partition_chunk: None,
            threads: 1,
            metrics: None,
        }
    }
}

// Metrics handles are identity-less instrumentation plumbing; equality of
// options is about the algorithm they configure.
impl PartialEq for CraigOptions {
    fn eq(&self, other: &Self) -> bool {
        self.variant == other.variant
            && self.partition_chunk == other.partition_chunk
            && self.threads == other.threads
    }
}

/// Selects `⌈fraction · |class|⌉` medoids from every class of a candidate
/// pool and returns one merged, globally-indexed [`Selection`].
///
/// * `features` — one gradient-proxy row per candidate (`n × d`),
/// * `labels` — class of each candidate (`labels.len() == n`),
/// * `classes` — number of classes,
/// * `fraction` — subset fraction in `(0, 1]`.
///
/// # Errors
///
/// [`SelectError::LengthMismatch`] if the label count differs from the
/// feature rows, [`SelectError::BadFraction`] if `fraction` is outside
/// `(0, 1]`, [`SelectError::LabelOutOfRange`] if any label is
/// `≥ classes`.
pub fn select_per_class(
    features: &Tensor,
    labels: &[usize],
    classes: usize,
    fraction: f32,
    options: &CraigOptions,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    let by_class = group_by_class(features.dim(0), labels, classes, fraction)?;
    let sim_of =
        |members: &[usize]| SimilarityMatrix::from_features(&features.gather_rows(members));
    run_per_class(&sim_of, &by_class, fraction, options, rng)
}

/// Validates the shared per-class preconditions and groups candidate
/// indices by class.
fn group_by_class(
    rows: usize,
    labels: &[usize],
    classes: usize,
    fraction: f32,
) -> Result<Vec<Vec<usize>>, SelectError> {
    if rows != labels.len() {
        return Err(SelectError::LengthMismatch {
            what: "labels",
            expected: rows,
            actual: labels.len(),
        });
    }
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(SelectError::BadFraction(fraction));
    }
    if let Some(&label) = labels.iter().find(|&&y| y >= classes) {
        return Err(SelectError::LabelOutOfRange { label, classes });
    }
    let mut by_class = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y].push(i);
    }
    Ok(by_class)
}

/// Runs the per-class selection bodies, optionally on std scoped threads.
/// RNGs are pre-split per class so the result is deterministic regardless
/// of thread interleaving.
fn run_per_class(
    sim_of: &(dyn Fn(&[usize]) -> SimilarityMatrix + Sync),
    by_class: &[Vec<usize>],
    fraction: f32,
    options: &CraigOptions,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    let classes = by_class.len();
    let mut class_rngs: Vec<Rng64> = (0..classes).map(|_| rng.split()).collect();
    let threads = options.threads.max(1);
    let mut per_class: Vec<Selection> = Vec::with_capacity(classes);
    if threads == 1 {
        for (members, class_rng) in by_class.iter().zip(class_rngs.iter_mut()) {
            per_class.push(select_one_class_with(
                sim_of, members, fraction, options, class_rng,
            )?);
        }
    } else {
        let mut slots: Vec<Option<Result<Selection, SelectError>>> = vec![None; classes];
        let chunk = classes.div_ceil(threads);
        std::thread::scope(|scope| {
            for ((slot_chunk, class_chunk), rng_chunk) in slots
                .chunks_mut(chunk)
                .zip(by_class.chunks(chunk))
                .zip(class_rngs.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for ((slot, members), class_rng) in slot_chunk
                        .iter_mut()
                        .zip(class_chunk.iter())
                        .zip(rng_chunk.iter_mut())
                    {
                        *slot = Some(select_one_class_with(
                            sim_of, members, fraction, options, class_rng,
                        ));
                    }
                });
            }
        });
        for slot in slots {
            let sel = slot.ok_or(SelectError::Internal("class worker never filled its slot"))?;
            per_class.push(sel?);
        }
    }
    let mut merged = Selection::default();
    for sel in per_class {
        merged.extend(sel);
    }
    Ok(merged)
}

/// Per-class CRAIG over **factored** (outer-product) gradient proxies:
/// candidate `i` is `residuals[i] ⊗ features[i]`, compared through the
/// norm/inner-product factorization so the outer products are never
/// materialized (see [`SimilarityMatrix::from_factored`]). This is the
/// memory- and FPGA-faithful path for last-layer gradients.
///
/// # Errors
///
/// Same conditions as [`select_per_class`], plus
/// [`SelectError::LengthMismatch`] on a row-count mismatch between the
/// two factors.
pub fn select_per_class_factored(
    residuals: &Tensor,
    features: &Tensor,
    labels: &[usize],
    classes: usize,
    fraction: f32,
    options: &CraigOptions,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    if residuals.dim(0) != features.dim(0) {
        return Err(SelectError::LengthMismatch {
            what: "factor rows",
            expected: residuals.dim(0),
            actual: features.dim(0),
        });
    }
    let by_class = group_by_class(residuals.dim(0), labels, classes, fraction)?;
    let sim_of = |members: &[usize]| {
        SimilarityMatrix::from_factored(
            &residuals.gather_rows(members),
            &features.gather_rows(members),
        )
    };
    run_per_class(&sim_of, &by_class, fraction, options, rng)
}

/// Shared per-class body, generic over how a member set becomes a
/// similarity matrix.
fn select_one_class_with(
    sim_of: &dyn Fn(&[usize]) -> SimilarityMatrix,
    members: &[usize],
    fraction: f32,
    options: &CraigOptions,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    if members.is_empty() {
        return Ok(Selection::default());
    }
    let metrics = options.metrics.as_ref();
    if let Some(m) = metrics {
        m.classes.inc();
    }
    let k = fraction_count(members.len(), fraction);
    match options.partition_chunk {
        None => {
            if let Some(m) = metrics {
                m.chunks.inc();
            }
            let sim = sim_of(members);
            Ok(maximize_metered(&sim, k, options.variant, rng, metrics)?.into_global(members))
        }
        Some(chunk_size) => {
            let chunk_size = chunk_size.max(2);
            let chunks = members.len().div_ceil(chunk_size).max(1);
            let parts = rng.random_chunks(members.len(), chunks);
            let mut merged = Selection::default();
            for part in parts {
                if part.is_empty() {
                    continue;
                }
                if let Some(m) = metrics {
                    m.chunks.inc();
                }
                let global: Vec<usize> = part.iter().map(|&i| members[i]).collect();
                let k_part = fraction_count(part.len(), fraction);
                let sim = sim_of(&global);
                merged.extend(
                    maximize_metered(&sim, k_part, options.variant, rng, metrics)?
                        .into_global(&global),
                );
            }
            Ok(merged)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes, each with two tight clusters at distinct locations.
    fn toy() -> (Tensor, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centres = [
            (0.0f32, 0.0f32, 0usize),
            (8.0, 0.0, 0),
            (0.0, 8.0, 1),
            (8.0, 8.0, 1),
        ];
        for &(cx, cy, y) in &centres {
            for d in 0..5 {
                rows.push(cx + 0.05 * d as f32);
                rows.push(cy + 0.05 * d as f32);
                labels.push(y);
            }
        }
        (Tensor::from_vec(rows, &[20, 2]), labels)
    }

    #[test]
    fn respects_fraction_per_class() {
        let (x, y) = toy();
        let mut rng = Rng64::new(0);
        let sel = select_per_class(&x, &y, 2, 0.2, &CraigOptions::default(), &mut rng).unwrap();
        assert_eq!(sel.len(), 4); // ceil(10 * 0.2) per class.
                                  // Selected labels split evenly.
        let c0 = sel.indices.iter().filter(|&&i| y[i] == 0).count();
        assert_eq!(c0, 2);
    }

    #[test]
    fn selects_cluster_representatives() {
        let (x, y) = toy();
        let mut rng = Rng64::new(1);
        let sel = select_per_class(&x, &y, 2, 0.2, &CraigOptions::default(), &mut rng).unwrap();
        // With 2 picks per class and 2 clusters per class, facility location
        // should cover both clusters of each class.
        let cluster_of = |i: usize| i / 5;
        for class in 0..2 {
            let mut clusters: Vec<usize> = sel
                .indices
                .iter()
                .filter(|&&i| y[i] == class)
                .map(|&i| cluster_of(i))
                .collect();
            clusters.sort_unstable();
            clusters.dedup();
            assert_eq!(clusters.len(), 2, "class {class} missing a cluster");
        }
    }

    #[test]
    fn weights_cover_whole_class() {
        let (x, y) = toy();
        let mut rng = Rng64::new(2);
        let sel = select_per_class(&x, &y, 2, 0.4, &CraigOptions::default(), &mut rng).unwrap();
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    fn partitioned_selection_still_covers() {
        let (x, y) = toy();
        let mut rng = Rng64::new(3);
        let opts = CraigOptions {
            partition_chunk: Some(5),
            ..CraigOptions::default()
        };
        let sel = select_per_class(&x, &y, 2, 0.4, &opts, &mut rng).unwrap();
        assert!(sel.len() >= 4);
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 20.0);
        // All indices valid and distinct.
        let mut sorted = sel.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sel.len());
    }

    #[test]
    fn parallel_matches_sequential() {
        let (x, y) = toy();
        let seq = select_per_class(
            &x,
            &y,
            2,
            0.3,
            &CraigOptions {
                threads: 1,
                ..CraigOptions::default()
            },
            &mut Rng64::new(7),
        )
        .unwrap();
        let par = select_per_class(
            &x,
            &y,
            2,
            0.3,
            &CraigOptions {
                threads: 4,
                ..CraigOptions::default()
            },
            &mut Rng64::new(7),
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn fraction_one_selects_everything() {
        let (x, y) = toy();
        let mut rng = Rng64::new(4);
        let sel = select_per_class(&x, &y, 2, 1.0, &CraigOptions::default(), &mut rng).unwrap();
        assert_eq!(sel.len(), 20);
    }

    #[test]
    fn rejects_bad_fraction() {
        let (x, y) = toy();
        let mut rng = Rng64::new(5);
        let err = select_per_class(&x, &y, 2, 0.0, &CraigOptions::default(), &mut rng);
        assert_eq!(err, Err(SelectError::BadFraction(0.0)));
    }

    #[test]
    fn rejects_label_out_of_range() {
        let (x, _) = toy();
        let bad = vec![0usize; 19].into_iter().chain([7]).collect::<Vec<_>>();
        let mut rng = Rng64::new(5);
        let err = select_per_class(&x, &bad, 2, 0.5, &CraigOptions::default(), &mut rng);
        assert_eq!(
            err,
            Err(SelectError::LabelOutOfRange {
                label: 7,
                classes: 2
            })
        );
    }

    #[test]
    fn rejects_length_mismatch() {
        let (x, _) = toy();
        let mut rng = Rng64::new(5);
        let err = select_per_class(&x, &[0, 1], 2, 0.5, &CraigOptions::default(), &mut rng);
        assert_eq!(
            err,
            Err(SelectError::LengthMismatch {
                what: "labels",
                expected: 20,
                actual: 2
            })
        );
    }

    #[test]
    fn factored_matches_materialized_outer_products() {
        // residual factor a (n×3) and feature factor b (n×4): selection
        // over the factored space must equal selection over the explicit
        // outer products.
        let mut rng = Rng64::new(11);
        let n = 24;
        let a = Tensor::rand_uniform(&[n, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[n, 4], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        // Materialize the outer products.
        let mut flat = Tensor::zeros(&[n, 12]);
        for i in 0..n {
            for (ci, &av) in a.row(i).iter().enumerate() {
                for (fi, &bv) in b.row(i).iter().enumerate() {
                    flat.set(&[i, ci * 4 + fi], av * bv);
                }
            }
        }
        let opts = CraigOptions::default();
        let sel_flat =
            select_per_class(&flat, &labels, 2, 0.25, &opts, &mut Rng64::new(3)).unwrap();
        let sel_fact =
            select_per_class_factored(&a, &b, &labels, 2, 0.25, &opts, &mut Rng64::new(3)).unwrap();
        assert_eq!(sel_flat.indices, sel_fact.indices);
        assert_eq!(sel_flat.weights, sel_fact.weights);
    }

    #[test]
    fn empty_class_is_skipped() {
        let (x, y) = toy();
        let mut rng = Rng64::new(6);
        // Declare 3 classes; class 2 has no members.
        let sel = select_per_class(&x, &y, 3, 0.2, &CraigOptions::default(), &mut rng).unwrap();
        assert_eq!(sel.len(), 4);
    }
}
