//! The K-Centers baseline (Sener & Savarese '17).
//!
//! Farthest-first traversal: repeatedly add the candidate farthest from the
//! current centre set. This greedily 2-approximates the k-center objective
//! (minimize the maximum candidate-to-centre distance). The paper compares
//! NeSSA against this CPU baseline in Table 3 and Figure 4; its weakness at
//! small subset sizes — it chases outliers instead of covering mass — is
//! exactly what those comparisons show.

use crate::{fraction_count, Selection};
use nessa_tensor::linalg::sq_dist;
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// Selects `k` centres by farthest-first traversal, seeding from a random
/// candidate. Weights are cluster sizes (nearest-centre assignment), like
/// CRAIG's, so the same weighted-training loop applies.
///
/// `k ≥ n` returns all candidates.
pub fn select(features: &Tensor, k: usize, rng: &mut Rng64) -> Selection {
    let n = features.dim(0);
    if n == 0 || k == 0 {
        return Selection::default();
    }
    let k = k.min(n);
    let mut centres = Vec::with_capacity(k);
    let mut in_set = vec![false; n];
    let first = rng.index(n);
    centres.push(first);
    in_set[first] = true;
    // min_d[i] = distance² from i to its nearest centre.
    let mut min_d: Vec<f32> = (0..n)
        .map(|i| sq_dist(features.row(i), features.row(first)))
        .collect();
    while centres.len() < k {
        // Farthest not-yet-selected candidate (duplicates make min_d zero
        // everywhere; still never re-pick a centre).
        let far = min_d
            .iter()
            .enumerate()
            .filter(|&(i, _)| !in_set[i])
            .fold((usize::MAX, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        centres.push(far);
        in_set[far] = true;
        for (i, slot) in min_d.iter_mut().enumerate() {
            let d = sq_dist(features.row(i), features.row(far));
            if d < *slot {
                *slot = d;
            }
        }
    }
    let weights = assignment_weights(features, &centres);
    Selection::new(centres, weights)
}

/// Selects `⌈fraction · |class|⌉` centres within each class, mirroring the
/// per-class protocol used for CRAIG so the baselines are comparable.
///
/// # Panics
///
/// Panics if the label count differs from the rows, `fraction` is outside
/// `(0, 1]`, or any label is `≥ classes`.
pub fn select_per_class(
    features: &Tensor,
    labels: &[usize],
    classes: usize,
    fraction: f32,
    rng: &mut Rng64,
) -> Selection {
    assert_eq!(features.dim(0), labels.len(), "label count mismatch");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    assert!(labels.iter().all(|&y| y < classes), "label out of range");
    let mut by_class = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y].push(i);
    }
    let mut merged = Selection::default();
    for members in &by_class {
        if members.is_empty() {
            continue;
        }
        let k = fraction_count(members.len(), fraction);
        let sub = features.gather_rows(members);
        merged.extend(select(&sub, k, rng).into_global(members));
    }
    merged
}

/// The k-center objective: maximum distance² from any candidate to its
/// nearest centre (`+inf` for an empty centre set over a non-empty pool).
pub fn max_min_dist(features: &Tensor, centres: &[usize]) -> f32 {
    let n = features.dim(0);
    if n == 0 {
        return 0.0;
    }
    if centres.is_empty() {
        return f32::INFINITY;
    }
    (0..n)
        .map(|i| {
            centres
                .iter()
                .map(|&c| sq_dist(features.row(i), features.row(c)))
                .fold(f32::INFINITY, f32::min)
        })
        .fold(f32::NEG_INFINITY, f32::max)
}

fn assignment_weights(features: &Tensor, centres: &[usize]) -> Vec<f32> {
    let n = features.dim(0);
    let mut w = vec![0.0f32; centres.len()];
    // Dense position lookup (first occurrence wins): deterministic and
    // hash-free, unlike a HashMap (nessa-lint rule D3).
    let mut position_of = vec![usize::MAX; n];
    for (ci, &c) in centres.iter().enumerate() {
        if position_of[c] == usize::MAX {
            position_of[c] = ci;
        }
    }
    for i in 0..n {
        // Centres assign to themselves so every weight stays ≥ 1 even
        // under exact-duplicate ties.
        if position_of[i] != usize::MAX {
            w[position_of[i]] += 1.0;
            continue;
        }
        let mut best = 0;
        let mut best_d = f32::INFINITY;
        for (ci, &c) in centres.iter().enumerate() {
            let d = sq_dist(features.row(i), features.row(c));
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        w[best] += 1.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Tensor {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)] {
            for d in 0..5 {
                rows.push(cx + 0.1 * d as f32);
                rows.push(cy);
            }
        }
        Tensor::from_vec(rows, &[20, 2])
    }

    #[test]
    fn covers_all_clusters() {
        let x = clusters();
        let mut rng = Rng64::new(0);
        let sel = select(&x, 4, &mut rng);
        let mut covered: Vec<usize> = sel.indices.iter().map(|&i| i / 5).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), 4);
    }

    #[test]
    fn objective_decreases_with_k() {
        let x = clusters();
        let mut rng = Rng64::new(1);
        let mut prev = f32::INFINITY;
        for k in 1..6 {
            let sel = select(&x, k, &mut rng);
            let obj = max_min_dist(&x, &sel.indices);
            assert!(obj <= prev + 1e-4, "k={k}: {obj} > {prev}");
            prev = obj;
        }
    }

    #[test]
    fn two_approximation_on_small_instance() {
        // Brute-force the optimal 2-centre objective and check the greedy
        // result is within the squared-distance analogue of 2-approx (4×).
        let mut rng = Rng64::new(2);
        let x = Tensor::rand_uniform(&[12, 2], -1.0, 1.0, &mut rng);
        let mut opt = f32::INFINITY;
        for a in 0..12 {
            for b in (a + 1)..12 {
                opt = opt.min(max_min_dist(&x, &[a, b]));
            }
        }
        for seed in 0..5 {
            let sel = select(&x, 2, &mut Rng64::new(seed));
            let got = max_min_dist(&x, &sel.indices);
            assert!(got <= 4.0 * opt + 1e-4, "seed {seed}: {got} vs opt {opt}");
        }
    }

    #[test]
    fn chases_outliers() {
        // One extreme outlier: k-centers must pick it early — the failure
        // mode that hurts its training accuracy at small subsets.
        let mut rows = vec![0.0f32; 2 * 10];
        for (i, r) in rows.chunks_mut(2).enumerate() {
            r[0] = i as f32 * 0.01;
        }
        rows.extend_from_slice(&[1000.0, 1000.0]);
        let x = Tensor::from_vec(rows, &[11, 2]);
        let sel = select(&x, 2, &mut Rng64::new(3));
        assert!(
            sel.indices.contains(&10),
            "outlier not selected: {:?}",
            sel.indices
        );
    }

    #[test]
    fn per_class_respects_fraction() {
        let x = clusters();
        let labels: Vec<usize> = (0..20).map(|i| i / 10).collect();
        let sel = select_per_class(&x, &labels, 2, 0.2, &mut Rng64::new(4));
        assert_eq!(sel.len(), 4);
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    fn k_zero_and_empty() {
        let x = clusters();
        assert!(select(&x, 0, &mut Rng64::new(5)).is_empty());
        let empty = Tensor::zeros(&[0, 2]);
        assert!(select(&empty, 3, &mut Rng64::new(6)).is_empty());
        assert_eq!(max_min_dist(&empty, &[]), 0.0);
    }
}
