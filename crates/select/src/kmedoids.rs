//! Alternating k-medoids refinement.
//!
//! The set minimizing the RHS of paper Eq. 3 is a k-medoid set (Kaufman &
//! Rousseeuw '87). Facility-location greedy gives an approximation with a
//! guarantee; this module provides a Lloyd-style alternating refiner that
//! can only improve a starting solution, used to cross-check (and in the
//! ablation benches, to quantify) how close the greedy solutions are.

use crate::Selection;
use nessa_tensor::linalg::{cross_sq_dists, pairwise_sq_dists};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// The k-medoid cost: sum over candidates of the distance² to the nearest
/// medoid (`0.0` for an empty pool, `+inf` for an empty medoid set).
pub fn cost(features: &Tensor, medoids: &[usize]) -> f32 {
    let n = features.dim(0);
    if n == 0 {
        return 0.0;
    }
    if medoids.is_empty() {
        return f32::INFINITY;
    }
    let centres = features.gather_rows(medoids);
    let d = cross_sq_dists(features, &centres);
    (0..n)
        .map(|i| d.row(i).iter().copied().fold(f32::INFINITY, f32::min))
        .sum()
}

/// Refines `start` by alternating assignment and medoid-update steps for at
/// most `max_iters` rounds, returning the refined selection (weights are
/// cluster sizes). The cost never increases.
///
/// # Panics
///
/// Panics if `start` contains an out-of-range index.
pub fn refine(features: &Tensor, start: &[usize], max_iters: usize) -> Selection {
    let n = features.dim(0);
    if n == 0 || start.is_empty() {
        return Selection::default();
    }
    assert!(start.iter().all(|&i| i < n), "medoid index out of range");
    let dists = pairwise_sq_dists(features);
    let mut medoids = start.to_vec();
    for _ in 0..max_iters {
        // Assignment step.
        let assign = assignments(&dists, &medoids, n);
        // Update step: within each cluster, pick the member minimizing the
        // total intra-cluster distance.
        let mut changed = false;
        for (ci, medoid) in medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assign[i] == ci).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = *medoid;
            let mut best_cost = f32::INFINITY;
            for &cand in &members {
                let c: f32 = members.iter().map(|&m| dists.at(&[cand, m])).sum();
                if c < best_cost {
                    best_cost = c;
                    best = cand;
                }
            }
            if best != *medoid {
                *medoid = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let assign = assignments(&dists, &medoids, n);
    let mut weights = vec![0.0f32; medoids.len()];
    for &a in &assign {
        weights[a] += 1.0;
    }
    Selection::new(medoids, weights)
}

/// Random-init k-medoids: sample `k` distinct starts and refine.
pub fn kmedoids(features: &Tensor, k: usize, max_iters: usize, rng: &mut Rng64) -> Selection {
    let n = features.dim(0);
    if n == 0 || k == 0 {
        return Selection::default();
    }
    let start = rng.sample_indices(n, k.min(n));
    refine(features, &start, max_iters)
}

fn assignments(dists: &Tensor, medoids: &[usize], n: usize) -> Vec<usize> {
    (0..n)
        .map(|i| {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (ci, &m) in medoids.iter().enumerate() {
                let d = dists.at(&[i, m]);
                if d < best_d {
                    best_d = d;
                    best = ci;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Tensor {
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 10.0)] {
            for d in 0..6 {
                rows.push(cx + 0.2 * (d % 3) as f32);
                rows.push(cy + 0.2 * (d / 3) as f32);
            }
        }
        Tensor::from_vec(rows, &[12, 2])
    }

    #[test]
    fn refine_never_increases_cost() {
        let x = blobs();
        // Deliberately bad start: both medoids in the same blob.
        let start = vec![0, 1];
        let before = cost(&x, &start);
        let refined = refine(&x, &start, 20);
        let after = cost(&x, &refined.indices);
        assert!(after <= before + 1e-4, "{after} > {before}");
    }

    #[test]
    fn finds_one_medoid_per_blob() {
        let x = blobs();
        let refined = refine(&x, &[0, 1], 20);
        let blobs_hit: Vec<usize> = refined.indices.iter().map(|&i| i / 6).collect();
        assert_ne!(blobs_hit[0], blobs_hit[1], "{:?}", refined.indices);
    }

    #[test]
    fn weights_sum_to_n() {
        let x = blobs();
        let mut rng = Rng64::new(0);
        let sel = kmedoids(&x, 2, 10, &mut rng);
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 12.0);
    }

    #[test]
    fn greedy_facility_location_is_near_kmedoid_optimal() {
        // Selecting by facility-location greedy then refining with
        // k-medoids should barely improve the cost on clustered data.
        use crate::facility::{maximize, GreedyVariant, SimilarityMatrix};
        let x = blobs();
        let sim = SimilarityMatrix::from_features(&x);
        let mut rng = Rng64::new(1);
        let greedy = maximize(&sim, 2, GreedyVariant::Lazy, &mut rng).unwrap();
        let c_greedy = cost(&x, &greedy.indices);
        let refined = refine(&x, &greedy.indices, 20);
        let c_refined = cost(&x, &refined.indices);
        assert!(c_refined <= c_greedy + 1e-4);
        // Facility-location greedy maximizes coverage, not the k-medoid
        // cost itself, so allow a modest slack factor.
        assert!(
            c_greedy <= 1.6 * c_refined + 1e-3,
            "{c_greedy} vs {c_refined}"
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = Tensor::zeros(&[0, 2]);
        assert!(refine(&empty, &[], 5).is_empty());
        let mut rng = Rng64::new(2);
        assert!(kmedoids(&empty, 3, 5, &mut rng).is_empty());
        let x = blobs();
        assert_eq!(cost(&x, &[]), f32::INFINITY);
        assert_eq!(cost(&empty, &[]), 0.0);
    }
}
