//! Selection-kernel instrumentation handles.
//!
//! [`SelectMetrics`] bundles the telemetry handles the greedy maximizers
//! and the per-class CRAIG driver update while they run: round/evaluation
//! counters, a marginal-gain histogram, and class/chunk progress counters.
//! Handles are `Arc`-backed clones into a [`nessa_telemetry::Telemetry`]
//! registry, so they are cheap to clone into worker threads and safe to
//! update concurrently.

use nessa_telemetry::{Counter, Histogram, Telemetry};

/// Metric names used by [`SelectMetrics::from_telemetry`].
pub mod names {
    /// Greedy rounds (one per selected medoid).
    pub const ROUNDS: &str = "select.greedy_rounds";
    /// Marginal-gain evaluations (the dominant kernel cost).
    pub const GAIN_EVALS: &str = "select.gain_evals";
    /// Histogram of the winning marginal gain at each pick.
    pub const MARGINAL_GAIN: &str = "select.marginal_gain";
    /// Non-empty classes processed.
    pub const CLASSES: &str = "select.classes";
    /// Partition chunks processed (equals classes when partitioning is
    /// off).
    pub const CHUNKS: &str = "select.chunks";
}

/// Telemetry handles updated by the selection kernel.
#[derive(Debug, Clone, Default)]
pub struct SelectMetrics {
    /// Greedy rounds executed (one per pick).
    pub rounds: Counter,
    /// Marginal-gain evaluations performed.
    pub gain_evals: Counter,
    /// Winning marginal gain observed at each pick.
    pub marginal_gain: Histogram,
    /// Non-empty classes processed.
    pub classes: Counter,
    /// Partition chunks processed.
    pub chunks: Counter,
}

impl SelectMetrics {
    /// Handles registered under the `select.*` names in `telemetry`'s
    /// metrics registry (detached no-op handles when telemetry is
    /// disabled).
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        Self {
            rounds: telemetry.counter(names::ROUNDS),
            gain_evals: telemetry.counter(names::GAIN_EVALS),
            marginal_gain: telemetry.histogram(names::MARGINAL_GAIN),
            classes: telemetry.counter(names::CLASSES),
            chunks: telemetry.counter(names::CHUNKS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::TelemetrySettings;

    #[test]
    fn detached_handles_work() {
        let m = SelectMetrics::default();
        m.rounds.inc();
        m.marginal_gain.observe(0.5);
        assert_eq!(m.rounds.get(), 1);
    }

    #[test]
    fn registered_handles_feed_the_registry() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        let m = SelectMetrics::from_telemetry(&t);
        m.gain_evals.add(7);
        let snap = t.metrics_snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == names::GAIN_EVALS && *v == 7));
    }
}
