//! Two-round distributed submodular maximization (GreeDi).
//!
//! The paper notes (§3.1) that its selection model "can be further
//! improved using lazy evaluation \[41\] and distributed implementations
//! \[42\]". \[42\] is GreeDi (Mirzasoleiman et al., NeurIPS '13): partition
//! the ground set across `m` machines, greedily pick `k` on each, then run
//! a second greedy round over the union of the per-machine picks. GreeDi's
//! solution is within a provable factor of the centralized greedy one.
//!
//! On NeSSA's hardware this is the natural multi-SmartSSD scaling story
//! (the paper's stated future work): each drive selects locally from its
//! shard; a host-side reducer merges.

use crate::facility::{maximize, GreedyVariant, SimilarityMatrix};
use crate::{SelectError, Selection};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// Runs two-round GreeDi over `features`, selecting `k` with `machines`
/// partitions. Falls back to plain greedy when `machines <= 1` or the
/// pool is small. Weights are computed over the full candidate set, so
/// they remain CRAIG-compatible.
///
/// # Panics
///
/// Panics if `features` is not 2-D.
pub fn greedi(
    features: &Tensor,
    k: usize,
    machines: usize,
    variant: GreedyVariant,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    let n = features.dim(0);
    if n == 0 || k == 0 {
        return Ok(Selection::default());
    }
    if machines <= 1 || n <= 2 * k {
        let sim = SimilarityMatrix::from_features(features);
        return maximize(&sim, k, variant, rng);
    }
    // Round 1: each machine greedily picks k from its shard.
    let shards = rng.random_chunks(n, machines);
    let mut union: Vec<usize> = Vec::new();
    for shard in &shards {
        if shard.is_empty() {
            continue;
        }
        let sub = features.gather_rows(shard);
        let sim = SimilarityMatrix::from_features(&sub);
        let local = maximize(&sim, k.min(shard.len()), variant, rng)?;
        union.extend(local.indices.iter().map(|&i| shard[i]));
    }
    // Round 2: greedy over the union.
    let sub = features.gather_rows(&union);
    let sim = SimilarityMatrix::from_features(&sub);
    let merged = maximize(&sim, k.min(union.len()), variant, rng)?;
    let global: Vec<usize> = merged.indices.iter().map(|&i| union[i]).collect();
    // Re-derive weights over the FULL ground set so training weights keep
    // representing every candidate.
    let full_sim = SimilarityMatrix::from_features(features);
    let weights = full_sim.weights(&global);
    Ok(Selection::new(global, weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, clusters: usize, seed: u64) -> Tensor {
        let mut rng = Rng64::new(seed);
        let centres = Tensor::randn(&[clusters, 6], 0.0, 6.0, &mut rng);
        let mut rows = Vec::with_capacity(n * 6);
        for i in 0..n {
            for &c in centres.row(i % clusters) {
                rows.push(c + rng.normal(0.0, 0.4));
            }
        }
        Tensor::from_vec(rows, &[n, 6])
    }

    #[test]
    fn greedi_close_to_centralized_greedy() {
        let feats = clustered(120, 6, 1);
        let sim = SimilarityMatrix::from_features(&feats);
        let mut rng = Rng64::new(2);
        let central = maximize(&sim, 6, GreedyVariant::Lazy, &mut rng).unwrap();
        let distributed = greedi(&feats, 6, 4, GreedyVariant::Lazy, &mut rng).unwrap();
        let fc = sim.objective(&central.indices);
        let fd = sim.objective(&distributed.indices);
        assert!(fd >= 0.9 * fc, "greedi {fd} vs central {fc}");
    }

    #[test]
    fn greedi_covers_every_cluster() {
        let feats = clustered(120, 6, 3);
        let mut rng = Rng64::new(4);
        let sel = greedi(&feats, 6, 3, GreedyVariant::Lazy, &mut rng).unwrap();
        let mut hit: Vec<usize> = sel.indices.iter().map(|&i| i % 6).collect();
        hit.sort_unstable();
        hit.dedup();
        assert_eq!(hit.len(), 6, "clusters covered: {hit:?}");
    }

    #[test]
    fn weights_cover_full_ground_set() {
        let feats = clustered(90, 3, 5);
        let mut rng = Rng64::new(6);
        let sel = greedi(&feats, 3, 3, GreedyVariant::Lazy, &mut rng).unwrap();
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 90.0);
    }

    #[test]
    fn single_machine_falls_back_to_greedy() {
        let feats = clustered(40, 4, 7);
        let sim = SimilarityMatrix::from_features(&feats);
        let a = greedi(&feats, 4, 1, GreedyVariant::Lazy, &mut Rng64::new(8)).unwrap();
        let b = maximize(&sim, 4, GreedyVariant::Lazy, &mut Rng64::new(8)).unwrap();
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Tensor::zeros(&[0, 3]);
        let mut rng = Rng64::new(9);
        assert!(greedi(&empty, 3, 2, GreedyVariant::Naive, &mut rng)
            .unwrap()
            .is_empty());
        let feats = clustered(10, 2, 10);
        assert!(greedi(&feats, 0, 2, GreedyVariant::Naive, &mut rng)
            .unwrap()
            .is_empty());
    }
}
