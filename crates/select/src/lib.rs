//! Coreset selection algorithms for the NeSSA reproduction.
//!
//! NeSSA's selection model (paper §3.1) minimizes the gradient-estimation
//! error bound of Eq. 3 by maximizing a submodular facility-location
//! objective (Eq. 5) over pairwise similarities of per-sample gradient
//! proxies — the CRAIG formulation of Mirzasoleiman et al. This crate
//! implements:
//!
//! * [`facility`] — the facility-location objective with naive, lazy
//!   (Minoux) and stochastic ("lazier than lazy") greedy maximizers,
//! * [`craig`] — per-class CRAIG selection with medoid weights and NeSSA's
//!   dataset-partitioning option (§3.2.3),
//! * [`kcenters`] — the K-Centers baseline of Sener & Savarese
//!   (farthest-first traversal, a 2-approximation),
//! * [`kmedoids`] — an alternating k-medoids refiner used for
//!   cross-checking the facility-location solutions,
//! * [`random`] — the uniform random baseline.
//!
//! All algorithms consume a row-per-sample feature matrix (in NeSSA those
//! rows are last-layer gradient proxies) and return a [`Selection`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod craig;
pub mod facility;
pub mod greedi;
pub mod kcenters;
pub mod kmedoids;
pub mod metrics;
pub mod random;

pub use metrics::SelectMetrics;

/// Why a selection request could not be satisfied.
///
/// The selection kernel runs on the hot path of every epoch, so it never
/// panics: invalid inputs and broken invariants surface as typed errors
/// the pipeline can attribute and report (`nessa-lint` rule **P1**
/// enforces the no-panic discipline mechanically).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// Two parallel per-candidate arrays disagree on length.
    LengthMismatch {
        /// What disagreed (e.g. `"labels"`, `"factor rows"`).
        what: &'static str,
        /// Length implied by the feature matrix.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// Subset fraction outside `(0, 1]`.
    BadFraction(f32),
    /// A label at or above the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of classes.
        classes: usize,
    },
    /// An internal invariant of a greedy maximizer was violated; indicates
    /// a bug in this crate rather than bad input.
    Internal(&'static str),
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what} length mismatch: expected {expected}, got {actual}"
            ),
            SelectError::BadFraction(fr) => {
                write!(f, "subset fraction must be in (0, 1], got {fr}")
            }
            SelectError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            SelectError::Internal(msg) => write!(f, "internal selection invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for SelectError {}

/// The number of samples a subset fraction selects from a pool of `n`:
/// `⌈fraction · n⌉` computed in f64 with a tolerance so that exact
/// products (e.g. `0.3 × 100`) do not round up through float error,
/// clamped to `[1, n]` for non-empty pools.
///
/// ```
/// assert_eq!(nessa_select::fraction_count(100, 0.3), 30);
/// assert_eq!(nessa_select::fraction_count(10, 0.25), 3);
/// assert_eq!(nessa_select::fraction_count(5, 1.0), 5);
/// assert_eq!(nessa_select::fraction_count(0, 0.5), 0);
/// ```
pub fn fraction_count(n: usize, fraction: f32) -> usize {
    if n == 0 {
        return 0;
    }
    let exact = n as f64 * fraction as f64;
    // Relative tolerance absorbs the f32→f64 widening error of fractions
    // like 0.3 (whose f32 value is slightly above 0.3) at any pool size.
    ((exact * (1.0 - 1e-6)).ceil() as usize).clamp(1, n)
}

/// A selected subset: sample indices plus per-sample weights.
///
/// Weights follow CRAIG: each selected medoid is weighted by the number of
/// candidates it represents (the size of its similarity cluster), so
/// training on the weighted subset approximates the full-gradient sum.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selection {
    /// Indices into the candidate set, in selection order.
    pub indices: Vec<usize>,
    /// One weight per selected index (≥ 1 for non-empty candidate sets).
    pub weights: Vec<f32>,
}

impl Selection {
    /// Creates a selection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn new(indices: Vec<usize>, weights: Vec<f32>) -> Self {
        assert_eq!(indices.len(), weights.len(), "index/weight length mismatch");
        Self { indices, weights }
    }

    /// Number of selected samples.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Merges another selection (indices assumed disjoint, as produced by
    /// per-class or per-chunk selection over disjoint candidate pools).
    pub fn extend(&mut self, other: Selection) {
        self.indices.extend(other.indices);
        self.weights.extend(other.weights);
    }

    /// Re-maps local candidate indices to global dataset indices.
    ///
    /// # Panics
    ///
    /// Panics if any local index is out of bounds for `global`.
    pub fn into_global(self, global: &[usize]) -> Selection {
        let indices = self.indices.iter().map(|&i| global[i]).collect();
        Selection {
            indices,
            weights: self.weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_basics() {
        let s = Selection::new(vec![3, 1], vec![2.0, 5.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Selection::default().is_empty());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Selection::new(vec![0], vec![1.0]);
        a.extend(Selection::new(vec![5], vec![3.0]));
        assert_eq!(a.indices, vec![0, 5]);
        assert_eq!(a.weights, vec![1.0, 3.0]);
    }

    #[test]
    fn into_global_remaps() {
        let s = Selection::new(vec![0, 2], vec![1.0, 1.0]);
        let g = s.into_global(&[10, 11, 12]);
        assert_eq!(g.indices, vec![10, 12]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = Selection::new(vec![1], vec![]);
    }
}
