//! The facility-location objective and its greedy maximizers.
//!
//! Given candidates with pairwise similarities `sim(i, j)`, the objective
//! of paper Eq. 5 is `F(S) = Σ_i max_{j∈S} sim(i, j)`. `F` is monotone
//! submodular, so greedy maximization achieves a `(1 − 1/e)` guarantee
//! (Nemhauser et al.); the lazy variant (Minoux '78) and the stochastic
//! variant (Mirzasoleiman et al. '15, "lazier than lazy greedy") produce
//! the same quality at a fraction of the evaluations — the property that
//! makes the kernel cheap enough for the SmartSSD FPGA.

use crate::metrics::SelectMetrics;
use crate::{SelectError, Selection};
use nessa_tensor::linalg::pairwise_sq_dists;
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A dense pairwise-similarity matrix for facility-location selection.
///
/// Built from squared Euclidean distances via `sim = c0 − d²` where
/// `c0 = max d²` (the constant of paper Eq. 5), so all similarities are
/// non-negative and self-similarity is maximal.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    /// Row-major `n × n` similarities.
    sim: Vec<f32>,
}

impl SimilarityMatrix {
    /// Builds the similarity matrix of a set of feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not 2-D.
    pub fn from_features(features: &Tensor) -> Self {
        let d = pairwise_sq_dists(features);
        let n = d.dim(0);
        let c0 = d.max().max(0.0);
        let sim = d.as_slice().iter().map(|&v| c0 - v).collect();
        Self { n, sim }
    }

    /// Builds the similarity matrix of a *product space*: candidate `i` is
    /// the outer product `a_i ⊗ b_i` of a row of `a` and a row of `b`, but
    /// distances are computed through the factorization
    /// `‖a_i⊗b_i − a_j⊗b_j‖² = ‖a_i‖²‖b_i‖² + ‖a_j‖²‖b_j‖² −
    /// 2 (a_i·a_j)(b_i·b_j)` — `O(dim_a + dim_b)` per pair instead of
    /// `O(dim_a · dim_b)`. This is how NeSSA's FPGA kernel compares
    /// last-layer gradients (residual ⊗ feature) without materializing
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if the factors are not 2-D or have different row counts.
    pub fn from_factored(a: &Tensor, b: &Tensor) -> Self {
        assert_eq!(a.ndim(), 2, "factor a must be 2-D");
        assert_eq!(b.ndim(), 2, "factor b must be 2-D");
        assert_eq!(a.dim(0), b.dim(0), "factors must have equal row counts");
        let n = a.dim(0);
        let ga = a.matmul_transb(a);
        let gb = b.matmul_transb(b);
        let sq: Vec<f32> = (0..n).map(|i| ga.at(&[i, i]) * gb.at(&[i, i])).collect();
        let mut dists = vec![0.0f32; n * n];
        let mut c0 = 0.0f32;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = (sq[i] + sq[j] - 2.0 * ga.at(&[i, j]) * gb.at(&[i, j])).max(0.0);
                dists[i * n + j] = d;
                c0 = c0.max(d);
            }
        }
        let sim = dists.iter().map(|&d| c0 - d).collect();
        Self { n, sim }
    }

    /// Builds directly from a precomputed squared-distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if `dists` is not square.
    pub fn from_sq_dists(dists: &Tensor) -> Self {
        assert_eq!(dists.ndim(), 2, "distance matrix must be 2-D");
        assert_eq!(dists.dim(0), dists.dim(1), "distance matrix must be square");
        let n = dists.dim(0);
        let c0 = dists.max().max(0.0);
        let sim = dists.as_slice().iter().map(|&v| c0 - v).collect();
        Self { n, sim }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity between candidates `i` and `j`.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.sim[i * self.n + j]
    }

    /// Row `j` of the matrix: similarity of every candidate to `j`.
    pub fn row(&self, j: usize) -> &[f32] {
        &self.sim[j * self.n..(j + 1) * self.n]
    }

    /// Evaluates `F(S) = Σ_i max_{j∈S} sim(i, j)` (`0.0` for the empty set).
    pub fn objective(&self, set: &[usize]) -> f32 {
        if set.is_empty() {
            return 0.0;
        }
        (0..self.n)
            .map(|i| {
                set.iter()
                    .map(|&j| self.at(i, j))
                    .fold(f32::NEG_INFINITY, f32::max)
            })
            .sum()
    }

    /// CRAIG weights for a solution: candidate `i` is assigned to its most
    /// similar selected medoid; each medoid's weight is its assignment
    /// count. A selected candidate always assigns to itself (self-
    /// similarity is maximal; ties between duplicate rows resolve to
    /// self), so every weight is ≥ 1 and weights sum to `n` for a
    /// non-empty solution.
    pub fn weights(&self, set: &[usize]) -> Vec<f32> {
        let mut w = vec![0.0f32; set.len()];
        if set.is_empty() {
            return w;
        }
        // Dense position lookup (first occurrence wins): deterministic and
        // hash-free, unlike a HashMap (nessa-lint rule D3).
        let mut position_of = vec![usize::MAX; self.n];
        for (si, &j) in set.iter().enumerate() {
            if position_of[j] == usize::MAX {
                position_of[j] = si;
            }
        }
        for i in 0..self.n {
            if position_of[i] != usize::MAX {
                w[position_of[i]] += 1.0;
                continue;
            }
            let mut best = 0;
            let mut best_s = f32::NEG_INFINITY;
            for (si, &j) in set.iter().enumerate() {
                let s = self.at(i, j);
                if s > best_s {
                    best_s = s;
                    best = si;
                }
            }
            w[best] += 1.0;
        }
        w
    }
}

/// Which greedy maximizer to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GreedyVariant {
    /// Recompute every marginal gain each round: `O(n²k)` similarity reads.
    Naive,
    /// Minoux's lazy greedy with an upper-bound priority queue.
    Lazy,
    /// Stochastic greedy: each round evaluates a random sample of
    /// `⌈(n/k)·ln(1/ε)⌉` candidates (Mirzasoleiman et al. '15).
    Stochastic {
        /// Approximation slack ε ∈ (0, 1); expected guarantee `1 − 1/e − ε`.
        epsilon: f32,
    },
}

/// Maximizes the facility-location objective, selecting at most `k`
/// candidates, and returns the selection with CRAIG weights.
///
/// `k ≥ n` returns all candidates. The RNG is only consulted by
/// [`GreedyVariant::Stochastic`]. The only error is
/// [`SelectError::Internal`], reporting a broken greedy invariant (a bug
/// in this crate, not bad input).
pub fn maximize(
    sim: &SimilarityMatrix,
    k: usize,
    variant: GreedyVariant,
    rng: &mut Rng64,
) -> Result<Selection, SelectError> {
    maximize_metered(sim, k, variant, rng, None)
}

/// [`maximize`] with optional kernel instrumentation: each pick counts a
/// greedy round and observes its winning marginal gain; every candidate
/// evaluation counts toward `gain_evals` (the dominant kernel cost the
/// lazy/stochastic variants exist to reduce).
pub fn maximize_metered(
    sim: &SimilarityMatrix,
    k: usize,
    variant: GreedyVariant,
    rng: &mut Rng64,
    metrics: Option<&SelectMetrics>,
) -> Result<Selection, SelectError> {
    let n = sim.len();
    if n == 0 || k == 0 {
        return Ok(Selection::default());
    }
    if k >= n {
        let indices: Vec<usize> = (0..n).collect();
        let weights = sim.weights(&indices);
        return Ok(Selection::new(indices, weights));
    }
    let set = match variant {
        GreedyVariant::Naive => naive_greedy(sim, k, metrics)?,
        GreedyVariant::Lazy => lazy_greedy(sim, k, metrics)?,
        GreedyVariant::Stochastic { epsilon } => stochastic_greedy(sim, k, epsilon, rng, metrics),
    };
    let weights = sim.weights(&set);
    Ok(Selection::new(set, weights))
}

fn note_pick(metrics: Option<&SelectMetrics>, gain: f32) {
    if let Some(m) = metrics {
        m.rounds.inc();
        m.marginal_gain.observe(gain as f64);
    }
}

fn note_evals(metrics: Option<&SelectMetrics>, n: u64) {
    if let Some(m) = metrics {
        m.gain_evals.add(n);
    }
}

fn naive_greedy(
    sim: &SimilarityMatrix,
    k: usize,
    metrics: Option<&SelectMetrics>,
) -> Result<Vec<usize>, SelectError> {
    let n = sim.len();
    let mut coverage = vec![f32::NEG_INFINITY; n];
    let mut chosen = Vec::with_capacity(k);
    let mut in_set = vec![false; n];
    for round in 0..k {
        let mut best = None;
        let mut best_gain = f32::NEG_INFINITY;
        for (j, &taken) in in_set.iter().enumerate() {
            if taken {
                continue;
            }
            let g = gain_from(sim, j, &coverage);
            if g > best_gain {
                best_gain = g;
                best = Some(j);
            }
        }
        note_evals(metrics, (n - round) as u64);
        note_pick(metrics, best_gain);
        let Some(j) = best else {
            // k < n makes this unreachable; surface it instead of panicking.
            return Err(SelectError::Internal("naive greedy ran out of candidates"));
        };
        in_set[j] = true;
        chosen.push(j);
        absorb_from(sim, j, &mut coverage);
    }
    Ok(chosen)
}

/// Gain with `NEG_INFINITY` coverage meaning "uncovered": the first chosen
/// medoid earns the full similarity column.
fn gain_from(sim: &SimilarityMatrix, j: usize, coverage: &[f32]) -> f32 {
    sim.row(j)
        .iter()
        .zip(coverage.iter())
        .map(|(&s, &c)| {
            // nessa-lint: allow(f1-float-eq) — exact sentinel comparison:
            // coverage is initialized to NEG_INFINITY and only ever
            // overwritten by finite similarities.
            if c == f32::NEG_INFINITY {
                s
            } else {
                (s - c).max(0.0)
            }
        })
        .sum()
}

fn absorb_from(sim: &SimilarityMatrix, j: usize, coverage: &mut [f32]) {
    for (c, &s) in coverage.iter_mut().zip(sim.row(j)) {
        if s > *c {
            *c = s;
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f32,
    index: usize,
    /// The solution size when this gain was computed; stale entries are
    /// recomputed on pop (submodularity makes stored gains upper bounds).
    round: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn lazy_greedy(
    sim: &SimilarityMatrix,
    k: usize,
    metrics: Option<&SelectMetrics>,
) -> Result<Vec<usize>, SelectError> {
    let n = sim.len();
    let mut coverage = vec![f32::NEG_INFINITY; n];
    let mut chosen = Vec::with_capacity(k);
    let mut heap: BinaryHeap<HeapEntry> = (0..n)
        .map(|j| HeapEntry {
            gain: gain_from(sim, j, &coverage),
            index: j,
            round: 0,
        })
        .collect();
    note_evals(metrics, n as u64);
    let mut in_set = vec![false; n];
    while chosen.len() < k {
        let Some(top) = heap.pop() else {
            // The heap holds every unchosen candidate; draining before k
            // picks (k < n) would be a bookkeeping bug.
            return Err(SelectError::Internal("lazy greedy heap drained early"));
        };
        if in_set[top.index] {
            continue;
        }
        if top.round == chosen.len() {
            note_pick(metrics, top.gain);
            in_set[top.index] = true;
            chosen.push(top.index);
            absorb_from(sim, top.index, &mut coverage);
        } else {
            note_evals(metrics, 1);
            heap.push(HeapEntry {
                gain: gain_from(sim, top.index, &coverage),
                index: top.index,
                round: chosen.len(),
            });
        }
    }
    Ok(chosen)
}

fn stochastic_greedy(
    sim: &SimilarityMatrix,
    k: usize,
    epsilon: f32,
    rng: &mut Rng64,
    metrics: Option<&SelectMetrics>,
) -> Vec<usize> {
    let n = sim.len();
    let eps = epsilon.clamp(1e-4, 0.99);
    let sample = (((n as f64 / k as f64) * (1.0 / eps as f64).ln()).ceil() as usize).max(1);
    let mut coverage = vec![f32::NEG_INFINITY; n];
    let mut chosen = Vec::with_capacity(k);
    let mut in_set = vec![false; n];
    let mut remaining: Vec<usize> = (0..n).collect();
    for _ in 0..k {
        // Draw the candidate sample from the remaining pool.
        let s = sample.min(remaining.len());
        for i in 0..s {
            let j = i + rng.index(remaining.len() - i);
            remaining.swap(i, j);
        }
        let mut best = remaining[0];
        let mut best_gain = f32::NEG_INFINITY;
        for &j in remaining.iter().take(s) {
            let g = gain_from(sim, j, &coverage);
            if g > best_gain {
                best_gain = g;
                best = j;
            }
        }
        note_evals(metrics, s as u64);
        note_pick(metrics, best_gain);
        in_set[best] = true;
        chosen.push(best);
        absorb_from(sim, best, &mut coverage);
        remaining.retain(|&j| !in_set[j]);
        if remaining.is_empty() {
            break;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_features() -> Tensor {
        // Three tight clusters of 4 points each around (0,0), (10,0), (0,10).
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)] {
            for d in 0..4 {
                rows.push(cx + 0.1 * d as f32);
                rows.push(cy - 0.1 * d as f32);
            }
        }
        Tensor::from_vec(rows, &[12, 2])
    }

    #[test]
    fn objective_is_monotone() {
        let sim = SimilarityMatrix::from_features(&clustered_features());
        let mut set = Vec::new();
        let mut prev = sim.objective(&set);
        for j in [0, 4, 8, 1] {
            set.push(j);
            let cur = sim.objective(&set);
            assert!(cur >= prev - 1e-3, "{cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn greedy_picks_one_per_cluster() {
        let sim = SimilarityMatrix::from_features(&clustered_features());
        let mut rng = Rng64::new(0);
        let sel = maximize(&sim, 3, GreedyVariant::Naive, &mut rng).unwrap();
        let clusters: Vec<usize> = sel.indices.iter().map(|&i| i / 4).collect();
        let mut sorted = clusters.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "selected {:?}", sel.indices);
    }

    #[test]
    fn lazy_matches_naive() {
        let mut rng = Rng64::new(1);
        let x = Tensor::rand_uniform(&[40, 6], -1.0, 1.0, &mut rng);
        let sim = SimilarityMatrix::from_features(&x);
        for k in [1, 3, 10, 25] {
            let naive = naive_greedy(&sim, k, None).unwrap();
            let lazy = lazy_greedy(&sim, k, None).unwrap();
            // Tie-breaking may differ; the objectives must match exactly
            // up to float noise.
            let fo_n = sim.objective(&naive);
            let fo_l = sim.objective(&lazy);
            assert!(
                (fo_n - fo_l).abs() <= 1e-2 * fo_n.abs().max(1.0),
                "k={k}: naive {fo_n} vs lazy {fo_l}"
            );
        }
    }

    #[test]
    fn greedy_achieves_submodular_bound_vs_bruteforce() {
        // On a small instance, greedy must reach ≥ (1 − 1/e) of optimum.
        let mut rng = Rng64::new(2);
        let x = Tensor::rand_uniform(&[10, 3], -1.0, 1.0, &mut rng);
        let sim = SimilarityMatrix::from_features(&x);
        let k = 3;
        let mut best = f32::NEG_INFINITY;
        for a in 0..10 {
            for b in (a + 1)..10 {
                for c in (b + 1)..10 {
                    best = best.max(sim.objective(&[a, b, c]));
                }
            }
        }
        let greedy = sim.objective(&naive_greedy(&sim, k, None).unwrap());
        assert!(
            greedy >= (1.0 - 1.0 / std::f32::consts::E) * best - 1e-3,
            "greedy {greedy} vs optimum {best}"
        );
    }

    #[test]
    fn stochastic_is_close_to_greedy() {
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_uniform(&[60, 4], -1.0, 1.0, &mut rng);
        let sim = SimilarityMatrix::from_features(&x);
        let exact = sim.objective(&naive_greedy(&sim, 10, None).unwrap());
        let mut worst: f32 = f32::INFINITY;
        for seed in 0..5 {
            let mut r = Rng64::new(seed);
            let s = stochastic_greedy(&sim, 10, 0.1, &mut r, None);
            worst = worst.min(sim.objective(&s));
        }
        assert!(worst >= 0.85 * exact, "stochastic {worst} vs exact {exact}");
    }

    #[test]
    fn weights_sum_to_n() {
        let sim = SimilarityMatrix::from_features(&clustered_features());
        let mut rng = Rng64::new(4);
        let sel = maximize(&sim, 3, GreedyVariant::Lazy, &mut rng).unwrap();
        let total: f32 = sel.weights.iter().sum();
        assert_eq!(total, 12.0);
        // Balanced clusters ⇒ each medoid represents ~4 points.
        assert!(sel.weights.iter().all(|&w| (w - 4.0).abs() < 1.5));
    }

    #[test]
    fn k_zero_and_k_ge_n() {
        let sim = SimilarityMatrix::from_features(&clustered_features());
        let mut rng = Rng64::new(5);
        assert!(maximize(&sim, 0, GreedyVariant::Naive, &mut rng)
            .unwrap()
            .is_empty());
        let all = maximize(&sim, 100, GreedyVariant::Naive, &mut rng).unwrap();
        assert_eq!(all.len(), 12);
        let total: f32 = all.weights.iter().sum();
        assert_eq!(total, 12.0);
    }

    #[test]
    fn empty_candidate_set() {
        let sim = SimilarityMatrix::from_features(&Tensor::zeros(&[0, 3]));
        let mut rng = Rng64::new(6);
        assert!(maximize(&sim, 5, GreedyVariant::Lazy, &mut rng)
            .unwrap()
            .is_empty());
        assert!(sim.is_empty());
    }

    #[test]
    fn marginal_gains_diminish() {
        // Submodularity: the gain of the (t+1)-th greedy pick never exceeds
        // the gain of the t-th pick.
        let mut rng = Rng64::new(7);
        let x = Tensor::rand_uniform(&[30, 5], -1.0, 1.0, &mut rng);
        let sim = SimilarityMatrix::from_features(&x);
        let mut coverage = vec![f32::NEG_INFINITY; 30];
        let mut prev_gain = f32::INFINITY;
        for _ in 0..8 {
            let mut best = 0;
            let mut best_gain = f32::NEG_INFINITY;
            for j in 0..30 {
                let g = gain_from(&sim, j, &coverage);
                if g > best_gain {
                    best_gain = g;
                    best = j;
                }
            }
            assert!(best_gain <= prev_gain + 1e-3);
            prev_gain = best_gain;
            absorb_from(&sim, best, &mut coverage);
        }
    }

    #[test]
    fn absorb_is_idempotent() {
        let sim = SimilarityMatrix::from_features(&clustered_features());
        let mut coverage = vec![f32::NEG_INFINITY; 12];
        absorb_from(&sim, 0, &mut coverage);
        let snapshot = coverage.clone();
        absorb_from(&sim, 0, &mut coverage);
        assert_eq!(coverage, snapshot);
        // After absorbing j, j's own marginal gain is zero.
        assert_eq!(gain_from(&sim, 0, &coverage), 0.0);
    }
}
