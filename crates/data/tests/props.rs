//! Property tests for dataset machinery.

use nessa_data::loader::BatchPlan;
use nessa_data::{corrupt, SynthConfig};
use nessa_tensor::rng::Rng64;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn batch_plans_partition_exactly(
        n in 1usize..300, batch in 1usize..64, seed in any::<u64>()
    ) {
        let plan = BatchPlan::new(n, batch);
        let mut rng = Rng64::new(seed);
        let batches = plan.epoch(&mut rng);
        let all: Vec<usize> = batches.iter().flatten().copied().collect();
        prop_assert_eq!(all.len(), n);
        let set: HashSet<usize> = all.iter().copied().collect();
        prop_assert_eq!(set.len(), n);
        prop_assert!(batches.iter().all(|b| b.len() <= batch));
    }

    #[test]
    fn drop_last_only_full_batches(n in 1usize..300, batch in 1usize..64, seed in any::<u64>()) {
        let plan = BatchPlan::new(n, batch).drop_last();
        let mut rng = Rng64::new(seed);
        let batches = plan.epoch(&mut rng);
        prop_assert!(batches.iter().all(|b| b.len() == batch));
        prop_assert_eq!(batches.len(), n / batch);
    }

    #[test]
    fn generated_class_counts_are_balanced(
        classes in 1usize..12, train in 1usize..200, seed in any::<u64>()
    ) {
        let cfg = SynthConfig {
            classes,
            train: train.max(classes),
            test: classes,
            dim: 3,
            seed,
            ..SynthConfig::default()
        };
        let (ds, _) = cfg.generate();
        let by = ds.indices_by_class();
        let max = by.iter().map(Vec::len).max().unwrap();
        let min = by.iter().map(Vec::len).min().unwrap();
        // Round-robin assignment keeps class sizes within one of another.
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn label_noise_touches_only_victims(
        fraction in 0.0f32..1.0, seed in any::<u64>()
    ) {
        let cfg = SynthConfig { train: 60, test: 10, dim: 4, classes: 3, seed, ..SynthConfig::default() };
        let (ds, _) = cfg.generate();
        let mut rng = Rng64::new(seed ^ 1);
        let (noisy, victims) = corrupt::inject_label_noise(&ds, fraction, &mut rng);
        let victim_set: HashSet<usize> = victims.iter().copied().collect();
        for i in 0..ds.len() {
            if victim_set.contains(&i) {
                prop_assert_ne!(noisy.label(i), ds.label(i));
            } else {
                prop_assert_eq!(noisy.label(i), ds.label(i));
            }
        }
    }

    #[test]
    fn subset_of_subset_composes(seed in any::<u64>(), a in 1usize..30, b in 1usize..30) {
        let cfg = SynthConfig { train: 60, test: 10, dim: 4, classes: 3, seed, ..SynthConfig::default() };
        let (ds, _) = cfg.generate();
        let first: Vec<usize> = (0..a.min(60)).collect();
        let sub = ds.subset(&first);
        let second: Vec<usize> = (0..b.min(sub.len())).collect();
        let subsub = sub.subset(&second);
        for (j, &i) in second.iter().enumerate() {
            prop_assert_eq!(subsub.sample(j), ds.sample(first[i]));
            prop_assert_eq!(subsub.label(j), ds.label(first[i]));
        }
    }
}
