//! The paper's dataset catalog (Table 1) plus the MNIST entry used by
//! Figure 2.
//!
//! Each [`DatasetSpec`] carries two layers of information:
//!
//! * **full-scale metadata** — class count, training-set size, per-image
//!   bytes, native resolution, and the model the paper trains on it; these
//!   drive every timing/IO/throughput experiment at the paper's true scale,
//! * **scaled generation parameters** — a [`SynthConfig`] sized for CPU
//!   training; these drive the accuracy experiments (Tables 2/3, Figure 5).
//!
//! The paper's published Table 2 numbers are included so the benchmark
//! harness can print paper-vs-measured side by side.

use crate::synth::SynthConfig;

/// The network the paper assigns to a dataset (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperModel {
    /// CIFAR-style ResNet-20.
    ResNet20,
    /// ResNet-18.
    ResNet18,
    /// ResNet-50.
    ResNet50,
    /// A small convnet (MNIST profiling entry only; not in Table 1).
    SmallCnn,
}

impl PaperModel {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaperModel::ResNet20 => "ResNet-20",
            PaperModel::ResNet18 => "ResNet-18",
            PaperModel::ResNet50 => "ResNet-50",
            PaperModel::SmallCnn => "SmallCNN",
        }
    }
}

/// Published accuracy numbers from the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTable2 {
    /// Accuracy (%) of the model trained on all data.
    pub all_data_acc: f32,
    /// Accuracy (%) of NeSSA.
    pub nessa_acc: f32,
    /// Final subset size as a percentage of the training set.
    pub subset_pct: f32,
}

/// One dataset of the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Full training-set size.
    pub train_size: usize,
    /// Stored bytes per image.
    pub bytes_per_image: usize,
    /// Native square resolution (pixels per side).
    pub image_hw: usize,
    /// Model the paper trains on this dataset.
    pub model: PaperModel,
    /// The paper's Table 2 row (`None` for MNIST, which only appears in
    /// Figure 2).
    pub paper: Option<PaperTable2>,
    /// Difficulty knobs for the scaled synthetic stand-in, tuned so the
    /// relative difficulty ordering of the six datasets is preserved.
    scaled_cluster_std: f32,
    scaled_class_sep: f32,
}

impl DatasetSpec {
    /// All six Table-1 datasets, in the paper's order.
    pub fn table1() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec {
                name: "CIFAR-10",
                classes: 10,
                train_size: 50_000,
                bytes_per_image: 3_000,
                image_hw: 32,
                model: PaperModel::ResNet20,
                paper: Some(PaperTable2 {
                    all_data_acc: 92.02,
                    nessa_acc: 90.17,
                    subset_pct: 28.0,
                }),
                scaled_cluster_std: 0.59,
                scaled_class_sep: 0.62,
            },
            DatasetSpec {
                name: "SVHN",
                classes: 10,
                train_size: 73_000,
                bytes_per_image: 3_000,
                image_hw: 32,
                model: PaperModel::ResNet18,
                paper: Some(PaperTable2 {
                    all_data_acc: 95.81,
                    nessa_acc: 95.18,
                    subset_pct: 15.0,
                }),
                scaled_cluster_std: 0.45,
                scaled_class_sep: 0.70,
            },
            DatasetSpec {
                name: "CINIC-10",
                classes: 10,
                train_size: 90_000,
                bytes_per_image: 3_000,
                image_hw: 32,
                model: PaperModel::ResNet18,
                paper: Some(PaperTable2 {
                    all_data_acc: 81.49,
                    nessa_acc: 80.26,
                    subset_pct: 30.0,
                }),
                scaled_cluster_std: 0.83,
                scaled_class_sep: 0.52,
            },
            DatasetSpec {
                name: "CIFAR-100",
                classes: 100,
                train_size: 50_000,
                bytes_per_image: 3_000,
                image_hw: 32,
                model: PaperModel::ResNet18,
                paper: Some(PaperTable2 {
                    all_data_acc: 70.98,
                    nessa_acc: 69.23,
                    subset_pct: 38.0,
                }),
                scaled_cluster_std: 0.96,
                scaled_class_sep: 0.55,
            },
            DatasetSpec {
                name: "TinyImageNet",
                classes: 200,
                train_size: 100_000,
                bytes_per_image: 12_000,
                image_hw: 64,
                model: PaperModel::ResNet18,
                paper: Some(PaperTable2 {
                    all_data_acc: 63.40,
                    nessa_acc: 63.66,
                    subset_pct: 34.0,
                }),
                scaled_cluster_std: 0.83,
                scaled_class_sep: 0.50,
            },
            DatasetSpec {
                name: "ImageNet-100",
                classes: 100,
                train_size: 130_000,
                bytes_per_image: 130_000,
                image_hw: 224,
                model: PaperModel::ResNet50,
                paper: Some(PaperTable2 {
                    all_data_acc: 84.60,
                    nessa_acc: 83.76,
                    subset_pct: 28.0,
                }),
                scaled_cluster_std: 0.82,
                scaled_class_sep: 0.62,
            },
        ]
    }

    /// The MNIST entry used by the paper's Figure 2 profiling experiment.
    pub fn mnist() -> DatasetSpec {
        DatasetSpec {
            name: "MNIST",
            classes: 10,
            train_size: 60_000,
            bytes_per_image: 500,
            image_hw: 28,
            model: PaperModel::SmallCnn,
            paper: None,
            scaled_cluster_std: 0.7,
            scaled_class_sep: 3.5,
        }
    }

    /// Looks up a Table-1 dataset by its paper name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::table1().into_iter().find(|s| s.name == name)
    }

    /// The scaled synthetic stand-in for CPU training.
    ///
    /// Sizing rule: roughly 1/25th of the paper's training set, with a floor
    /// of 30 samples per class so the many-class datasets stay learnable,
    /// and a feature dimension that grows with the class count.
    pub fn scaled_config(&self, seed: u64) -> SynthConfig {
        let per_class_floor = 30 * self.classes;
        let train = (self.train_size / 25).max(per_class_floor);
        let dim = if self.classes >= 100 { 64 } else { 32 };
        // Intrinsic diversity scales with class population: plentiful
        // classes get enough Gaussian modes that a small subset cannot
        // cover them all (the property that makes full-data training the
        // upper bound, as in the paper), while 30-sample classes keep few
        // modes so they stay learnable.
        let per_class = train / self.classes;
        let clusters_per_class = (per_class / 6).clamp(6, 40);
        SynthConfig {
            name: self.name.to_string(),
            classes: self.classes,
            train,
            test: (train / 4).max(10 * self.classes),
            dim,
            clusters_per_class,
            cluster_std: self.scaled_cluster_std,
            class_sep: self.scaled_class_sep,
            // Interleave class modes so mode coverage — not just class
            // geometry — limits accuracy: a subset that misses modes pays
            // for it, which is what makes full-data training the ceiling.
            mode_spread: 2.3,
            hard_fraction: 0.10,
            hard_std_multiplier: 2.2,
            bytes_per_sample: self.bytes_per_image,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = DatasetSpec::table1();
        assert_eq!(t.len(), 6);
        let names: Vec<&str> = t.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "CIFAR-10",
                "SVHN",
                "CINIC-10",
                "CIFAR-100",
                "TinyImageNet",
                "ImageNet-100"
            ]
        );
        let c10 = &t[0];
        assert_eq!(c10.classes, 10);
        assert_eq!(c10.train_size, 50_000);
        assert_eq!(c10.model, PaperModel::ResNet20);
        let in100 = &t[5];
        assert_eq!(in100.model, PaperModel::ResNet50);
        assert_eq!(in100.bytes_per_image, 130_000);
    }

    #[test]
    fn paper_numbers_present_for_all_table1_rows() {
        for spec in DatasetSpec::table1() {
            let p = spec.paper.expect("Table 1 rows carry Table 2 numbers");
            assert!(p.all_data_acc > 0.0 && p.all_data_acc <= 100.0);
            assert!((5.0..=50.0).contains(&p.subset_pct));
        }
    }

    #[test]
    fn by_name_round_trips() {
        let s = DatasetSpec::by_name("CIFAR-100").unwrap();
        assert_eq!(s.classes, 100);
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn scaled_configs_are_trainable_sizes() {
        for spec in DatasetSpec::table1() {
            let cfg = spec.scaled_config(0);
            assert!(cfg.train >= 30 * spec.classes, "{}", spec.name);
            assert!(
                cfg.train <= 10_000,
                "{} too large: {}",
                spec.name,
                cfg.train
            );
            assert_eq!(cfg.bytes_per_sample, spec.bytes_per_image);
            let (train, test) = cfg.generate();
            assert_eq!(train.len(), cfg.train);
            assert!(test.len() >= 10 * spec.classes);
        }
    }

    #[test]
    fn mnist_is_figure2_only() {
        let m = DatasetSpec::mnist();
        assert!(m.paper.is_none());
        assert_eq!(m.bytes_per_image, 500);
    }
}
