//! The in-memory dataset container.

use nessa_tensor::Tensor;

/// A labelled dataset held in memory as a `n × d` feature matrix.
///
/// For convolutional models the feature dimension factors as
/// `channels × height × width` ([`Dataset::image_dims`]); MLPs consume the
/// rows directly. `bytes_per_sample` records the *storage* footprint each
/// example has on the simulated SSD (the paper's 0.5 KB–130 KB per image),
/// which can be much larger than the in-memory feature vector — raw pixels
/// versus the features the models train on.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Tensor,
    labels: Vec<usize>,
    classes: usize,
    bytes_per_sample: usize,
    image_dims: Option<(usize, usize, usize)>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `features` is not 2-D, the label count differs from the
    /// row count, any label is out of range, or `classes == 0`.
    pub fn new(
        name: impl Into<String>,
        features: Tensor,
        labels: Vec<usize>,
        classes: usize,
        bytes_per_sample: usize,
    ) -> Self {
        assert_eq!(features.ndim(), 2, "features must be [n, d]");
        assert_eq!(features.dim(0), labels.len(), "label count must match rows");
        assert!(classes > 0, "need at least one class");
        assert!(
            labels.iter().all(|&y| y < classes),
            "labels must be < classes"
        );
        Self {
            name: name.into(),
            features,
            labels,
            classes,
            bytes_per_sample,
            image_dims: None,
        }
    }

    /// Declares that each feature row is a `c × h × w` image.
    ///
    /// # Panics
    ///
    /// Panics if `c * h * w` does not equal the feature dimension.
    pub fn with_image_dims(mut self, c: usize, h: usize, w: usize) -> Self {
        assert_eq!(
            c * h * w,
            self.features.dim(1),
            "image dims do not factor the feature dimension"
        );
        self.image_dims = Some((c, h, w));
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.dim(1)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Storage bytes per sample on the simulated SSD.
    pub fn bytes_per_sample(&self) -> usize {
        self.bytes_per_sample
    }

    /// Total storage footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_sample as u64 * self.len() as u64
    }

    /// Image dimensions, when declared.
    pub fn image_dims(&self) -> Option<(usize, usize, usize)> {
        self.image_dims
    }

    /// The full feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Gathers a batch `(features, labels)` for the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let x = self.features.gather_rows(indices);
        let y = indices.iter().map(|&i| self.labels[i]).collect();
        (x, y)
    }

    /// Indices of every sample of each class: `result[c]` lists the samples
    /// with label `c`.
    pub fn indices_by_class(&self) -> Vec<Vec<usize>> {
        let mut by_class = vec![Vec::new(); self.classes];
        for (i, &y) in self.labels.iter().enumerate() {
            by_class[y].push(i);
        }
        by_class
    }

    /// A new dataset containing only the given samples (indices are
    /// re-numbered densely).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (features, labels) = self.batch(indices);
        Dataset {
            name: format!("{}[{}]", self.name, indices.len()),
            features,
            labels,
            classes: self.classes,
            bytes_per_sample: self.bytes_per_sample,
            image_dims: self.image_dims,
        }
    }

    /// Splits into `(first, second)` where `first` keeps `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let first: Vec<usize> = (0..n).collect();
        let second: Vec<usize> = (n..self.len()).collect();
        (self.subset(&first), self.subset(&second))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        Dataset::new("toy", x, vec![0, 1, 0, 1], 2, 100)
    }

    #[test]
    fn basics() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.total_bytes(), 400);
        assert_eq!(d.sample(1), &[3.0, 4.0, 5.0]);
        assert_eq!(d.label(2), 0);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "labels must be < classes")]
    fn rejects_out_of_range_labels() {
        let x = Tensor::zeros(&[1, 2]);
        let _ = Dataset::new("bad", x, vec![5], 2, 10);
    }

    #[test]
    fn batch_gathers() {
        let d = toy();
        let (x, y) = d.batch(&[3, 0]);
        assert_eq!(x.shape().dims(), &[2, 3]);
        assert_eq!(x.row(0), &[9.0, 10.0, 11.0]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn indices_by_class_partitions() {
        let d = toy();
        let by = d.indices_by_class();
        assert_eq!(by[0], vec![0, 2]);
        assert_eq!(by[1], vec![1, 3]);
    }

    #[test]
    fn subset_renumbers() {
        let d = toy();
        let s = d.subset(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 1]);
        assert_eq!(s.bytes_per_sample(), 100);
    }

    #[test]
    fn split_at_partitions() {
        let d = toy();
        let (a, b) = d.split_at(3);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.labels(), &[1]);
    }

    #[test]
    fn image_dims_check() {
        let x = Tensor::zeros(&[2, 12]);
        let d = Dataset::new("img", x, vec![0, 1], 2, 50).with_image_dims(3, 2, 2);
        assert_eq!(d.image_dims(), Some((3, 2, 2)));
    }

    #[test]
    #[should_panic(expected = "do not factor")]
    fn image_dims_rejects_bad_factorization() {
        let x = Tensor::zeros(&[2, 10]);
        let _ = Dataset::new("img", x, vec![0, 1], 2, 50).with_image_dims(3, 2, 2);
    }
}
