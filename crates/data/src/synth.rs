//! Seeded synthetic dataset generation.
//!
//! Samples are drawn from class-conditional Gaussian mixtures. Two knobs
//! give the generator the structure that matters for coreset selection:
//!
//! * **redundancy** — each class has a small number of cluster modes, so
//!   most samples are near-duplicates of a few representatives (this is the
//!   property that lets a medoid subset stand in for the full set), and
//! * **hardness** — a configurable fraction of samples is drawn with
//!   inflated noise, producing the persistent-high-loss tail that NeSSA's
//!   subset biasing is designed to keep.

use crate::dataset::Dataset;
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// Parameters of the Gaussian-mixture generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Dataset name (propagated to the generated [`Dataset`]).
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Training samples.
    pub train: usize,
    /// Test samples.
    pub test: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Gaussian modes per class (intra-class redundancy: fewer modes with
    /// more samples each ⇒ more redundant).
    pub clusters_per_class: usize,
    /// Within-cluster standard deviation (difficulty knob: larger ⇒ more
    /// class overlap ⇒ lower attainable accuracy).
    pub cluster_std: f32,
    /// Scale of class-centroid placement; larger ⇒ better separated.
    pub class_sep: f32,
    /// Spread of a class's modes around its centroid, as a ratio of
    /// `class_sep`. Small values make classes compact blobs; values near
    /// `1.0` interleave the modes of different classes, so covering every
    /// mode (i.e. having enough well-chosen samples) becomes the binding
    /// constraint on accuracy.
    pub mode_spread: f32,
    /// Fraction of samples drawn with [`SynthConfig::hard_std_multiplier`]×
    /// the noise (the "hard example" tail).
    pub hard_fraction: f32,
    /// Noise multiplier for hard samples.
    pub hard_std_multiplier: f32,
    /// Storage bytes per sample on the simulated SSD.
    pub bytes_per_sample: usize,
    /// RNG seed; the same config generates the same data.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".to_string(),
            classes: 10,
            train: 2000,
            test: 1000,
            dim: 32,
            clusters_per_class: 6,
            cluster_std: 1.0,
            class_sep: 3.0,
            mode_spread: 0.4,
            hard_fraction: 0.15,
            hard_std_multiplier: 2.5,
            bytes_per_sample: 3000,
            seed: 42,
        }
    }
}

impl SynthConfig {
    /// Generates `(train, test)` datasets.
    ///
    /// Class centroids and cluster modes are shared between the two splits,
    /// so the test set measures generalization over the same distribution.
    ///
    /// # Panics
    ///
    /// Panics if any of `classes`, `train`, `dim` or `clusters_per_class`
    /// is zero.
    pub fn generate(&self) -> (Dataset, Dataset) {
        assert!(self.classes > 0, "classes must be positive");
        assert!(self.train > 0, "train size must be positive");
        assert!(self.dim > 0, "dim must be positive");
        assert!(
            self.clusters_per_class > 0,
            "clusters_per_class must be positive"
        );
        let mut rng = Rng64::new(self.seed);
        // Class centroids, then cluster modes around each centroid.
        let centroids = Tensor::randn(&[self.classes, self.dim], 0.0, self.class_sep, &mut rng);
        let mut modes = Vec::with_capacity(self.classes);
        for c in 0..self.classes {
            let mut class_modes = Vec::with_capacity(self.clusters_per_class);
            for _ in 0..self.clusters_per_class {
                let mode: Vec<f32> = centroids
                    .row(c)
                    .iter()
                    .map(|&v| v + rng.normal(0.0, self.class_sep * self.mode_spread))
                    .collect();
                class_modes.push(mode);
            }
            modes.push(class_modes);
        }
        let train = self.sample_split(&modes, self.train, &mut rng, "");
        let test = self.sample_split(&modes, self.test, &mut rng, "-test");
        (train, test)
    }

    fn sample_split(
        &self,
        modes: &[Vec<Vec<f32>>],
        n: usize,
        rng: &mut Rng64,
        suffix: &str,
    ) -> Dataset {
        let mut features = Vec::with_capacity(n * self.dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Round-robin classes so every class is populated even for
            // small n, then shuffle-free: label order is irrelevant to the
            // consumers, which index by class.
            let class = i % self.classes;
            let mode = &modes[class][rng.index(self.clusters_per_class)];
            let hard = rng.coin(self.hard_fraction as f64);
            let std = if hard {
                self.cluster_std * self.hard_std_multiplier
            } else {
                self.cluster_std
            };
            for &m in mode {
                features.push(m + rng.normal(0.0, std));
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(features, &[n, self.dim]);
        Dataset::new(
            format!("{}{}", self.name, suffix),
            x,
            labels,
            self.classes,
            self.bytes_per_sample,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::linalg::sq_dist;

    #[test]
    fn generates_requested_sizes() {
        let cfg = SynthConfig::default();
        let (train, test) = cfg.generate();
        assert_eq!(train.len(), 2000);
        assert_eq!(test.len(), 1000);
        assert_eq!(train.dim(), 32);
        assert_eq!(train.classes(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthConfig::default();
        let (a, _) = cfg.generate();
        let (b, _) = cfg.generate();
        assert_eq!(a.features().as_slice(), b.features().as_slice());
        let mut cfg2 = cfg.clone();
        cfg2.seed = 7;
        let (c, _) = cfg2.generate();
        assert_ne!(a.features().as_slice(), c.features().as_slice());
    }

    #[test]
    fn every_class_is_populated() {
        let cfg = SynthConfig {
            classes: 25,
            train: 100,
            test: 50,
            ..SynthConfig::default()
        };
        let (train, test) = cfg.generate();
        for by in [train.indices_by_class(), test.indices_by_class()] {
            assert!(by.iter().all(|v| !v.is_empty()));
        }
    }

    #[test]
    fn classes_are_separated_in_feature_space() {
        // Same-class samples should on average be closer than cross-class
        // samples when class_sep dominates cluster_std.
        let cfg = SynthConfig {
            cluster_std: 0.5,
            class_sep: 5.0,
            hard_fraction: 0.0,
            ..SynthConfig::default()
        };
        let (train, _) = cfg.generate();
        let by = train.indices_by_class();
        let (mut intra, mut inter, mut ni, mut nx) = (0.0f64, 0.0f64, 0u64, 0u64);
        for &i in by[0].iter().take(30) {
            for &j in by[0].iter().take(30) {
                if i != j {
                    intra += sq_dist(train.sample(i), train.sample(j)) as f64;
                    ni += 1;
                }
            }
            for &j in by[1].iter().take(30) {
                inter += sq_dist(train.sample(i), train.sample(j)) as f64;
                nx += 1;
            }
        }
        assert!(inter / nx as f64 > intra / ni as f64);
    }

    #[test]
    fn hard_fraction_inflates_spread() {
        let base = SynthConfig {
            hard_fraction: 0.0,
            seed: 1,
            ..SynthConfig::default()
        };
        let hard = SynthConfig {
            hard_fraction: 0.5,
            hard_std_multiplier: 4.0,
            seed: 1,
            ..SynthConfig::default()
        };
        let (a, _) = base.generate();
        let (b, _) = hard.generate();
        let spread = |d: &Dataset| {
            let mean: f32 = d.features().mean();
            d.features()
                .as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / d.features().numel() as f32
        };
        assert!(spread(&b) > spread(&a));
    }

    #[test]
    #[should_panic(expected = "classes must be positive")]
    fn rejects_zero_classes() {
        let cfg = SynthConfig {
            classes: 0,
            ..SynthConfig::default()
        };
        let _ = cfg.generate();
    }
}
