//! Datasets for the NeSSA reproduction.
//!
//! The paper evaluates on CIFAR-10, SVHN, CINIC-10, CIFAR-100, TinyImageNet
//! and ImageNet-100 (Table 1). Those datasets are not redistributable inside
//! this repository, so this crate provides **seeded synthetic stand-ins**
//! with the same class counts, training-set sizes and per-image byte
//! footprints, generated as class-conditional Gaussian mixtures with
//! controllable intra-class redundancy (see DESIGN.md §2 for why this
//! preserves the behaviours the paper measures).
//!
//! * [`dataset`] — the in-memory [`Dataset`] container,
//! * [`synth`] — the Gaussian-mixture generator,
//! * [`catalog`] — the paper's Table 1 (plus MNIST for Figure 2) with both
//!   full-scale metadata and scaled-down generation parameters,
//! * [`record`] — the binary record format datasets use when they live on
//!   the simulated SmartSSD,
//! * [`loader`] — shuffled mini-batch iteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod corrupt;
pub mod dataset;
pub mod loader;
pub mod record;
pub mod synth;

pub use catalog::{DatasetSpec, PaperModel};
pub use dataset::Dataset;
pub use synth::SynthConfig;
