//! Shuffled mini-batch iteration.

use nessa_tensor::rng::Rng64;

/// Produces the index batches of one training epoch.
///
/// With `shuffle`, indices are permuted with the supplied RNG each time
/// [`BatchPlan::epoch`] is called, so successive epochs see different
/// orders while the whole run stays deterministic under its seed.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    n: usize,
    batch_size: usize,
    shuffle: bool,
    drop_last: bool,
}

impl BatchPlan {
    /// Creates a plan over `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            n,
            batch_size,
            shuffle: true,
            drop_last: false,
        }
    }

    /// Disables shuffling (evaluation order).
    pub fn sequential(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Drops a trailing partial batch.
    pub fn drop_last(mut self) -> Self {
        self.drop_last = true;
        self
    }

    /// Number of batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        if self.drop_last {
            self.n / self.batch_size
        } else {
            self.n.div_ceil(self.batch_size)
        }
    }

    /// Materializes one epoch of index batches.
    pub fn epoch(&self, rng: &mut Rng64) -> Vec<Vec<usize>> {
        self.epoch_excluding(&[], rng)
    }

    /// Like [`BatchPlan::epoch`], but skipping the `quarantined` indices —
    /// records a lossy decode dropped (see
    /// `record::decode_dataset_lossy`), so training iterates only over
    /// intact samples. Out-of-range entries in `quarantined` are ignored.
    pub fn epoch_excluding(&self, quarantined: &[usize], rng: &mut Rng64) -> Vec<Vec<usize>> {
        let mut banned = vec![false; self.n];
        for &q in quarantined {
            if q < self.n {
                banned[q] = true;
            }
        }
        let mut idx: Vec<usize> = (0..self.n).filter(|&i| !banned[i]).collect();
        if self.shuffle {
            rng.shuffle(&mut idx);
        }
        let mut out = Vec::with_capacity(self.batches_per_epoch());
        for chunk in idx.chunks(self.batch_size) {
            if self.drop_last && chunk.len() < self.batch_size {
                break;
            }
            out.push(chunk.to_vec());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_index_once() {
        let plan = BatchPlan::new(103, 16);
        let mut rng = Rng64::new(0);
        let batches = plan.epoch(&mut rng);
        assert_eq!(batches.len(), 7);
        let all: HashSet<usize> = batches.iter().flatten().copied().collect();
        assert_eq!(all.len(), 103);
    }

    #[test]
    fn drop_last_discards_partial() {
        let plan = BatchPlan::new(103, 16).drop_last();
        let mut rng = Rng64::new(0);
        let batches = plan.epoch(&mut rng);
        assert_eq!(batches.len(), 6);
        assert!(batches.iter().all(|b| b.len() == 16));
        assert_eq!(plan.batches_per_epoch(), 6);
    }

    #[test]
    fn sequential_preserves_order() {
        let plan = BatchPlan::new(10, 4).sequential();
        let mut rng = Rng64::new(0);
        let batches = plan.epoch(&mut rng);
        assert_eq!(batches[0], vec![0, 1, 2, 3]);
        assert_eq!(batches[2], vec![8, 9]);
    }

    #[test]
    fn shuffle_differs_between_epochs() {
        let plan = BatchPlan::new(64, 8);
        let mut rng = Rng64::new(1);
        let a = plan.epoch(&mut rng);
        let b = plan.epoch(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_under_seed() {
        let plan = BatchPlan::new(64, 8);
        let a = plan.epoch(&mut Rng64::new(9));
        let b = plan.epoch(&mut Rng64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn rejects_zero_batch() {
        let _ = BatchPlan::new(10, 0);
    }

    #[test]
    fn excluding_skips_quarantined_indices() {
        let plan = BatchPlan::new(20, 4).sequential();
        let mut rng = Rng64::new(0);
        let batches = plan.epoch_excluding(&[3, 7, 99], &mut rng);
        let all: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(all.len(), 18, "two in-range indices are skipped");
        assert!(!all.contains(&3) && !all.contains(&7));
        // Empty exclusion matches the plain epoch exactly.
        let a = plan.epoch_excluding(&[], &mut Rng64::new(5));
        let b = plan.epoch(&mut Rng64::new(5));
        assert_eq!(a, b);
    }
}
