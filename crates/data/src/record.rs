//! The binary record format datasets use on the simulated SmartSSD.
//!
//! Layout (little-endian):
//!
//! ```text
//! header:  magic "NSSA" | version u16 | classes u32 | dim u32
//!          | record_len u32 | count u32
//! record:  label u32 | dim × f32 | zero padding up to record_len
//! ```
//!
//! `record_len` is the dataset's storage bytes-per-sample, so a CIFAR-like
//! dataset really occupies 3 KB per record on the simulated flash even
//! though its feature vector is much smaller — the padding stands in for
//! the raw pixels the paper's SmartSSD stores and moves.

use crate::dataset::Dataset;
use std::fmt;

/// File magic.
pub const MAGIC: &[u8; 4] = b"NSSA";
/// Format version.
pub const VERSION: u16 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 4 + 4 + 4 + 4;

/// Errors from decoding a record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The stream ended before the advertised contents.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// A field failed validation.
    Corrupt(&'static str),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::BadMagic => write!(f, "bad magic; not a NeSSA record stream"),
            RecordError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            RecordError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated stream: expected {expected} bytes, got {actual}"
                )
            }
            RecordError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// On-flash bytes per record for a dataset: the declared storage footprint,
/// but never less than the encoded payload (label + features).
pub fn record_len(dim: usize, bytes_per_sample: usize) -> usize {
    (4 + 4 * dim).max(bytes_per_sample)
}

/// Total encoded length of a dataset, header included.
pub fn encoded_len(dataset: &Dataset) -> usize {
    HEADER_LEN + dataset.len() * record_len(dataset.dim(), dataset.bytes_per_sample())
}

/// Serializes a dataset into its on-flash representation.
pub fn encode_dataset(dataset: &Dataset) -> Vec<u8> {
    let rec_len = record_len(dataset.dim(), dataset.bytes_per_sample());
    let mut buf = Vec::with_capacity(encoded_len(dataset));
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(dataset.classes() as u32).to_le_bytes());
    buf.extend_from_slice(&(dataset.dim() as u32).to_le_bytes());
    buf.extend_from_slice(&(rec_len as u32).to_le_bytes());
    buf.extend_from_slice(&(dataset.len() as u32).to_le_bytes());
    let payload = 4 + 4 * dataset.dim();
    for i in 0..dataset.len() {
        buf.extend_from_slice(&(dataset.label(i) as u32).to_le_bytes());
        for &v in dataset.sample(i) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.resize(buf.len() + (rec_len - payload), 0);
    }
    buf
}

/// A little-endian cursor over a byte slice (the decode-side counterpart
/// of the plain `Vec<u8>` encoder above). Every read is bounds-checked
/// and returns [`RecordError::Truncated`] on a short stream — no read
/// can panic, however damaged the input.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        if self.bytes.len() < n {
            return Err(RecordError::Truncated {
                expected: n,
                actual: self.bytes.len(),
            });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn get_u16_le(&mut self) -> Result<u16, RecordError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn get_u32_le(&mut self) -> Result<u32, RecordError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_f32_le(&mut self) -> Result<f32, RecordError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Deserializes a dataset from its on-flash representation.
///
/// # Errors
///
/// Returns a [`RecordError`] when the stream is malformed: wrong magic or
/// version, truncated contents, or labels out of range.
pub fn decode_dataset(name: &str, bytes: &[u8]) -> Result<Dataset, RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            expected: HEADER_LEN,
            actual: bytes.len(),
        });
    }
    let (header, mut bytes) = decode_header(bytes)?;
    let need = header.count * header.rec_len;
    if bytes.remaining() < need {
        return Err(RecordError::Truncated {
            expected: HEADER_LEN + need,
            actual: HEADER_LEN + bytes.remaining(),
        });
    }
    let mut features = Vec::with_capacity(header.count * header.dim);
    let mut labels = Vec::with_capacity(header.count);
    for _ in 0..header.count {
        decode_record(&mut bytes, &header, &mut features, &mut labels)?;
    }
    let x = nessa_tensor::Tensor::from_vec(features, &[labels.len(), header.dim]);
    Ok(Dataset::new(
        name,
        x,
        labels,
        header.classes,
        header.rec_len,
    ))
}

/// The validated header fields of a record stream.
struct Header {
    classes: usize,
    dim: usize,
    rec_len: usize,
    count: usize,
}

fn decode_header(bytes: &[u8]) -> Result<(Header, Cursor<'_>), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            expected: HEADER_LEN,
            actual: bytes.len(),
        });
    }
    let mut bytes = Cursor { bytes };
    if bytes.take(4)? != MAGIC {
        return Err(RecordError::BadMagic);
    }
    let version = bytes.get_u16_le()?;
    if version != VERSION {
        return Err(RecordError::BadVersion(version));
    }
    let classes = bytes.get_u32_le()? as usize;
    let dim = bytes.get_u32_le()? as usize;
    let rec_len = bytes.get_u32_le()? as usize;
    let count = bytes.get_u32_le()? as usize;
    if classes == 0 {
        return Err(RecordError::Corrupt("zero classes"));
    }
    if rec_len < 4 + 4 * dim {
        return Err(RecordError::Corrupt("record length below payload size"));
    }
    Ok((
        Header {
            classes,
            dim,
            rec_len,
            count,
        },
        bytes,
    ))
}

/// Decodes one record, appending to `features`/`labels` only on success.
/// Always consumes exactly `rec_len` bytes when they are available (so a
/// lossy caller stays record-aligned after a corrupt label), and nothing
/// past the end of the stream when they are not.
fn decode_record(
    bytes: &mut Cursor<'_>,
    header: &Header,
    features: &mut Vec<f32>,
    labels: &mut Vec<usize>,
) -> Result<(), RecordError> {
    let mut rec = Cursor {
        bytes: bytes.take(header.rec_len)?,
    };
    // `rec_len ≥ 4 + 4·dim` was validated with the header, so these
    // in-record reads cannot fail.
    let label = rec.get_u32_le()? as usize;
    if label >= header.classes {
        return Err(RecordError::Corrupt("label out of range"));
    }
    for _ in 0..header.dim {
        features.push(rec.get_f32_le()?);
    }
    labels.push(label);
    Ok(())
}

/// Best-effort [`decode_dataset`]: decodes every intact record and counts
/// the damaged ones instead of failing the whole stream — the host-side
/// analogue of the pipeline's quarantine-and-count policy (the count
/// feeds the `data.quarantined` telemetry counter).
///
/// A record is quarantined when its label is out of range or the stream
/// ends inside it; decoding stops at the first short record since
/// everything after a truncation point is unrecoverable.
///
/// # Errors
///
/// Returns a [`RecordError`] only when the *header* is unusable (bad
/// magic/version, inconsistent geometry, or too short to read).
pub fn decode_dataset_lossy(name: &str, bytes: &[u8]) -> Result<(Dataset, u64), RecordError> {
    let (header, mut bytes) = decode_header(bytes)?;
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut quarantined = 0u64;
    for decoded in 0..header.count {
        match decode_record(&mut bytes, &header, &mut features, &mut labels) {
            Ok(()) => {}
            Err(RecordError::Truncated { .. }) => {
                // The rest of the stream is gone with this record.
                quarantined += (header.count - decoded) as u64;
                break;
            }
            Err(_) => quarantined += 1,
        }
    }
    let x = nessa_tensor::Tensor::from_vec(features, &[labels.len(), header.dim]);
    Ok((
        Dataset::new(name, x, labels, header.classes, header.rec_len),
        quarantined,
    ))
}

/// Writes a dataset to a `.nssa` file at `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_file(dataset: &Dataset, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, encode_dataset(dataset))
}

/// Reads a dataset from a `.nssa` file at `path`, naming it after the
/// file stem.
///
/// # Errors
///
/// Returns the underlying I/O error, or an
/// [`InvalidData`](std::io::ErrorKind::InvalidData) error wrapping the
/// [`RecordError`] when the file is malformed.
pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Dataset> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    decode_dataset(name, &bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn toy() -> Dataset {
        let cfg = SynthConfig {
            train: 40,
            test: 10,
            dim: 8,
            classes: 4,
            bytes_per_sample: 100,
            ..SynthConfig::default()
        };
        cfg.generate().0
    }

    #[test]
    fn round_trip() {
        let d = toy();
        let enc = encode_dataset(&d);
        assert_eq!(enc.len(), encoded_len(&d));
        let back = decode_dataset("toy", &enc).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.features().as_slice(), d.features().as_slice());
        assert_eq!(back.classes(), d.classes());
    }

    #[test]
    fn record_len_has_payload_floor() {
        assert_eq!(record_len(8, 100), 100);
        assert_eq!(record_len(100, 10), 404);
    }

    #[test]
    fn padding_reflects_storage_footprint() {
        let d = toy();
        // 40 records × 100 bytes + header.
        assert_eq!(encoded_len(&d), HEADER_LEN + 4000);
    }

    #[test]
    fn rejects_bad_magic() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        enc[0] = b'X';
        assert_eq!(decode_dataset("x", &enc), Err(RecordError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        enc[4] = 99;
        assert!(matches!(
            decode_dataset("x", &enc),
            Err(RecordError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let d = toy();
        let enc = encode_dataset(&d);
        let cut = &enc[..enc.len() - 10];
        assert!(matches!(
            decode_dataset("x", cut),
            Err(RecordError::Truncated { .. })
        ));
        assert!(matches!(
            decode_dataset("x", &enc[..3]),
            Err(RecordError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_label() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        // First record's label field sits right after the header.
        enc[HEADER_LEN] = 200;
        assert_eq!(
            decode_dataset("x", &enc),
            Err(RecordError::Corrupt("label out of range"))
        );
    }

    #[test]
    fn lossy_decode_quarantines_bad_labels() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        // First record's label field sits right after the header.
        enc[HEADER_LEN] = 200;
        let (back, quarantined) = decode_dataset_lossy("q", &enc).unwrap();
        assert_eq!(quarantined, 1);
        assert_eq!(back.len(), d.len() - 1);
        assert_eq!(back.labels(), &d.labels()[1..]);
    }

    #[test]
    fn lossy_decode_counts_truncated_tail() {
        let d = toy();
        let enc = encode_dataset(&d);
        let rec = record_len(d.dim(), d.bytes_per_sample());
        // Lose the last record plus part of the one before it.
        let cut = &enc[..enc.len() - rec - 10];
        let (back, quarantined) = decode_dataset_lossy("cut", cut).unwrap();
        assert_eq!(quarantined, 2);
        assert_eq!(back.len(), d.len() - 2);
        assert_eq!(back.labels(), &d.labels()[..d.len() - 2]);
    }

    #[test]
    fn lossy_decode_still_rejects_bad_headers() {
        assert!(decode_dataset_lossy("x", b"nope").is_err());
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        enc[0] = b'X';
        assert_eq!(decode_dataset_lossy("x", &enc), Err(RecordError::BadMagic));
    }

    #[test]
    fn lossy_decode_conserves_records_under_random_truncation() {
        use crate::corrupt::truncate_random;
        use nessa_tensor::rng::Rng64;
        let d = toy();
        let clean = encode_dataset(&d);
        let mut rng = Rng64::new(7);
        for _ in 0..100 {
            let cut = truncate_random(&clean, &mut rng);
            // Header intact → every record is either decoded or counted.
            if let Ok((back, q)) = decode_dataset_lossy("cut", &cut) {
                assert_eq!(back.len() as u64 + q, d.len() as u64);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let d = toy();
        let dir = std::env::temp_dir().join("nessa-record-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.nssa");
        write_file(&d, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.name(), "toy");
        assert_eq!(back.features().as_slice(), d.features().as_slice());
        assert_eq!(back.labels(), d.labels());
        // A corrupted file surfaces as InvalidData, not a panic.
        std::fs::write(&path, b"not a record stream").unwrap();
        let err = read_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RecordError::BadMagic,
            RecordError::BadVersion(2),
            RecordError::Truncated {
                expected: 10,
                actual: 5,
            },
            RecordError::Corrupt("x"),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
