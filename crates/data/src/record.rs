//! The binary record format datasets use on the simulated SmartSSD.
//!
//! Layout (little-endian):
//!
//! ```text
//! header:  magic "NSSA" | version u16 | classes u32 | dim u32
//!          | record_len u32 | count u32
//! record:  label u32 | dim × f32 | zero padding up to record_len
//! ```
//!
//! `record_len` is the dataset's storage bytes-per-sample, so a CIFAR-like
//! dataset really occupies 3 KB per record on the simulated flash even
//! though its feature vector is much smaller — the padding stands in for
//! the raw pixels the paper's SmartSSD stores and moves.

use crate::dataset::Dataset;
use std::fmt;

/// File magic.
pub const MAGIC: &[u8; 4] = b"NSSA";
/// Format version.
pub const VERSION: u16 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 4 + 4 + 4 + 4;

/// Errors from decoding a record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The stream ended before the advertised contents.
    Truncated {
        /// Bytes expected.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// A field failed validation.
    Corrupt(&'static str),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::BadMagic => write!(f, "bad magic; not a NeSSA record stream"),
            RecordError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            RecordError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated stream: expected {expected} bytes, got {actual}"
                )
            }
            RecordError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// On-flash bytes per record for a dataset: the declared storage footprint,
/// but never less than the encoded payload (label + features).
pub fn record_len(dim: usize, bytes_per_sample: usize) -> usize {
    (4 + 4 * dim).max(bytes_per_sample)
}

/// Total encoded length of a dataset, header included.
pub fn encoded_len(dataset: &Dataset) -> usize {
    HEADER_LEN + dataset.len() * record_len(dataset.dim(), dataset.bytes_per_sample())
}

/// Serializes a dataset into its on-flash representation.
pub fn encode_dataset(dataset: &Dataset) -> Vec<u8> {
    let rec_len = record_len(dataset.dim(), dataset.bytes_per_sample());
    let mut buf = Vec::with_capacity(encoded_len(dataset));
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(dataset.classes() as u32).to_le_bytes());
    buf.extend_from_slice(&(dataset.dim() as u32).to_le_bytes());
    buf.extend_from_slice(&(rec_len as u32).to_le_bytes());
    buf.extend_from_slice(&(dataset.len() as u32).to_le_bytes());
    let payload = 4 + 4 * dataset.dim();
    for i in 0..dataset.len() {
        buf.extend_from_slice(&(dataset.label(i) as u32).to_le_bytes());
        for &v in dataset.sample(i) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.resize(buf.len() + (rec_len - payload), 0);
    }
    buf
}

/// A little-endian cursor over a byte slice (the decode-side counterpart
/// of the plain `Vec<u8>` encoder above).
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        head
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }
}

/// Deserializes a dataset from its on-flash representation.
///
/// # Errors
///
/// Returns a [`RecordError`] when the stream is malformed: wrong magic or
/// version, truncated contents, or labels out of range.
pub fn decode_dataset(name: &str, bytes: &[u8]) -> Result<Dataset, RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            expected: HEADER_LEN,
            actual: bytes.len(),
        });
    }
    let mut bytes = Cursor { bytes };
    if bytes.take(4) != MAGIC {
        return Err(RecordError::BadMagic);
    }
    let version = bytes.get_u16_le();
    if version != VERSION {
        return Err(RecordError::BadVersion(version));
    }
    let classes = bytes.get_u32_le() as usize;
    let dim = bytes.get_u32_le() as usize;
    let rec_len = bytes.get_u32_le() as usize;
    let count = bytes.get_u32_le() as usize;
    if classes == 0 {
        return Err(RecordError::Corrupt("zero classes"));
    }
    if rec_len < 4 + 4 * dim {
        return Err(RecordError::Corrupt("record length below payload size"));
    }
    let need = count * rec_len;
    if bytes.remaining() < need {
        return Err(RecordError::Truncated {
            expected: HEADER_LEN + need,
            actual: HEADER_LEN + bytes.remaining(),
        });
    }
    let mut features = Vec::with_capacity(count * dim);
    let mut labels = Vec::with_capacity(count);
    let pad = rec_len - (4 + 4 * dim);
    for _ in 0..count {
        let label = bytes.get_u32_le() as usize;
        if label >= classes {
            return Err(RecordError::Corrupt("label out of range"));
        }
        labels.push(label);
        for _ in 0..dim {
            features.push(bytes.get_f32_le());
        }
        bytes.take(pad);
    }
    let x = nessa_tensor::Tensor::from_vec(features, &[count, dim]);
    Ok(Dataset::new(name, x, labels, classes, rec_len))
}

/// Writes a dataset to a `.nssa` file at `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_file(dataset: &Dataset, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, encode_dataset(dataset))
}

/// Reads a dataset from a `.nssa` file at `path`, naming it after the
/// file stem.
///
/// # Errors
///
/// Returns the underlying I/O error, or an
/// [`InvalidData`](std::io::ErrorKind::InvalidData) error wrapping the
/// [`RecordError`] when the file is malformed.
pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Dataset> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    decode_dataset(name, &bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthConfig;

    fn toy() -> Dataset {
        let cfg = SynthConfig {
            train: 40,
            test: 10,
            dim: 8,
            classes: 4,
            bytes_per_sample: 100,
            ..SynthConfig::default()
        };
        cfg.generate().0
    }

    #[test]
    fn round_trip() {
        let d = toy();
        let enc = encode_dataset(&d);
        assert_eq!(enc.len(), encoded_len(&d));
        let back = decode_dataset("toy", &enc).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.features().as_slice(), d.features().as_slice());
        assert_eq!(back.classes(), d.classes());
    }

    #[test]
    fn record_len_has_payload_floor() {
        assert_eq!(record_len(8, 100), 100);
        assert_eq!(record_len(100, 10), 404);
    }

    #[test]
    fn padding_reflects_storage_footprint() {
        let d = toy();
        // 40 records × 100 bytes + header.
        assert_eq!(encoded_len(&d), HEADER_LEN + 4000);
    }

    #[test]
    fn rejects_bad_magic() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        enc[0] = b'X';
        assert_eq!(decode_dataset("x", &enc), Err(RecordError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        enc[4] = 99;
        assert!(matches!(
            decode_dataset("x", &enc),
            Err(RecordError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let d = toy();
        let enc = encode_dataset(&d);
        let cut = &enc[..enc.len() - 10];
        assert!(matches!(
            decode_dataset("x", cut),
            Err(RecordError::Truncated { .. })
        ));
        assert!(matches!(
            decode_dataset("x", &enc[..3]),
            Err(RecordError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_label() {
        let d = toy();
        let mut enc = encode_dataset(&d).to_vec();
        // First record's label field sits right after the header.
        enc[HEADER_LEN] = 200;
        assert_eq!(
            decode_dataset("x", &enc),
            Err(RecordError::Corrupt("label out of range"))
        );
    }

    #[test]
    fn file_round_trip() {
        let d = toy();
        let dir = std::env::temp_dir().join("nessa-record-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.nssa");
        write_file(&d, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.name(), "toy");
        assert_eq!(back.features().as_slice(), d.features().as_slice());
        assert_eq!(back.labels(), d.labels());
        // A corrupted file surfaces as InvalidData, not a panic.
        std::fs::write(&path, b"not a record stream").unwrap();
        let err = read_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            RecordError::BadMagic,
            RecordError::BadVersion(2),
            RecordError::Truncated {
                expected: 10,
                actual: 5,
            },
            RecordError::Corrupt("x"),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
