//! Failure injection for robustness testing.
//!
//! Storage systems must fail loudly, not silently: these helpers corrupt
//! encoded record streams (bit flips, truncation, duplication) and inject
//! label noise into datasets, so tests can verify that the decoder rejects
//! damage and that the training pipeline degrades gracefully rather than
//! crashing.

use crate::dataset::Dataset;
use nessa_tensor::rng::Rng64;

/// Flips `count` random bits anywhere in `bytes` (duplicates possible).
///
/// # Panics
///
/// Panics if `bytes` is empty and `count > 0`.
pub fn flip_random_bits(bytes: &mut [u8], count: usize, rng: &mut Rng64) {
    assert!(
        count == 0 || !bytes.is_empty(),
        "cannot flip bits in an empty buffer"
    );
    for _ in 0..count {
        let i = rng.index(bytes.len());
        let bit = rng.index(8);
        bytes[i] ^= 1 << bit;
    }
}

/// Returns a copy of `bytes` truncated to a random length in
/// `[0, bytes.len())`.
pub fn truncate_random(bytes: &[u8], rng: &mut Rng64) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let keep = rng.index(bytes.len());
    bytes[..keep].to_vec()
}

/// Re-labels a fraction of samples uniformly at random (label noise),
/// returning the indices that changed.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or the dataset has fewer than
/// two classes (re-labelling is then impossible).
pub fn inject_label_noise(
    dataset: &Dataset,
    fraction: f32,
    rng: &mut Rng64,
) -> (Dataset, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    assert!(
        dataset.classes() >= 2,
        "label noise needs at least two classes"
    );
    let n = dataset.len();
    let victims = rng.sample_indices(n, ((n as f32) * fraction).round() as usize);
    let mut labels = dataset.labels().to_vec();
    for &i in &victims {
        let old = labels[i];
        let mut new = rng.index(dataset.classes());
        while new == old {
            new = rng.index(dataset.classes());
        }
        labels[i] = new;
    }
    let noisy = Dataset::new(
        format!("{}+noise{:.0}%", dataset.name(), 100.0 * fraction),
        dataset.features().clone(),
        labels,
        dataset.classes(),
        dataset.bytes_per_sample(),
    );
    (noisy, victims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{decode_dataset, encode_dataset};
    use crate::synth::SynthConfig;

    fn toy() -> Dataset {
        SynthConfig {
            train: 50,
            test: 10,
            dim: 6,
            classes: 4,
            ..SynthConfig::default()
        }
        .generate()
        .0
    }

    #[test]
    fn bit_flips_change_the_buffer() {
        let mut rng = Rng64::new(0);
        let mut buf = vec![0u8; 64];
        flip_random_bits(&mut buf, 10, &mut rng);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn decoder_survives_random_corruption() {
        // Any corruption must produce Err or a *valid* dataset — never a
        // panic or an out-of-contract value.
        let ds = toy();
        let clean = encode_dataset(&ds);
        let mut rng = Rng64::new(1);
        for round in 0..100 {
            let mut bytes = clean.to_vec();
            flip_random_bits(&mut bytes, 1 + round % 8, &mut rng);
            if let Ok(decoded) = decode_dataset("corrupt", &bytes) {
                assert!(decoded.labels().iter().all(|&y| y < decoded.classes()));
                assert_eq!(decoded.len(), decoded.labels().len());
            }
        }
    }

    #[test]
    fn decoder_survives_truncation() {
        let ds = toy();
        let clean = encode_dataset(&ds);
        let mut rng = Rng64::new(2);
        for _ in 0..50 {
            let cut = truncate_random(&clean, &mut rng);
            // Shorter than the original can decode only if it still
            // advertises a consistent record count — most cuts must fail.
            if let Ok(decoded) = decode_dataset("cut", &cut) {
                assert!(decoded.len() <= ds.len());
            }
        }
    }

    #[test]
    fn label_noise_changes_exactly_the_requested_fraction() {
        let ds = toy();
        let mut rng = Rng64::new(3);
        let (noisy, victims) = inject_label_noise(&ds, 0.2, &mut rng);
        assert_eq!(victims.len(), 10);
        let changed = ds
            .labels()
            .iter()
            .zip(noisy.labels())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(changed, 10);
        assert_eq!(noisy.features().as_slice(), ds.features().as_slice());
    }

    #[test]
    fn zero_noise_is_identity() {
        let ds = toy();
        let mut rng = Rng64::new(4);
        let (noisy, victims) = inject_label_noise(&ds, 0.0, &mut rng);
        assert!(victims.is_empty());
        assert_eq!(noisy.labels(), ds.labels());
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn noise_rejects_single_class() {
        let ds = Dataset::new(
            "one",
            nessa_tensor::Tensor::zeros(&[3, 2]),
            vec![0, 0, 0],
            1,
            10,
        );
        let mut rng = Rng64::new(5);
        let _ = inject_label_noise(&ds, 0.5, &mut rng);
    }
}
