//! The NAND flash array.
//!
//! Reads are modelled at page granularity: each page costs a sense time
//! (`t_R`) on its die plus a transfer over its channel; pages interleave
//! across channels, so the array's sustained read bandwidth is roughly
//! `channels × page_size / max(t_R / pages_in_flight, transfer_time)`.
//! The default geometry sustains ~3 GB/s internally — the "theoretical
//! 3 GBps SSD-to-FPGA" figure of paper §4.4 — so the P2P link, not the
//! flash, is the bottleneck the experiments observe.

/// Flash array geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandConfig {
    /// Independent channels.
    pub channels: usize,
    /// Dies per channel (interleaving depth within a channel).
    pub dies_per_channel: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Page sense (read) latency in seconds.
    pub t_r_secs: f64,
    /// Page program (write) latency in seconds.
    pub t_prog_secs: f64,
    /// Per-channel ONFI transfer bandwidth in bytes/s.
    pub channel_bytes_per_s: f64,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
}

impl Default for NandConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            dies_per_channel: 4,
            page_bytes: 16 * 1024,
            t_r_secs: 60e-6,
            t_prog_secs: 600e-6,
            channel_bytes_per_s: 500e6,
            capacity_bytes: 3_840_000_000_000, // 3.84 TB (paper §2.2)
        }
    }
}

/// The flash array with cumulative read statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct NandArray {
    config: NandConfig,
    bytes_read: u64,
    pages_read: u64,
}

impl NandArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if any geometry field is zero or non-positive.
    pub fn new(config: NandConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        assert!(config.dies_per_channel > 0, "need at least one die");
        assert!(config.page_bytes > 0, "page size must be positive");
        assert!(config.t_r_secs > 0.0 && config.channel_bytes_per_s > 0.0);
        Self {
            config,
            bytes_read: 0,
            pages_read: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// Seconds to read `bytes` of sequentially-laid-out data, with pages
    /// striped across all channels and dies.
    ///
    /// Returns `0.0` for zero-byte reads.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the configured capacity.
    pub fn read(&mut self, bytes: u64) -> f64 {
        assert!(
            bytes <= self.config.capacity_bytes,
            "read of {bytes} bytes exceeds {}-byte capacity",
            self.config.capacity_bytes
        );
        if bytes == 0 {
            return 0.0;
        }
        let pages = bytes.div_ceil(self.config.page_bytes as u64);
        self.bytes_read += bytes;
        self.pages_read += pages;
        // Pages are spread over channels×dies ways; within a pipeline the
        // throughput per channel is limited by the slower of sensing
        // (amortized over the dies sharing the channel) and the transfer.
        let ways = (self.config.channels * self.config.dies_per_channel) as f64;
        let sense_per_page = self.config.t_r_secs / self.config.dies_per_channel as f64;
        let xfer_per_page = self.config.page_bytes as f64 / self.config.channel_bytes_per_s;
        let per_page_channel_time = sense_per_page.max(xfer_per_page);
        let pages_per_channel = (pages as f64 / self.config.channels as f64).ceil();
        // Pipeline fill: first page pays full sense + transfer.
        let fill = self.config.t_r_secs + xfer_per_page;
        let _ = ways;
        fill + (pages_per_channel - 1.0).max(0.0) * per_page_channel_time
    }

    /// Seconds to program (write) `bytes` of sequentially-laid-out data,
    /// striped like reads but paying the much larger `t_PROG` per page.
    /// Used when a dataset is first installed on the drive.
    ///
    /// Returns `0.0` for zero-byte writes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the configured capacity.
    pub fn program(&mut self, bytes: u64) -> f64 {
        assert!(
            bytes <= self.config.capacity_bytes,
            "write of {bytes} bytes exceeds {}-byte capacity",
            self.config.capacity_bytes
        );
        if bytes == 0 {
            return 0.0;
        }
        let pages = bytes.div_ceil(self.config.page_bytes as u64);
        let prog_per_page = self.config.t_prog_secs / self.config.dies_per_channel as f64;
        let xfer_per_page = self.config.page_bytes as f64 / self.config.channel_bytes_per_s;
        let per_page = prog_per_page.max(xfer_per_page);
        let pages_per_channel = (pages as f64 / self.config.channels as f64).ceil();
        self.config.t_prog_secs + xfer_per_page + (pages_per_channel - 1.0).max(0.0) * per_page
    }

    /// Sustained internal read bandwidth in bytes/s (asymptotic, ignoring
    /// pipeline fill).
    pub fn sustained_bytes_per_s(&self) -> f64 {
        let sense_per_page = self.config.t_r_secs / self.config.dies_per_channel as f64;
        let xfer_per_page = self.config.page_bytes as f64 / self.config.channel_bytes_per_s;
        let per_page = sense_per_page.max(xfer_per_page);
        self.config.channels as f64 * self.config.page_bytes as f64 / per_page
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total pages read so far.
    pub fn pages_read(&self) -> u64 {
        self.pages_read
    }
}

impl Default for NandArray {
    fn default() -> Self {
        Self::new(NandConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sustains_about_3gbps() {
        let nand = NandArray::default();
        let bw = nand.sustained_bytes_per_s();
        assert!(
            (2.5e9..4.5e9).contains(&bw),
            "sustained internal bandwidth {bw}"
        );
    }

    #[test]
    fn large_reads_approach_sustained_bandwidth() {
        let mut nand = NandArray::default();
        let bytes = 1_000_000_000u64;
        let t = nand.read(bytes);
        let eff = bytes as f64 / t;
        assert!(eff > 0.9 * nand.sustained_bytes_per_s(), "effective {eff}");
    }

    #[test]
    fn small_reads_pay_latency() {
        let mut nand = NandArray::default();
        let t = nand.read(4096);
        // Must pay at least one full page sense.
        assert!(t >= 60e-6);
    }

    #[test]
    fn read_time_is_monotone_in_size() {
        let mut nand = NandArray::default();
        let mut prev = 0.0;
        for bytes in [1u64 << 12, 1 << 16, 1 << 20, 1 << 24] {
            let t = nand.read(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut nand = NandArray::default();
        let _ = nand.read(16 * 1024);
        let _ = nand.read(1);
        assert_eq!(nand.bytes_read(), 16 * 1024 + 1);
        assert_eq!(nand.pages_read(), 2);
    }

    #[test]
    fn programming_is_slower_than_reading() {
        let mut nand = NandArray::default();
        let bytes = 100_000_000u64;
        let r = nand.read(bytes);
        let w = nand.program(bytes);
        assert!(w > r, "program {w}s should exceed read {r}s");
        assert_eq!(nand.program(0), 0.0);
    }

    #[test]
    fn zero_read_is_free() {
        let mut nand = NandArray::default();
        assert_eq!(nand.read(0), 0.0);
        assert_eq!(nand.bytes_read(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_reads_beyond_capacity() {
        let mut nand = NandArray::default();
        let _ = nand.read(u64::MAX / 2);
    }
}
