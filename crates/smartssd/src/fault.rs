//! Deterministic fault injection for the SmartSSD simulator.
//!
//! Near-storage selection moves the hot path of every epoch onto the
//! drive, so the training loop inherits storage-side failure modes a
//! host-only pipeline never sees: transient NAND read errors, FPGA
//! kernel aborts, PCIe latency spikes, silently corrupt records, and
//! whole-drive dropout. This module models them as a [`FaultPlan`] — a
//! fully deterministic schedule armed on a device before a run.
//!
//! Schedules are indexed by *operation count* on the relevant data path
//! (scan, kernel, transfer), never by wall clock: a plan either lists
//! explicit op indexes or is drawn up front from a seeded
//! [`Rng64`](nessa_tensor::rng::Rng64) via [`FaultPlan::seeded`]. Time
//! only ever advances on the device's [`SimClock`](crate::SimClock), so
//! the same plan against the same workload reproduces byte-identical
//! traces (lint rules d1/d2 hold throughout).

use crate::fpga::KernelError;
use nessa_tensor::rng::Rng64;

/// Why a device operation failed.
///
/// Transient variants ([`DeviceError::is_transient`]) may succeed if the
/// same operation is retried; [`DeviceError::Offline`] is terminal for
/// the drive and asks the caller to evict it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// A NAND read failed in a way the drive's ECC could not correct.
    /// Retryable: the next attempt re-reads the stripe.
    TransientRead {
        /// Scan-channel operation index at which the error fired.
        op: u64,
    },
    /// The FPGA selection kernel failed (aborted mid-flight, or the
    /// profile cannot fit on-chip memory at all).
    Kernel(KernelError),
    /// The whole drive dropped off the bus and will not come back.
    Offline,
}

impl DeviceError {
    /// Whether retrying the same operation can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::TransientRead { .. } | DeviceError::Kernel(KernelError::Aborted { .. })
        )
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::TransientRead { op } => {
                write!(f, "transient NAND read error (scan op {op})")
            }
            DeviceError::Kernel(e) => write!(f, "{e}"),
            DeviceError::Offline => write!(f, "drive is offline"),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for DeviceError {
    fn from(e: KernelError) -> Self {
        DeviceError::Kernel(e)
    }
}

/// A burst of consecutive failures on one fault channel: every operation
/// from index `at` onward fails until `remaining` hits zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Burst {
    at: u64,
    remaining: u32,
}

/// A one-shot latency spike: the first transfer op at index ≥ `at` takes
/// `extra_secs` longer.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Spike {
    at: u64,
    extra_secs: f64,
}

/// A one-shot corruption event: the first scan op at index ≥ `at`
/// delivers `records` undecodable records (the op itself succeeds; the
/// bad records are counted for quarantine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Corruption {
    at: u64,
    records: u64,
}

/// A deterministic fault schedule for one drive.
///
/// All channels are indexed by per-channel operation count (0-based):
/// the *scan* channel counts flash reads ([`read_records_to_fpga`]
/// and the staged [`conventional_read_to_host`] path), the *kernel*
/// channel counts [`run_selection`] launches, and the *transfer* channel
/// counts host-link transfers (subset shipment, feedback, install).
/// Failed attempts advance the channel index too, so a burst of `n`
/// failures models exactly `n` consecutive failed attempts.
///
/// [`read_records_to_fpga`]: crate::SmartSsd::read_records_to_fpga
/// [`conventional_read_to_host`]: crate::SmartSsd::conventional_read_to_host
/// [`run_selection`]: crate::SmartSsd::run_selection
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    read_errors: Vec<Burst>,
    kernel_aborts: Vec<Burst>,
    stalls: Vec<Spike>,
    corruptions: Vec<Corruption>,
    dropout_after: Option<u64>,
}

impl FaultPlan {
    /// A plan with no faults armed.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan arms no faults at all.
    pub fn is_empty(&self) -> bool {
        self.read_errors.is_empty()
            && self.kernel_aborts.is_empty()
            && self.stalls.is_empty()
            && self.corruptions.is_empty()
            && self.dropout_after.is_none()
    }

    /// Arms `failures` consecutive transient NAND read errors starting at
    /// scan op `at`.
    pub fn with_read_error(mut self, at: u64, failures: u32) -> Self {
        self.read_errors.push(Burst {
            at,
            remaining: failures,
        });
        self
    }

    /// Arms `failures` consecutive kernel aborts starting at kernel op
    /// `at`. Use `u32::MAX` for a permanently failed kernel.
    pub fn with_kernel_abort(mut self, at: u64, failures: u32) -> Self {
        self.kernel_aborts.push(Burst {
            at,
            remaining: failures,
        });
        self
    }

    /// Arms a one-shot PCIe latency spike of `extra_secs` on the first
    /// transfer op at index ≥ `at`.
    pub fn with_pcie_stall(mut self, at: u64, extra_secs: f64) -> Self {
        self.stalls.push(Spike { at, extra_secs });
        self
    }

    /// Arms a one-shot corruption of `records` records on the first scan
    /// op at index ≥ `at` (the read succeeds; the records are
    /// quarantined).
    pub fn with_corrupt_read(mut self, at: u64, records: u64) -> Self {
        self.corruptions.push(Corruption { at, records });
        self
    }

    /// Takes the whole drive offline after `ops` completed operations
    /// (counted across all channels). Once offline, every operation
    /// returns [`DeviceError::Offline`].
    pub fn with_dropout_after(mut self, ops: u64) -> Self {
        self.dropout_after = Some(ops);
        self
    }

    /// Draws a plan from a seeded RNG: each channel fires according to
    /// `spec`'s per-op rates over `spec.horizon_ops` operations. The same
    /// `(seed, spec)` pair always yields the same plan.
    pub fn seeded(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = Rng64::new(seed);
        let mut plan = FaultPlan::default();
        for op in 0..spec.horizon_ops {
            if rng.coin(spec.read_error_rate) {
                plan = plan.with_read_error(op, spec.read_error_burst.max(1));
            }
            if rng.coin(spec.kernel_abort_rate) {
                plan = plan.with_kernel_abort(op, spec.kernel_abort_burst.max(1));
            }
            if rng.coin(spec.stall_rate) {
                let extra = rng.uniform(spec.stall_secs.0 as f32, spec.stall_secs.1 as f32);
                plan = plan.with_pcie_stall(op, extra as f64);
            }
            if rng.coin(spec.corrupt_rate) {
                plan = plan.with_corrupt_read(op, spec.corrupt_records.max(1));
            }
        }
        if rng.coin(spec.dropout_probability) && spec.horizon_ops > 0 {
            let at = rng.index(spec.horizon_ops as usize) as u64;
            plan = plan.with_dropout_after(at);
        }
        plan
    }
}

/// Per-op fault rates from which [`FaultPlan::seeded`] draws a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Number of per-channel operations the schedule covers.
    pub horizon_ops: u64,
    /// Probability a read-error burst starts at any given scan op.
    pub read_error_rate: f64,
    /// Consecutive failures per read-error burst (min 1).
    pub read_error_burst: u32,
    /// Probability a kernel-abort burst starts at any given kernel op.
    pub kernel_abort_rate: f64,
    /// Consecutive failures per kernel-abort burst (min 1).
    pub kernel_abort_burst: u32,
    /// Probability a PCIe latency spike arms at any given transfer op.
    pub stall_rate: f64,
    /// Uniform range the spike's extra seconds are drawn from.
    pub stall_secs: (f64, f64),
    /// Probability a corruption event arms at any given scan op.
    pub corrupt_rate: f64,
    /// Records quarantined per corruption event (min 1).
    pub corrupt_records: u64,
    /// Probability the drive drops out somewhere within the horizon.
    pub dropout_probability: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            horizon_ops: 64,
            read_error_rate: 0.0,
            read_error_burst: 1,
            kernel_abort_rate: 0.0,
            kernel_abort_burst: 1,
            stall_rate: 0.0,
            stall_secs: (0.001, 0.01),
            corrupt_rate: 0.0,
            corrupt_records: 1,
            dropout_probability: 0.0,
        }
    }
}

/// Fires the first armed burst covering `op`; returns true if one fired.
fn fire_burst(bursts: &mut [Burst], op: u64) -> bool {
    for b in bursts.iter_mut() {
        if op >= b.at && b.remaining > 0 {
            b.remaining -= 1;
            return true;
        }
    }
    false
}

/// Runtime fault state of one drive: the armed plan plus per-channel
/// operation counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    scan_ops: u64,
    kernel_ops: u64,
    transfer_ops: u64,
    completed_ops: u64,
    injected: u64,
    quarantined: u64,
    offline: bool,
}

impl FaultState {
    pub(crate) fn arm(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    pub(crate) fn injected(&self) -> u64 {
        self.injected
    }

    pub(crate) fn is_offline(&self) -> bool {
        self.offline
    }

    pub(crate) fn take_quarantined(&mut self) -> u64 {
        std::mem::take(&mut self.quarantined)
    }

    /// Common entry of every op: dropout transition + offline check.
    fn begin(&mut self) -> Result<(), DeviceError> {
        if !self.offline {
            if let Some(after) = self.plan.dropout_after {
                if self.completed_ops >= after {
                    self.offline = true;
                    self.injected += 1;
                }
            }
        }
        if self.offline {
            return Err(DeviceError::Offline);
        }
        self.completed_ops += 1;
        Ok(())
    }

    /// Gates a scan-channel op (flash read). On success returns how many
    /// of the delivered records are corrupt and must be quarantined.
    pub(crate) fn scan_op(&mut self) -> Result<u64, DeviceError> {
        self.begin()?;
        let op = self.scan_ops;
        self.scan_ops += 1;
        if fire_burst(&mut self.plan.read_errors, op) {
            self.injected += 1;
            return Err(DeviceError::TransientRead { op });
        }
        let mut bad = 0;
        for c in self.plan.corruptions.iter_mut() {
            if op >= c.at && c.records > 0 {
                bad += c.records;
                c.records = 0;
                self.injected += 1;
            }
        }
        self.quarantined += bad;
        Ok(bad)
    }

    /// Gates a kernel-channel op (FPGA kernel launch).
    pub(crate) fn kernel_op(&mut self) -> Result<(), DeviceError> {
        self.begin()?;
        let op = self.kernel_ops;
        self.kernel_ops += 1;
        if fire_burst(&mut self.plan.kernel_aborts, op) {
            self.injected += 1;
            return Err(DeviceError::Kernel(KernelError::Aborted { op }));
        }
        Ok(())
    }

    /// Gates a transfer-channel op (host-link transfer). On success
    /// returns the extra seconds any armed latency spike adds.
    pub(crate) fn transfer_op(&mut self) -> Result<f64, DeviceError> {
        self.begin()?;
        let op = self.transfer_ops;
        self.transfer_ops += 1;
        let mut extra = 0.0;
        for s in self.plan.stalls.iter_mut() {
            if op >= s.at && s.extra_secs > 0.0 {
                extra += s.extra_secs;
                s.extra_secs = 0.0;
                self.injected += 1;
            }
        }
        Ok(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none());
        for _ in 0..10 {
            assert_eq!(st.scan_op(), Ok(0));
            assert_eq!(st.kernel_op(), Ok(()));
            assert_eq!(st.transfer_op(), Ok(0.0));
        }
        assert_eq!(st.injected(), 0);
        assert!(!st.is_offline());
    }

    #[test]
    fn read_error_burst_fails_exactly_n_attempts() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none().with_read_error(1, 2));
        assert_eq!(st.scan_op(), Ok(0));
        assert_eq!(st.scan_op(), Err(DeviceError::TransientRead { op: 1 }));
        assert_eq!(st.scan_op(), Err(DeviceError::TransientRead { op: 2 }));
        assert_eq!(st.scan_op(), Ok(0));
        assert_eq!(st.injected(), 2);
    }

    #[test]
    fn kernel_abort_is_transient_and_indexed() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none().with_kernel_abort(0, 1));
        let err = st.kernel_op().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err, DeviceError::Kernel(KernelError::Aborted { op: 0 }));
        assert_eq!(st.kernel_op(), Ok(()));
    }

    #[test]
    fn stall_fires_once_at_or_after_index() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none().with_pcie_stall(2, 0.25));
        assert_eq!(st.transfer_op(), Ok(0.0));
        assert_eq!(st.transfer_op(), Ok(0.0));
        assert_eq!(st.transfer_op(), Ok(0.25));
        assert_eq!(st.transfer_op(), Ok(0.0));
        assert_eq!(st.injected(), 1);
    }

    #[test]
    fn corruption_quarantines_records_once() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none().with_corrupt_read(0, 7));
        assert_eq!(st.scan_op(), Ok(7));
        assert_eq!(st.scan_op(), Ok(0));
        assert_eq!(st.take_quarantined(), 7);
        assert_eq!(st.take_quarantined(), 0);
    }

    #[test]
    fn dropout_takes_drive_offline_permanently() {
        let mut st = FaultState::default();
        st.arm(FaultPlan::none().with_dropout_after(2));
        assert_eq!(st.scan_op(), Ok(0));
        assert_eq!(st.transfer_op(), Ok(0.0));
        assert_eq!(st.kernel_op(), Err(DeviceError::Offline));
        assert_eq!(st.scan_op(), Err(DeviceError::Offline));
        assert!(st.is_offline());
        assert!(!DeviceError::Offline.is_transient());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let spec = FaultSpec {
            read_error_rate: 0.2,
            kernel_abort_rate: 0.1,
            stall_rate: 0.15,
            corrupt_rate: 0.05,
            dropout_probability: 0.5,
            ..FaultSpec::default()
        };
        let a = FaultPlan::seeded(42, &spec);
        let b = FaultPlan::seeded(42, &spec);
        let c = FaultPlan::seeded(43, &spec);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ for these rates");
        assert!(!a.is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = DeviceError::TransientRead { op: 3 };
        assert!(e.to_string().contains("scan op 3"));
        assert!(DeviceError::Offline.to_string().contains("offline"));
    }
}
