//! PCIe link models.
//!
//! Two data paths matter in the paper (§4.4):
//!
//! * the **host-staged path** — FPGA without direct SSD access stages
//!   through CPU memory at an effective 1.4 GB/s,
//! * the **P2P path** — SSD→FPGA on-board transfers, theoretically 3 GB/s,
//!   observed saturating with record size (Figure 6: 1.46 GB/s at 3 KB
//!   images up to 2.28 GB/s at 126 KB images, batch 128).
//!
//! The model charges each record a fixed DMA/descriptor overhead plus a
//! streaming term, which reproduces the figure's saturation curve: with
//! protocol-efficiency-limited peak `B` and per-record overhead equivalent
//! to `b₀` bytes, effective throughput at record size `b` is
//! `B · b / (b + b₀)`.

/// A PCIe data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Name for reports.
    pub name: &'static str,
    /// Peak achievable bandwidth in bytes/s (protocol efficiency already
    /// applied).
    pub peak_bytes_per_s: f64,
    /// Fixed per-record overhead in seconds (descriptor setup, doorbell,
    /// completion).
    pub per_record_overhead_s: f64,
    /// Fixed per-transfer (per-batch) overhead in seconds.
    pub per_transfer_overhead_s: f64,
}

impl LinkModel {
    /// The on-board SSD↔FPGA peer-to-peer path, calibrated to Figure 6.
    ///
    /// At the paper's batch size of 128: 3 KB records achieve ≈1.46 GB/s
    /// and 126 KB records ≈2.3 GB/s.
    pub fn p2p() -> Self {
        Self {
            name: "p2p",
            peak_bytes_per_s: 2.4e9,
            per_record_overhead_s: 1932.0 / 2.4e9, // ≈0.8 µs ⇒ b₀ ≈ 1.9 KB
            per_transfer_overhead_s: 5e-6,
        }
    }

    /// The conventional host-staged path (effective 1.4 GB/s, paper §4.4).
    pub fn host_staged() -> Self {
        Self {
            name: "host-staged",
            peak_bytes_per_s: 1.4e9,
            per_record_overhead_s: 2.0e-6,
            per_transfer_overhead_s: 2e-5,
        }
    }

    /// FPGA→host link for shipping the selected subset to the GPU and the
    /// quantized weights back (full PCIe Gen3 x4, lightly loaded).
    pub fn fpga_host() -> Self {
        Self {
            name: "fpga-host",
            peak_bytes_per_s: 3.2e9,
            per_record_overhead_s: 0.5e-6,
            per_transfer_overhead_s: 5e-6,
        }
    }

    /// Seconds to move one batch of `records` records of `record_bytes`
    /// each.
    pub fn batch_time_s(&self, records: u64, record_bytes: u64) -> f64 {
        if records == 0 {
            return 0.0;
        }
        let bytes = records as f64 * record_bytes as f64;
        self.per_transfer_overhead_s
            + records as f64 * self.per_record_overhead_s
            + bytes / self.peak_bytes_per_s
    }

    /// Effective throughput in bytes/s for batches of `records` records of
    /// `record_bytes` each (`0.0` for empty batches).
    pub fn effective_bytes_per_s(&self, records: u64, record_bytes: u64) -> f64 {
        let t = self.batch_time_s(records, record_bytes);
        if t == 0.0 {
            return 0.0;
        }
        (records as f64 * record_bytes as f64) / t
    }

    /// Seconds for a single contiguous transfer of `bytes`.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.batch_time_s(1, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_endpoints() {
        // Batch of 128 as in the paper's Figure 6.
        let p2p = LinkModel::p2p();
        let cifar = p2p.effective_bytes_per_s(128, 3_000);
        let imagenet = p2p.effective_bytes_per_s(128, 126_000);
        assert!(
            (1.3e9..1.65e9).contains(&cifar),
            "CIFAR-10 3KB×128: {cifar}"
        );
        assert!(
            (2.1e9..2.45e9).contains(&imagenet),
            "ImageNet-100 126KB×128: {imagenet}"
        );
    }

    #[test]
    fn throughput_rises_with_record_size() {
        let p2p = LinkModel::p2p();
        let sizes = [500u64, 3_000, 12_000, 126_000];
        let mut prev = 0.0;
        for &b in &sizes {
            let t = p2p.effective_bytes_per_s(128, b);
            assert!(t > prev, "throughput not increasing at {b}");
            prev = t;
        }
        assert!(prev < p2p.peak_bytes_per_s);
    }

    #[test]
    fn p2p_beats_host_staged_by_about_2x() {
        // Paper §4.4: "data transfer rates are on average 2.14x faster
        // using the SmartSSD" (3 GB/s theoretical vs 1.4 GB/s effective).
        let p2p = LinkModel::p2p().effective_bytes_per_s(128, 126_000);
        let host = LinkModel::host_staged().effective_bytes_per_s(128, 126_000);
        let ratio = p2p / host;
        assert!((1.5..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn batch_time_additive_in_records() {
        let l = LinkModel::p2p();
        let one = l.batch_time_s(1, 4096) - l.per_transfer_overhead_s;
        let hundred = l.batch_time_s(100, 4096) - l.per_transfer_overhead_s;
        assert!((hundred / one - 100.0).abs() < 1e-6);
    }

    #[test]
    fn empty_batch_is_free() {
        let l = LinkModel::p2p();
        assert_eq!(l.batch_time_s(0, 1000), 0.0);
        assert_eq!(l.effective_bytes_per_s(0, 1000), 0.0);
    }

    #[test]
    fn transfer_time_monotone() {
        let l = LinkModel::fpga_host();
        assert!(l.transfer_time_s(1 << 20) < l.transfer_time_s(1 << 24));
    }
}
