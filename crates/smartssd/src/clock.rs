//! The simulated clock.

use std::fmt;

/// A monotonically-advancing simulated clock with nanosecond resolution.
///
/// Components advance the clock by the duration of each modelled operation;
/// the device-level counters in [`crate::device`] read it to attribute
/// wall-clock time to phases.
///
/// ```
/// use nessa_smartssd::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance_secs(1.5e-3);
/// assert_eq!(clock.now_ns(), 1_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 * 1e-9
    }

    /// Advances by a number of nanoseconds.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self
            .now_ns
            .checked_add(ns)
            .expect("simulated clock overflow");
    }

    /// Advances by a (non-negative, finite) duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn advance_secs(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "clock can only advance forward by a finite duration, got {secs}"
        );
        self.advance_ns((secs * 1e9).round() as u64);
    }

    /// Seconds elapsed since an earlier reading of this clock.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is in the future.
    pub fn since_secs(&self, earlier_ns: u64) -> f64 {
        assert!(earlier_ns <= self.now_ns, "reference time is in the future");
        (self.now_ns - earlier_ns) as f64 * 1e-9
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(10);
        c.advance_secs(1e-6);
        assert_eq!(c.now_ns(), 1010);
        assert!((c.now_secs() - 1.01e-6).abs() < 1e-12);
    }

    #[test]
    fn since_measures_deltas() {
        let mut c = SimClock::new();
        c.advance_ns(500);
        let mark = c.now_ns();
        c.advance_secs(2e-9);
        assert!((c.since_secs(mark) - 2e-9).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "finite duration")]
    fn rejects_negative_advance() {
        SimClock::new().advance_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "future")]
    fn rejects_future_reference() {
        let c = SimClock::new();
        c.since_secs(10);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SimClock::new()).is_empty());
    }
}
