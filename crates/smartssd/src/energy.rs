//! Busy-time × power energy accounting.

use std::fmt;

/// Accumulates energy per named component.
///
/// The paper's energy argument (§2.2) is that the SmartSSD's ~7.5 W FPGA
/// does the selection work that would otherwise occupy a 45–250 W GPU;
/// this meter makes that comparison measurable in experiments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyMeter {
    entries: Vec<(String, f64)>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `power_watts` drawn for `secs` by `component`.
    ///
    /// # Panics
    ///
    /// Panics if either quantity is negative or non-finite.
    pub fn record(&mut self, component: &str, power_watts: f64, secs: f64) {
        assert!(
            power_watts.is_finite() && power_watts >= 0.0,
            "power must be non-negative and finite"
        );
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be non-negative and finite"
        );
        let joules = power_watts * secs;
        if let Some(entry) = self.entries.iter_mut().find(|(name, _)| name == component) {
            entry.1 += joules;
        } else {
            self.entries.push((component.to_string(), joules));
        }
    }

    /// Joules attributed to one component (`0.0` if never recorded).
    pub fn joules_for(&self, component: &str) -> f64 {
        self.entries
            .iter()
            .find(|(name, _)| name == component)
            .map(|(_, j)| *j)
            .unwrap_or(0.0)
    }

    /// Total joules across all components.
    pub fn total_joules(&self) -> f64 {
        self.entries.iter().map(|(_, j)| j).sum()
    }

    /// Per-component breakdown, in recording order.
    pub fn breakdown(&self) -> &[(String, f64)] {
        &self.entries
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "energy: {:.3} J", self.total_joules())?;
        for (name, j) in &self.entries {
            write!(f, " [{name}: {j:.3} J]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component() {
        let mut m = EnergyMeter::new();
        m.record("fpga", 7.5, 2.0);
        m.record("fpga", 7.5, 1.0);
        m.record("gpu", 250.0, 0.1);
        assert!((m.joules_for("fpga") - 22.5).abs() < 1e-9);
        assert!((m.joules_for("gpu") - 25.0).abs() < 1e-9);
        assert!((m.total_joules() - 47.5).abs() < 1e-9);
        assert_eq!(m.breakdown().len(), 2);
    }

    #[test]
    fn unknown_component_is_zero() {
        assert_eq!(EnergyMeter::new().joules_for("nope"), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_duration() {
        EnergyMeter::new().record("x", 1.0, -1.0);
    }

    #[test]
    fn display_nonempty() {
        let mut m = EnergyMeter::new();
        m.record("fpga", 7.5, 1.0);
        assert!(format!("{m}").contains("fpga"));
    }
}
