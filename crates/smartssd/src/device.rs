//! The assembled SmartSSD device.
//!
//! [`SmartSsd`] wires the flash array, the P2P and host links, and the FPGA
//! kernel model to a single simulated clock, and keeps the byte counters
//! from which the paper's data-movement reductions (§4.4: 3.47× average)
//! are computed.

use crate::clock::SimClock;
use crate::energy::EnergyMeter;
use crate::fault::{DeviceError, FaultPlan, FaultState};
use crate::fpga::{FpgaSpec, KernelProfile};
use crate::nand::{NandArray, NandConfig};
use crate::pcie::LinkModel;
use crate::trace::{Phase, Trace, TraceEvent};

/// Power draw of the flash/controller complex while streaming (W).
const SSD_ACTIVE_WATTS: f64 = 9.0;
/// Power draw of the FPGA while the kernel runs (paper §2.2: ~7.5 W).
const FPGA_ACTIVE_WATTS: f64 = 7.5;

/// Device configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSsdConfig {
    /// Flash geometry.
    pub nand: NandConfig,
    /// FPGA capabilities.
    pub fpga: FpgaSpec,
    /// SSD↔FPGA peer-to-peer link.
    pub p2p: LinkModel,
    /// FPGA↔host link.
    pub host: LinkModel,
    /// Conventional (no-P2P) storage→host path for baselines.
    pub host_staged: LinkModel,
}

impl Default for SmartSsdConfig {
    fn default() -> Self {
        Self {
            nand: NandConfig::default(),
            fpga: FpgaSpec::default(),
            p2p: LinkModel::p2p(),
            host: LinkModel::fpga_host(),
            host_staged: LinkModel::host_staged(),
        }
    }
}

/// Byte counters over every data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Bytes moved SSD → FPGA over the P2P link.
    pub ssd_to_fpga: u64,
    /// Bytes moved FPGA → host (selected subsets).
    pub fpga_to_host: u64,
    /// Bytes moved host → FPGA (quantized-weight feedback).
    pub host_to_fpga: u64,
    /// Bytes moved storage → host over the conventional path (baselines).
    pub staged_to_host: u64,
}

impl TrafficStats {
    /// Bytes that crossed the drive-host interconnect (everything except
    /// the on-board P2P traffic).
    pub fn interconnect_bytes(&self) -> u64 {
        self.fpga_to_host + self.host_to_fpga + self.staged_to_host
    }

    /// Total bytes moved anywhere.
    pub fn total_bytes(&self) -> u64 {
        self.ssd_to_fpga + self.interconnect_bytes()
    }
}

/// The simulated drive.
#[derive(Debug, Clone)]
pub struct SmartSsd {
    config: SmartSsdConfig,
    clock: SimClock,
    nand: NandArray,
    traffic: TrafficStats,
    energy: EnergyMeter,
    trace: Trace,
    faults: FaultState,
}

impl SmartSsd {
    /// Creates a device from a configuration.
    pub fn new(config: SmartSsdConfig) -> Self {
        Self {
            config,
            clock: SimClock::new(),
            nand: NandArray::new(config.nand),
            traffic: TrafficStats::default(),
            energy: EnergyMeter::new(),
            trace: Trace::new(),
            faults: FaultState::default(),
        }
    }

    /// Arms a deterministic fault schedule on this drive. Replaces any
    /// previously armed plan; op counters keep running.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults.arm(plan);
    }

    /// Number of faults this drive has injected so far (failed ops,
    /// latency spikes, corruption events, and the dropout transition).
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Whether the drive has dropped off the bus.
    pub fn is_offline(&self) -> bool {
        self.faults.is_offline()
    }

    /// Drains the count of corrupt records delivered since the last call,
    /// so the caller can quarantine them.
    pub fn take_quarantined(&mut self) -> u64 {
        self.faults.take_quarantined()
    }

    /// Charges `secs` of idle backoff to the drive (a [`Phase::Stall`]
    /// trace event) — how the pipeline accounts retry waits on the
    /// simulated clock.
    pub fn stall_for(&mut self, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        self.log(Phase::Stall, secs, 0);
        self.clock.advance_secs(secs);
    }

    /// The device configuration.
    pub fn config(&self) -> &SmartSsdConfig {
        &self.config
    }

    /// Simulated seconds elapsed since construction.
    pub fn elapsed_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// The traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// The energy meter.
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// The phase-level event timeline.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn log(&mut self, phase: Phase, duration_s: f64, bytes: u64) {
        self.trace.record(TraceEvent {
            phase,
            start_s: self.clock.now_secs(),
            duration_s,
            bytes,
        });
    }

    /// Streams `records × record_bytes` from flash to the FPGA over the
    /// P2P link (flash read and link transfer are pipelined: the phase
    /// costs the slower of the two). Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TransientRead`] when an armed read-error
    /// burst fires (retryable), or [`DeviceError::Offline`] after a drive
    /// dropout. Failed attempts cost no simulated time.
    pub fn read_records_to_fpga(
        &mut self,
        records: u64,
        record_bytes: u64,
    ) -> Result<f64, DeviceError> {
        self.faults.scan_op()?;
        let bytes = records * record_bytes;
        let flash = self.nand.read(bytes);
        let link = self.config.p2p.batch_time_s(records, record_bytes);
        let t = flash.max(link);
        self.traffic.ssd_to_fpga += bytes;
        self.energy.record("ssd", SSD_ACTIVE_WATTS, t);
        self.log(Phase::Scan, t, bytes);
        self.clock.advance_secs(t);
        Ok(t)
    }

    /// Runs the selection kernel on the FPGA. Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Kernel`] with
    /// [`KernelError::ChunkTooLarge`](crate::KernelError::ChunkTooLarge)
    /// when the profile's chunk does not fit the FPGA's on-chip memory —
    /// the caller must re-partition (paper §3.2.3) — or
    /// [`KernelError::Aborted`](crate::KernelError::Aborted) when an armed
    /// kernel fault fires (retryable). Failed launches cost no simulated
    /// time.
    pub fn run_selection(&mut self, profile: &KernelProfile) -> Result<f64, DeviceError> {
        self.faults.kernel_op()?;
        let t = profile.execute_time_s(&self.config.fpga)?;
        self.energy.record("fpga", FPGA_ACTIVE_WATTS, t);
        self.log(Phase::Select, t, 0);
        self.clock.advance_secs(t);
        Ok(t)
    }

    /// Ships the selected subset to the host/GPU. Returns the phase's
    /// seconds (including any injected PCIe latency spike).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Offline`] after a drive dropout.
    pub fn send_subset_to_host(
        &mut self,
        records: u64,
        record_bytes: u64,
    ) -> Result<f64, DeviceError> {
        let extra = self.faults.transfer_op()?;
        let bytes = records * record_bytes;
        let t = self.config.host.batch_time_s(records, record_bytes) + extra;
        self.traffic.fpga_to_host += bytes;
        self.energy.record("link", 2.0, t);
        self.log(Phase::Ship, t, bytes);
        self.clock.advance_secs(t);
        Ok(t)
    }

    /// Receives the quantized-weight feedback from the host (paper
    /// §3.2.1). Returns the phase's seconds (including any injected PCIe
    /// latency spike).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Offline`] after a drive dropout.
    pub fn receive_feedback(&mut self, bytes: u64) -> Result<f64, DeviceError> {
        let extra = self.faults.transfer_op()?;
        let t = self.config.host.transfer_time_s(bytes) + extra;
        self.traffic.host_to_fpga += bytes;
        self.energy.record("link", 2.0, t);
        self.log(Phase::Feedback, t, bytes);
        self.clock.advance_secs(t);
        Ok(t)
    }

    /// Installs a dataset onto the drive: the records stream in over the
    /// host link and are programmed to flash (pipelined; the phase costs
    /// the slower of the two). A one-time cost before training starts.
    /// Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Offline`] after a drive dropout.
    pub fn install_dataset(&mut self, records: u64, record_bytes: u64) -> Result<f64, DeviceError> {
        let extra = self.faults.transfer_op()?;
        let bytes = records * record_bytes;
        let link = self.config.host.batch_time_s(records, record_bytes);
        let flash = self.nand.program(bytes);
        let t = flash.max(link) + extra;
        self.traffic.host_to_fpga += bytes;
        self.energy.record("ssd", SSD_ACTIVE_WATTS, t);
        self.log(Phase::Install, t, bytes);
        self.clock.advance_secs(t);
        Ok(t)
    }

    /// Baseline path: reads records from flash and stages them through the
    /// host at the conventional effective bandwidth (paper §4.4:
    /// 1.4 GB/s). Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::TransientRead`] when an armed read-error
    /// burst fires (retryable), or [`DeviceError::Offline`] after a drive
    /// dropout. Failed attempts cost no simulated time.
    pub fn conventional_read_to_host(
        &mut self,
        records: u64,
        record_bytes: u64,
    ) -> Result<f64, DeviceError> {
        self.faults.scan_op()?;
        let bytes = records * record_bytes;
        let flash = self.nand.read(bytes);
        let link = self.config.host_staged.batch_time_s(records, record_bytes);
        let t = flash.max(link);
        self.traffic.staged_to_host += bytes;
        self.energy.record("ssd", SSD_ACTIVE_WATTS, t);
        self.log(Phase::StagedRead, t, bytes);
        self.clock.advance_secs(t);
        Ok(t)
    }
}

impl Default for SmartSsd {
    fn default() -> Self {
        Self::new(SmartSsdConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cifar_profile() -> KernelProfile {
        KernelProfile {
            samples: 50_000,
            forward_macs_per_sample: 41_000_000,
            proxy_dim: 10,
            chunk: 457,
            k_per_chunk: 128,
        }
    }

    #[test]
    fn clock_advances_through_phases() {
        let mut dev = SmartSsd::default();
        assert_eq!(dev.elapsed_secs(), 0.0);
        let t1 = dev.read_records_to_fpga(1000, 3000).unwrap();
        let t2 = dev.run_selection(&cifar_profile()).unwrap();
        let t3 = dev.send_subset_to_host(280, 3000).unwrap();
        let t4 = dev.receive_feedback(280_000).unwrap();
        let total = dev.elapsed_secs();
        assert!((total - (t1 + t2 + t3 + t4)).abs() < 1e-9);
        assert!(total > 0.0);
    }

    #[test]
    fn traffic_counters_are_exact() {
        let mut dev = SmartSsd::default();
        dev.read_records_to_fpga(100, 1000).unwrap();
        dev.send_subset_to_host(30, 1000).unwrap();
        dev.receive_feedback(5000).unwrap();
        dev.conventional_read_to_host(10, 1000).unwrap();
        let t = dev.traffic();
        assert_eq!(t.ssd_to_fpga, 100_000);
        assert_eq!(t.fpga_to_host, 30_000);
        assert_eq!(t.host_to_fpga, 5_000);
        assert_eq!(t.staged_to_host, 10_000);
        assert_eq!(t.interconnect_bytes(), 45_000);
        assert_eq!(t.total_bytes(), 145_000);
    }

    #[test]
    fn near_storage_selection_reduces_interconnect_traffic() {
        // NeSSA path: full dataset stays on-board; only the subset crosses.
        let records = 50_000u64;
        let bytes = 3_000u64;
        let subset = records * 28 / 100;
        let mut nessa = SmartSsd::default();
        nessa.read_records_to_fpga(records, bytes).unwrap();
        nessa.send_subset_to_host(subset, bytes).unwrap();
        // Baseline: the full dataset crosses to the host.
        let mut base = SmartSsd::default();
        base.conventional_read_to_host(records, bytes).unwrap();
        let reduction = base.traffic().interconnect_bytes() as f64
            / nessa.traffic().interconnect_bytes() as f64;
        assert!(
            (3.0..4.0).contains(&reduction),
            "interconnect reduction {reduction}"
        );
    }

    #[test]
    fn p2p_read_is_faster_than_staged() {
        let mut a = SmartSsd::default();
        let mut b = SmartSsd::default();
        let tp = a.read_records_to_fpga(10_000, 126_000).unwrap();
        let th = b.conventional_read_to_host(10_000, 126_000).unwrap();
        assert!(th / tp > 1.5, "p2p {tp}s vs staged {th}s");
    }

    #[test]
    fn oversized_kernel_is_rejected_and_costs_nothing() {
        let mut dev = SmartSsd::default();
        let bad = KernelProfile {
            chunk: 10_000,
            ..cifar_profile()
        };
        assert!(dev.run_selection(&bad).is_err());
        assert_eq!(dev.elapsed_secs(), 0.0);
    }

    #[test]
    fn dataset_install_is_one_time_flash_bound_cost() {
        let mut dev = SmartSsd::default();
        let t_install = dev.install_dataset(50_000, 3_000).unwrap();
        // Installing is slower than scanning the same data back out
        // (t_PROG ≫ t_R), but still a bounded one-time cost.
        let t_scan = dev.read_records_to_fpga(50_000, 3_000).unwrap();
        assert!(t_install > t_scan, "install {t_install} !> scan {t_scan}");
        assert!(t_install < 60.0, "install unreasonably slow: {t_install}");
    }

    #[test]
    fn trace_records_every_phase() {
        use crate::trace::Phase;
        let mut dev = SmartSsd::default();
        let t1 = dev.read_records_to_fpga(1000, 3000).unwrap();
        let t2 = dev.run_selection(&cifar_profile()).unwrap();
        let t3 = dev.send_subset_to_host(280, 3000).unwrap();
        let t4 = dev.receive_feedback(280_000).unwrap();
        let trace = dev.trace();
        assert_eq!(trace.len(), 4);
        assert!((trace.total_for(Phase::Scan) - t1).abs() < 1e-12);
        assert!((trace.total_for(Phase::Select) - t2).abs() < 1e-12);
        assert!((trace.total_for(Phase::Ship) - t3).abs() < 1e-12);
        assert!((trace.total_for(Phase::Feedback) - t4).abs() < 1e-12);
        assert_eq!(trace.bytes_for(Phase::Scan), 3_000_000);
        // Events tile the timeline: span equals the clock.
        assert!((trace.span_s() - dev.elapsed_secs()).abs() < 1e-9);
    }

    #[test]
    fn energy_attributes_fpga_work() {
        let mut dev = SmartSsd::default();
        let t = dev.run_selection(&cifar_profile()).unwrap();
        let j = dev.energy().joules_for("fpga");
        assert!((j - 7.5 * t).abs() < 1e-9);
    }
}
