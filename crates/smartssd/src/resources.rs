//! FPGA resource estimation — the model behind the paper's Table 4.
//!
//! The estimator composes the selection kernel out of four blocks — the
//! int8 MAC array, the distance/similarity datapath, the greedy
//! facility-location engine, and the platform shell (DMA engines, P2P
//! bridge, control) — each with per-unit LUT/FF/BRAM/DSP footprints typical
//! of synthesized UltraScale+ designs. With the default CIFAR-10 kernel
//! configuration the totals land on the paper's reported utilization
//! (LUT 67.53 %, FF 23.14 %, BRAM 50.30 %, DSP 42.67 % of the KU15P
//! budget).

use std::fmt;
use std::ops::Add;

/// A bundle of FPGA resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// BRAM36 blocks.
    pub bram: u64,
    /// DSP slices.
    pub dsp: u64,
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;

    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram: self.bram + rhs.bram,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

/// The KU15P budget as printed in the paper's Table 4 ("Available").
pub const KU15P_AVAILABLE: ResourceUsage = ResourceUsage {
    lut: 432_000,
    ff: 919_000,
    bram: 738,
    dsp: 1962,
};

/// Bytes per BRAM36 block (36 Kbit).
pub const BRAM_BLOCK_BYTES: u64 = 4608;

/// Parameters of the synthesized selection kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelResourceConfig {
    /// Int8 MAC units in the array.
    pub mac_units: u64,
    /// Gradient-proxy dimensionality.
    pub proxy_dim: u64,
    /// Partition chunk size (§3.2.3).
    pub chunk: u64,
    /// Bytes of quantized selector-model weights cached on chip.
    pub weight_bytes: u64,
    /// Bytes of activation double-buffers for the forward pass.
    pub activation_bytes: u64,
}

impl KernelResourceConfig {
    /// The CIFAR-10 / ResNet-20 configuration the paper synthesized
    /// (Table 4): 837 MACs, 10-dimensional proxies, ~457-sample chunks,
    /// an int8 ResNet-20 (~0.27 M parameters) on chip.
    pub fn cifar10() -> Self {
        Self {
            mac_units: 837,
            proxy_dim: 10,
            chunk: 457,
            weight_bytes: 272_000,
            activation_bytes: 2 * 131_072,
        }
    }
}

impl Default for KernelResourceConfig {
    fn default() -> Self {
        Self::cifar10()
    }
}

fn bram_blocks(bytes: u64) -> u64 {
    bytes.div_ceil(BRAM_BLOCK_BYTES)
}

/// Estimates the kernel's resource usage, block by block.
pub fn selection_kernel_usage(cfg: &KernelResourceConfig) -> ResourceUsage {
    // Int8 MAC array: one DSP per MAC plus operand routing/registering.
    let mac_array = ResourceUsage {
        lut: 80 * cfg.mac_units,
        ff: 120 * cfg.mac_units,
        bram: bram_blocks(cfg.weight_bytes) + bram_blocks(cfg.activation_bytes),
        dsp: cfg.mac_units,
    };
    // Distance/similarity datapath: subtract-square-accumulate trees over
    // proxy_dim lanes plus the on-chip similarity tile.
    let distance = ResourceUsage {
        lut: 40_000 + 100 * cfg.proxy_dim,
        ff: 24_000 + 60 * cfg.proxy_dim,
        bram: bram_blocks(4 * cfg.chunk * cfg.chunk),
        dsp: 0,
    };
    // Greedy engine: comparator bank, gain accumulators, lazy-heap state
    // (heap nodes + per-candidate bookkeeping dominate its BRAM).
    let greedy = ResourceUsage {
        lut: 128_000,
        ff: 44_000,
        bram: bram_blocks(16 * cfg.chunk) + 30,
        dsp: 0,
    };
    // Platform shell: P2P bridge, DMA engines, AXI interconnect, control.
    let shell = ResourceUsage {
        lut: 55_000,
        ff: 43_000,
        bram: 40,
        dsp: 0,
    };
    mac_array + distance + greedy + shell
}

/// A usage report against a budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// Resources consumed.
    pub used: ResourceUsage,
    /// Resources available.
    pub available: ResourceUsage,
}

impl ResourceReport {
    /// Builds a report for a kernel configuration on the KU15P.
    pub fn for_kernel(cfg: &KernelResourceConfig) -> Self {
        Self {
            used: selection_kernel_usage(cfg),
            available: KU15P_AVAILABLE,
        }
    }

    /// Utilization percentages `(lut, ff, bram, dsp)`.
    pub fn utilization_pct(&self) -> (f64, f64, f64, f64) {
        let pct = |u: u64, a: u64| 100.0 * u as f64 / a as f64;
        (
            pct(self.used.lut, self.available.lut),
            pct(self.used.ff, self.available.ff),
            pct(self.used.bram, self.available.bram),
            pct(self.used.dsp, self.available.dsp),
        )
    }

    /// True when every resource fits its budget.
    pub fn fits(&self) -> bool {
        self.used.lut <= self.available.lut
            && self.used.ff <= self.available.ff
            && self.used.bram <= self.available.bram
            && self.used.dsp <= self.available.dsp
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lut, ff, bram, dsp) = self.utilization_pct();
        writeln!(
            f,
            "{:<10} {:>10} {:>10}",
            "Resource", "Available", "Util (%)"
        )?;
        writeln!(f, "{:<10} {:>10} {:>10.2}", "LUT", self.available.lut, lut)?;
        writeln!(f, "{:<10} {:>10} {:>10.2}", "FF", self.available.ff, ff)?;
        writeln!(
            f,
            "{:<10} {:>10} {:>10.2}",
            "BRAM", self.available.bram, bram
        )?;
        write!(f, "{:<10} {:>10} {:>10.2}", "DSP", self.available.dsp, dsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar10_config_matches_table4() {
        let report = ResourceReport::for_kernel(&KernelResourceConfig::cifar10());
        let (lut, ff, bram, dsp) = report.utilization_pct();
        assert!((lut - 67.53).abs() < 5.0, "LUT {lut}%");
        assert!((ff - 23.14).abs() < 5.0, "FF {ff}%");
        assert!((bram - 50.30).abs() < 5.0, "BRAM {bram}%");
        assert!((dsp - 42.67).abs() < 2.0, "DSP {dsp}%");
        assert!(report.fits());
    }

    #[test]
    fn usage_scales_with_mac_array() {
        let small = selection_kernel_usage(&KernelResourceConfig {
            mac_units: 100,
            ..KernelResourceConfig::cifar10()
        });
        let big = selection_kernel_usage(&KernelResourceConfig::cifar10());
        assert!(big.dsp > small.dsp);
        assert!(big.lut > small.lut);
    }

    #[test]
    fn bigger_chunks_need_more_bram() {
        let base = selection_kernel_usage(&KernelResourceConfig::cifar10());
        let big = selection_kernel_usage(&KernelResourceConfig {
            chunk: 900,
            ..KernelResourceConfig::cifar10()
        });
        assert!(big.bram > base.bram);
    }

    #[test]
    fn over_budget_detected() {
        let report = ResourceReport {
            used: ResourceUsage {
                lut: 500_000,
                ff: 0,
                bram: 0,
                dsp: 0,
            },
            available: KU15P_AVAILABLE,
        };
        assert!(!report.fits());
    }

    #[test]
    fn usage_addition() {
        let a = ResourceUsage {
            lut: 1,
            ff: 2,
            bram: 3,
            dsp: 4,
        };
        let b = ResourceUsage {
            lut: 10,
            ff: 20,
            bram: 30,
            dsp: 40,
        };
        assert_eq!(
            a + b,
            ResourceUsage {
                lut: 11,
                ff: 22,
                bram: 33,
                dsp: 44
            }
        );
    }

    #[test]
    fn report_display_prints_table() {
        let report = ResourceReport::for_kernel(&KernelResourceConfig::default());
        let s = format!("{report}");
        assert!(s.contains("LUT"));
        assert!(s.contains("DSP"));
        assert!(s.contains("432000"));
    }
}
