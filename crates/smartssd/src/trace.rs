//! Phase-level event tracing for the simulated device.
//!
//! Every [`SmartSsd`](crate::SmartSsd) phase can be recorded as a
//! [`TraceEvent`] with its start time, duration, and bytes moved; the
//! [`Trace`] renders a human-readable timeline and computes per-phase
//! aggregates — the raw material for Figure-4-style time breakdowns.

use std::fmt;

/// The kind of device phase an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Flash → FPGA P2P scan.
    Scan,
    /// FPGA selection kernel execution.
    Select,
    /// FPGA → host subset transfer.
    Ship,
    /// Host → FPGA quantized-weight feedback.
    Feedback,
    /// Storage → host conventional (baseline) read.
    StagedRead,
    /// Host → flash dataset installation (one-time programming).
    Install,
    /// Idle backoff charged to the drive while the pipeline waits to
    /// retry a failed operation.
    Stall,
}

impl Phase {
    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Scan => "scan",
            Phase::Select => "select",
            Phase::Ship => "ship",
            Phase::Feedback => "feedback",
            Phase::StagedRead => "staged-read",
            Phase::Install => "install",
            Phase::Stall => "stall",
        }
    }
}

/// One recorded phase execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Phase kind.
    pub phase: Phase,
    /// Simulated start time in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
    /// Bytes moved during the phase (0 for pure compute).
    pub bytes: u64,
}

/// An append-only log of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if the event's times are negative or non-finite.
    pub fn record(&mut self, event: TraceEvent) {
        assert!(
            event.start_s.is_finite() && event.start_s >= 0.0,
            "event start must be non-negative and finite"
        );
        assert!(
            event.duration_s.is_finite() && event.duration_s >= 0.0,
            "event duration must be non-negative and finite"
        );
        self.events.push(event);
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Discards all recorded events (the clock is unaffected). Useful for
    /// re-using a device across runs, or for draining events after
    /// bridging them into another telemetry stream.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total seconds attributed to a phase.
    pub fn total_for(&self, phase: Phase) -> f64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.duration_s)
            .sum()
    }

    /// Total bytes attributed to a phase.
    pub fn bytes_for(&self, phase: Phase) -> u64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.bytes)
            .sum()
    }

    /// End time of the last event (`0.0` when empty).
    pub fn span_s(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.start_s + e.duration_s)
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timeline ({} events, span {:.4}s):",
            self.len(),
            self.span_s()
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  [{:>10.4}s +{:>9.4}s] {:<12} {:>12} B",
                e.start_s,
                e.duration_s,
                e.phase.label(),
                e.bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(phase: Phase, start: f64, dur: f64, bytes: u64) -> TraceEvent {
        TraceEvent {
            phase,
            start_s: start,
            duration_s: dur,
            bytes,
        }
    }

    #[test]
    fn aggregates_per_phase() {
        let mut t = Trace::new();
        t.record(ev(Phase::Scan, 0.0, 1.0, 100));
        t.record(ev(Phase::Select, 1.0, 0.5, 0));
        t.record(ev(Phase::Scan, 1.5, 2.0, 200));
        assert_eq!(t.len(), 3);
        assert!((t.total_for(Phase::Scan) - 3.0).abs() < 1e-12);
        assert_eq!(t.bytes_for(Phase::Scan), 300);
        assert_eq!(t.bytes_for(Phase::Feedback), 0);
        assert!((t.span_s() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.span_s(), 0.0);
        assert_eq!(t.total_for(Phase::Ship), 0.0);
    }

    #[test]
    fn clear_discards_events() {
        let mut t = Trace::new();
        t.record(ev(Phase::Scan, 0.0, 1.0, 10));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t, Trace::default());
    }

    #[test]
    fn display_lists_events() {
        let mut t = Trace::new();
        t.record(ev(Phase::Feedback, 0.0, 0.1, 42));
        let s = format!("{t}");
        assert!(s.contains("feedback"));
        assert!(s.contains("42"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_duration() {
        Trace::new().record(ev(Phase::Scan, 0.0, -1.0, 0));
    }
}
