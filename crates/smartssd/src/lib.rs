//! A discrete-event simulator of the Samsung SmartSSD computational
//! storage drive.
//!
//! The paper's hardware platform is a U.2 SmartSSD: a Xilinx (AMD) Kintex
//! KU15P FPGA with 4 GB DRAM attached to 3.84 TB of NAND flash over a
//! PCIe peer-to-peer connection (paper §2.2). No SDK or device is available
//! here, so this crate rebuilds the pieces whose behaviour the paper
//! measures:
//!
//! * [`clock`] — the simulated nanosecond clock every component advances,
//! * [`nand`] — the flash array (channel-interleaved page reads),
//! * [`pcie`] — link models for the host-staged path (~1.4 GB/s effective)
//!   and the on-board P2P path (up to 3 GB/s, saturating with record size
//!   exactly as the paper's Figure 6 reports),
//! * [`fpga`] — the selection-kernel compute model bound by the KU15P's
//!   clock, DSP count and 4.32 MB on-chip memory,
//! * [`resources`] — the LUT/FF/BRAM/DSP estimator behind Table 4,
//! * [`energy`] — busy-time × power accounting,
//! * [`device`] — the assembled drive with end-to-end transfer and
//!   byte/time/energy counters,
//! * [`cluster`] — multi-drive sharding (the paper's future-work scaling),
//! * [`fault`] — deterministic fault injection: seeded schedules of NAND
//!   read errors, kernel aborts, PCIe stalls, record corruption and
//!   whole-drive dropout.
//!
//! Everything is deterministic: the same call sequence produces the same
//! simulated timeline — fault schedules included.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod device;
pub mod energy;
pub mod fault;
pub mod fpga;
pub mod ftl;
pub mod nand;
pub mod pcie;
pub mod resources;
pub mod trace;

pub use clock::SimClock;
pub use cluster::{ClusterError, SsdCluster};
pub use device::{SmartSsd, SmartSsdConfig, TrafficStats};
pub use fault::{DeviceError, FaultPlan, FaultSpec};
pub use fpga::{FpgaSpec, KernelError, KernelProfile};
pub use pcie::LinkModel;
pub use resources::{ResourceReport, ResourceUsage};
pub use trace::{Phase, Trace, TraceEvent};
