//! The FPGA selection-kernel compute model.
//!
//! The KU15P runs NeSSA's selection kernel: an int8 forward pass of the
//! quantized selector model over every candidate (producing gradient
//! proxies), a pairwise-similarity computation within each chunk, and the
//! greedy facility-location sweep. This module prices those phases in
//! cycles against the FPGA's clock, DSP-backed MAC array, and 4.32 MB
//! on-chip memory (whose capacity forces the paper's §3.2.3 partitioning).

use std::fmt;

/// Static capabilities of the FPGA platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaSpec {
    /// Kernel clock in Hz.
    pub clock_hz: f64,
    /// Total DSP slices on the device.
    pub dsp_slices: usize,
    /// Int8 MAC units instantiated by the kernel (≤ `dsp_slices`).
    pub mac_units: usize,
    /// Parallel comparators in the greedy/argmax stage.
    pub comparators: usize,
    /// On-chip memory in bytes (paper §3.2.3: 4.32 MB).
    pub onchip_bytes: usize,
    /// On-board DRAM in bytes (paper §2.2: 4 GB).
    pub dram_bytes: u64,
}

impl Default for FpgaSpec {
    fn default() -> Self {
        Self {
            clock_hz: 300e6,
            dsp_slices: 1962,
            mac_units: 837, // Table 4: 42.67 % DSP utilization
            comparators: 256,
            onchip_bytes: 4_320_000,
            dram_bytes: 4_000_000_000,
        }
    }
}

/// One epoch's selection workload, as dispatched to the kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Candidate samples scanned this epoch.
    pub samples: u64,
    /// MACs per sample for the quantized forward pass of the selector
    /// model.
    pub forward_macs_per_sample: u64,
    /// Gradient-proxy dimensionality (class count for last-layer proxies).
    pub proxy_dim: usize,
    /// Chunk size after §3.2.3 partitioning (candidates per chunk).
    pub chunk: usize,
    /// Medoids selected per chunk.
    pub k_per_chunk: usize,
}

/// Why a kernel cannot run (or did not finish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelError {
    /// The chunk's working set exceeds on-chip memory; re-partition with a
    /// smaller chunk.
    ChunkTooLarge {
        /// Bytes the chunk needs.
        required: usize,
        /// Bytes available on chip.
        available: usize,
    },
    /// The kernel launched but aborted mid-flight (injected by a
    /// [`FaultPlan`](crate::FaultPlan)). Retryable: nothing is wrong with
    /// the profile itself.
    Aborted {
        /// Kernel-channel operation index at which the abort fired.
        op: u64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ChunkTooLarge { required, available } => write!(
                f,
                "selection chunk needs {required} bytes of on-chip memory but only {available} are available"
            ),
            KernelError::Aborted { op } => {
                write!(f, "selection kernel aborted mid-flight (kernel op {op})")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl KernelProfile {
    /// On-chip working set of one chunk: int8 proxy rows (double-buffered),
    /// an f32 similarity tile, and greedy coverage/gain state.
    pub fn chunk_onchip_bytes(&self) -> usize {
        let proxies = 2 * self.chunk * self.proxy_dim; // int8, double-buffered
        let sim_tile = 4 * self.chunk * self.chunk; // f32
        let greedy_state = 12 * self.chunk; // coverage + gain + flags
        proxies + sim_tile + greedy_state
    }

    /// Verifies the chunk fits on chip.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ChunkTooLarge`] when it does not.
    pub fn check_fit(&self, spec: &FpgaSpec) -> Result<(), KernelError> {
        let required = self.chunk_onchip_bytes();
        if required > spec.onchip_bytes {
            Err(KernelError::ChunkTooLarge {
                required,
                available: spec.onchip_bytes,
            })
        } else {
            Ok(())
        }
    }

    /// Largest chunk that fits a spec's on-chip memory for this profile's
    /// proxy dimension (the bound that drives §3.2.3 partitioning).
    pub fn max_chunk_for(spec: &FpgaSpec, proxy_dim: usize) -> usize {
        // Solve 4c² + (2·proxy_dim + 12)c ≤ onchip.
        let a = 4.0f64;
        let b = (2 * proxy_dim + 12) as f64;
        let c = -(spec.onchip_bytes as f64);
        (((-b + (b * b - 4.0 * a * c).sqrt()) / (2.0 * a)).floor() as usize).max(1)
    }

    /// Seconds for the quantized forward pass over all samples.
    pub fn forward_time_s(&self, spec: &FpgaSpec) -> f64 {
        let total_macs = self.samples as f64 * self.forward_macs_per_sample as f64;
        total_macs / (spec.mac_units as f64 * spec.clock_hz)
    }

    /// Seconds for pairwise similarities (each chunk needs
    /// `chunk²/2 · proxy_dim` MACs).
    pub fn similarity_time_s(&self, spec: &FpgaSpec) -> f64 {
        if self.chunk == 0 {
            return 0.0;
        }
        let chunks = (self.samples as f64 / self.chunk as f64).ceil();
        let macs_per_chunk = 0.5 * self.chunk as f64 * self.chunk as f64 * self.proxy_dim as f64;
        chunks * macs_per_chunk / (spec.mac_units as f64 * spec.clock_hz)
    }

    /// Seconds for the greedy facility-location sweep
    /// (`k · chunk` max/compare operations per chunk, on the comparator
    /// bank).
    pub fn greedy_time_s(&self, spec: &FpgaSpec) -> f64 {
        if self.chunk == 0 {
            return 0.0;
        }
        let chunks = (self.samples as f64 / self.chunk as f64).ceil();
        let compares_per_chunk = self.k_per_chunk as f64 * self.chunk as f64 * self.chunk as f64;
        chunks * compares_per_chunk / (spec.comparators as f64 * spec.clock_hz)
    }

    /// Total kernel seconds for the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ChunkTooLarge`] if the chunk does not fit on
    /// chip.
    pub fn execute_time_s(&self, spec: &FpgaSpec) -> Result<f64, KernelError> {
        self.check_fit(spec)?;
        Ok(self.forward_time_s(spec) + self.similarity_time_s(spec) + self.greedy_time_s(spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cifar_profile() -> KernelProfile {
        KernelProfile {
            samples: 50_000,
            forward_macs_per_sample: 41_000_000, // quantized ResNet-20
            proxy_dim: 10,
            chunk: 457,
            k_per_chunk: 128,
        }
    }

    #[test]
    fn cifar_chunk_fits_onchip() {
        let p = cifar_profile();
        let spec = FpgaSpec::default();
        assert!(p.check_fit(&spec).is_ok());
        assert!(p.chunk_onchip_bytes() < spec.onchip_bytes);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let mut p = cifar_profile();
        p.chunk = 5_000; // 4·25M = 100 MB similarity tile
        let err = p.check_fit(&FpgaSpec::default()).unwrap_err();
        assert!(matches!(err, KernelError::ChunkTooLarge { .. }));
        assert!(!format!("{err}").is_empty());
        assert!(p.execute_time_s(&FpgaSpec::default()).is_err());
    }

    #[test]
    fn max_chunk_is_tight() {
        let spec = FpgaSpec::default();
        let max = KernelProfile::max_chunk_for(&spec, 10);
        let fits = KernelProfile {
            chunk: max,
            ..cifar_profile()
        };
        let too_big = KernelProfile {
            chunk: max + 1,
            ..cifar_profile()
        };
        assert!(fits.check_fit(&spec).is_ok());
        assert!(too_big.check_fit(&spec).is_err());
        // 4.32 MB / 4 bytes ≈ 1000² tile: max chunk should be ~1000.
        assert!((900..1100).contains(&max), "max chunk {max}");
    }

    #[test]
    fn epoch_selection_is_subsecond_scale() {
        // The whole point of the FPGA kernel: selection must be much
        // cheaper than an epoch of GPU training (paper Fig. 4 shows the
        // NeSSA bar close to the subset-only training bar).
        let t = cifar_profile()
            .execute_time_s(&FpgaSpec::default())
            .unwrap();
        assert!(t > 0.1, "selection cannot be free: {t}");
        assert!(t < 30.0, "selection too slow: {t}");
    }

    #[test]
    fn forward_dominates_for_deep_selectors() {
        let p = cifar_profile();
        let spec = FpgaSpec::default();
        assert!(p.forward_time_s(&spec) > p.similarity_time_s(&spec));
    }

    #[test]
    fn times_scale_with_samples() {
        let spec = FpgaSpec::default();
        let half = KernelProfile {
            samples: 25_000,
            ..cifar_profile()
        };
        let full = cifar_profile();
        let r = full.execute_time_s(&spec).unwrap() / half.execute_time_s(&spec).unwrap();
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn zero_chunk_profile_is_degenerate_but_safe() {
        let p = KernelProfile {
            samples: 0,
            forward_macs_per_sample: 0,
            proxy_dim: 10,
            chunk: 0,
            k_per_chunk: 0,
        };
        assert_eq!(p.execute_time_s(&FpgaSpec::default()).unwrap(), 0.0);
    }
}
