//! A page-level flash translation layer (FTL).
//!
//! The drive exposes a logical page space; the FTL maps it onto physical
//! pages striped across channels and dies, tracks per-page read counts
//! (read-disturb wear), and prices access patterns: a *sequential* run of
//! logical pages hits all channels in parallel, while a *random* scatter
//! of single pages pays per-page sense latency with little interleaving —
//! the read-amplification that makes NeSSA's sequential candidate-pool
//! scans the right access pattern for near-storage selection.

use crate::nand::NandConfig;

/// Page-level FTL state over a [`NandConfig`] geometry.
#[derive(Debug, Clone)]
pub struct Ftl {
    config: NandConfig,
    /// Logical page → physical page. Identity at format time; remap on
    /// wear-leveling moves.
    map: Vec<u32>,
    /// Read count per physical page (read-disturb proxy).
    read_counts: Vec<u32>,
    /// Total logical pages exposed.
    pages: usize,
}

impl Ftl {
    /// Formats an FTL exposing `pages` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or exceeds the device capacity, or does
    /// not fit in a `u32` page index.
    pub fn format(config: NandConfig, pages: usize) -> Self {
        assert!(pages > 0, "need at least one page");
        let logical_bytes = (pages as u64).checked_mul(config.page_bytes as u64);
        assert!(
            logical_bytes.is_some_and(|b| b <= config.capacity_bytes),
            "logical space exceeds device capacity"
        );
        assert!(u32::try_from(pages).is_ok(), "page index must fit in u32");
        Self {
            config,
            map: (0..pages as u32).collect(),
            read_counts: vec![0; pages],
            pages,
        }
    }

    /// Number of logical pages.
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Physical page backing a logical page.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn physical_of(&self, logical: usize) -> u32 {
        self.map[logical]
    }

    /// The channel a physical page lives on (pages are striped round-robin
    /// across channels).
    pub fn channel_of(&self, physical: u32) -> usize {
        physical as usize % self.config.channels
    }

    /// Reads a run of logical pages, updating wear counters, and returns
    /// the modelled seconds.
    ///
    /// Timing: each channel serializes its own pages; channels run in
    /// parallel. A page costs `t_R` (amortized over the channel's dies for
    /// back-to-back reads) plus its bus transfer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the logical space.
    pub fn read_pages(&mut self, first: usize, count: usize) -> f64 {
        assert!(first + count <= self.pages, "read beyond logical space");
        if count == 0 {
            return 0.0;
        }
        let mut per_channel = vec![0u32; self.config.channels];
        for logical in first..first + count {
            let phys = self.map[logical];
            self.read_counts[phys as usize] += 1;
            per_channel[self.channel_of(phys)] += 1;
        }
        self.time_for(&per_channel)
    }

    /// Reads an arbitrary set of logical pages (the random-access pattern
    /// a host-side sampler would generate), returning modelled seconds.
    ///
    /// # Panics
    ///
    /// Panics if any page is out of range.
    pub fn read_scattered(&mut self, logical_pages: &[usize]) -> f64 {
        let mut per_channel = vec![0u32; self.config.channels];
        for &logical in logical_pages {
            assert!(logical < self.pages, "page {logical} out of range");
            let phys = self.map[logical];
            self.read_counts[phys as usize] += 1;
            per_channel[self.channel_of(phys)] += 1;
        }
        // Scattered reads cannot amortize sensing across a die pipeline:
        // every page pays the full t_R on its channel.
        let xfer = self.config.page_bytes as f64 / self.config.channel_bytes_per_s;
        per_channel
            .iter()
            .map(|&n| n as f64 * (self.config.t_r_secs + xfer))
            .fold(0.0, f64::max)
    }

    fn time_for(&self, per_channel: &[u32]) -> f64 {
        let sense = self.config.t_r_secs / self.config.dies_per_channel as f64;
        let xfer = self.config.page_bytes as f64 / self.config.channel_bytes_per_s;
        let per_page = sense.max(xfer);
        per_channel
            .iter()
            .map(|&n| {
                if n == 0 {
                    0.0
                } else {
                    // Pipeline fill + steady state.
                    self.config.t_r_secs + xfer + (n as f64 - 1.0) * per_page
                }
            })
            .fold(0.0, f64::max)
    }

    /// Read count of the most-read physical page.
    pub fn max_wear(&self) -> u32 {
        self.read_counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean read count across physical pages.
    pub fn mean_wear(&self) -> f64 {
        if self.read_counts.is_empty() {
            return 0.0;
        }
        self.read_counts.iter().map(|&c| c as f64).sum::<f64>() / self.read_counts.len() as f64
    }

    /// Wear-levels by remapping the hottest page onto the coldest
    /// physical slot (swapping their mappings). Returns the (hot, cold)
    /// physical pages swapped, or `None` when wear is already flat.
    pub fn wear_level_step(&mut self) -> Option<(u32, u32)> {
        let (hot, &hot_c) = self
            .read_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)?;
        let (cold, &cold_c) = self
            .read_counts
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)?;
        if hot_c == cold_c {
            return None;
        }
        // Find the logical owners and swap their physical backing.
        let hot_logical = self.map.iter().position(|&p| p as usize == hot)?;
        let cold_logical = self.map.iter().position(|&p| p as usize == cold)?;
        self.map.swap(hot_logical, cold_logical);
        Some((hot as u32, cold as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> Ftl {
        Ftl::format(NandConfig::default(), 1024)
    }

    #[test]
    fn format_is_identity_mapped() {
        let ftl = small_ftl();
        assert_eq!(ftl.pages(), 1024);
        for l in [0usize, 10, 1023] {
            assert_eq!(ftl.physical_of(l), l as u32);
        }
    }

    #[test]
    fn sequential_beats_scattered() {
        let mut a = small_ftl();
        let mut b = small_ftl();
        let seq = a.read_pages(0, 256);
        let pages: Vec<usize> = (0..256).collect();
        let scat = b.read_scattered(&pages);
        assert!(
            scat > 2.0 * seq,
            "scattered {scat}s should cost well over sequential {seq}s"
        );
    }

    #[test]
    fn reads_accumulate_wear() {
        let mut ftl = small_ftl();
        ftl.read_pages(0, 8);
        ftl.read_pages(0, 8);
        ftl.read_scattered(&[0, 0, 0]);
        assert_eq!(ftl.max_wear(), 5); // page 0: 2 sequential + 3 scattered
        assert!(ftl.mean_wear() > 0.0);
    }

    #[test]
    fn wear_leveling_moves_hot_pages() {
        let mut ftl = small_ftl();
        for _ in 0..10 {
            ftl.read_scattered(&[0]);
        }
        let before = ftl.physical_of(0);
        let swapped = ftl.wear_level_step().expect("wear is skewed");
        assert_eq!(swapped.0, before);
        assert_ne!(ftl.physical_of(0), before);
        // Flat wear: nothing to move.
        let flat = Ftl::format(NandConfig::default(), 4);
        let mut flat = flat;
        assert!(flat.wear_level_step().is_none());
    }

    #[test]
    fn zero_and_bounds() {
        let mut ftl = small_ftl();
        assert_eq!(ftl.read_pages(0, 0), 0.0);
        assert_eq!(ftl.read_scattered(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "beyond logical space")]
    fn rejects_out_of_range_run() {
        let mut ftl = small_ftl();
        let _ = ftl.read_pages(1000, 100);
    }

    #[test]
    #[should_panic(expected = "exceeds device capacity")]
    fn rejects_oversized_format() {
        let _ = Ftl::format(NandConfig::default(), usize::MAX / 2);
    }

    #[test]
    fn channel_striping_is_round_robin() {
        let ftl = small_ftl();
        let channels = NandConfig::default().channels;
        for p in 0..32u32 {
            assert_eq!(ftl.channel_of(p), p as usize % channels);
        }
    }
}
