//! Multi-SmartSSD scaling (the paper's stated future work: "extending
//! this work for larger datasets and models scaling over multiple
//! SmartSSDs and GPUs").
//!
//! A [`SsdCluster`] shards a dataset across several drives; each drive
//! scans its shard and selects locally (the GreeDi round-1 of
//! `nessa-select`), then ships its local picks over the interconnect for
//! the host-side merge (round 2). Drives operate in parallel, so the
//! wall-clock of a phase is the slowest drive's time; bytes and energy are
//! summed.
//!
//! Drives can fail: every phase returns a typed [`ClusterError`]
//! identifying the drive at fault, and a dead drive can be evicted with
//! [`SsdCluster::evict_drive`] — the shard layout rebalances over the
//! survivors and the retired drive's traffic/energy history is kept.

use crate::device::{SmartSsd, SmartSsdConfig, TrafficStats};
use crate::fault::{DeviceError, FaultPlan};
use crate::fpga::KernelProfile;

/// A device error attributed to one drive of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterError {
    /// Index of the failing drive (into the live drives at call time).
    pub drive: usize,
    /// What went wrong on that drive.
    pub error: DeviceError,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "drive {}: {}", self.drive, self.error)
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A fleet of identical SmartSSDs holding one dataset in shards.
#[derive(Debug, Clone)]
pub struct SsdCluster {
    drives: Vec<SmartSsd>,
    /// Drives evicted after a dropout; kept for traffic/energy history.
    retired: Vec<SmartSsd>,
    /// Wall-clock seconds (parallel phases take the max across drives).
    elapsed_s: f64,
    /// Simulated seconds of device work that ran concurrently with GPU
    /// training and were therefore hidden from the end-to-end critical
    /// path (overlapped pipelining).
    hidden_s: f64,
}

impl SsdCluster {
    /// Creates a cluster of `n` drives with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: SmartSsdConfig) -> Self {
        assert!(n > 0, "a cluster needs at least one drive");
        Self {
            drives: (0..n).map(|_| SmartSsd::new(config)).collect(),
            retired: Vec::new(),
            elapsed_s: 0.0,
            hidden_s: 0.0,
        }
    }

    /// Number of live drives.
    pub fn len(&self) -> usize {
        self.drives.len()
    }

    /// True when every drive has been evicted (a fresh cluster has ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.drives.is_empty()
    }

    /// Number of drives evicted so far.
    pub fn evicted(&self) -> usize {
        self.retired.len()
    }

    /// The live drives.
    pub fn drives(&self) -> &[SmartSsd] {
        &self.drives
    }

    /// The evicted drives (traffic/energy history preserved).
    pub fn retired_drives(&self) -> &[SmartSsd] {
        &self.retired
    }

    /// Arms a fault schedule on live drive `drive`. Ignored when the
    /// index is out of range.
    pub fn inject_faults(&mut self, drive: usize, plan: FaultPlan) {
        if let Some(d) = self.drives.get_mut(drive) {
            d.inject_faults(plan);
        }
    }

    /// Total faults injected across live and retired drives.
    pub fn faults_injected(&self) -> u64 {
        self.drives
            .iter()
            .chain(&self.retired)
            .map(SmartSsd::faults_injected)
            .sum()
    }

    /// Drains the corrupt-record counts from every drive.
    pub fn take_quarantined(&mut self) -> u64 {
        self.drives
            .iter_mut()
            .chain(self.retired.iter_mut())
            .map(SmartSsd::take_quarantined)
            .sum()
    }

    /// Retires live drive `drive` (after a dropout); the shard layout
    /// rebalances over the survivors on the next phase. Returns false
    /// when the index is out of range.
    pub fn evict_drive(&mut self, drive: usize) -> bool {
        if drive >= self.drives.len() {
            return false;
        }
        let dead = self.drives.remove(drive);
        self.retired.push(dead);
        true
    }

    /// Charges `secs` of idle backoff to every live drive and to the
    /// cluster wall-clock — how the pipeline accounts a retry wait.
    pub fn stall_all(&mut self, secs: f64) {
        if secs <= 0.0 {
            return;
        }
        for d in &mut self.drives {
            d.stall_for(secs);
        }
        self.elapsed_s += secs;
    }

    /// Wall-clock seconds elapsed across all phases so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_s
    }

    /// Marks `secs` of already-charged device time as hidden under
    /// concurrent GPU training (the overlapped pipeline calls this once
    /// per pipelined round with `min(round_secs, train_secs)`). Clamped
    /// so the hidden total never exceeds the elapsed total.
    pub fn note_overlap_hidden(&mut self, secs: f64) {
        if secs > 0.0 {
            self.hidden_s = (self.hidden_s + secs).min(self.elapsed_s);
        }
    }

    /// Device seconds hidden under concurrent training so far.
    pub fn hidden_secs(&self) -> f64 {
        self.hidden_s
    }

    /// Device seconds exposed on the end-to-end critical path: elapsed
    /// minus hidden (never negative).
    pub fn exposed_secs(&self) -> f64 {
        (self.elapsed_s - self.hidden_s).max(0.0)
    }

    /// Aggregated traffic over all drives, retired ones included.
    pub fn traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for d in self.drives.iter().chain(&self.retired) {
            let t = d.traffic();
            total.ssd_to_fpga += t.ssd_to_fpga;
            total.fpga_to_host += t.fpga_to_host;
            total.host_to_fpga += t.host_to_fpga;
            total.staged_to_host += t.staged_to_host;
        }
        total
    }

    /// Total energy in joules over all drives, retired ones included.
    pub fn energy_joules(&self) -> f64 {
        self.drives
            .iter()
            .chain(&self.retired)
            .map(|d| d.energy().total_joules())
            .sum()
    }

    /// Shards `records` as evenly as possible across the live drives
    /// (first shards get the remainder). After an eviction the same call
    /// re-balances over the survivors.
    pub fn shard_counts(&self, records: u64) -> Vec<u64> {
        let n = self.drives.len() as u64;
        if n == 0 {
            return Vec::new();
        }
        let base = records / n;
        let rem = records % n;
        (0..n).map(|i| base + u64::from(i < rem)).collect()
    }

    /// Reports the phase outcome: any [`DeviceError::Offline`] takes
    /// precedence (so callers evict before burning retry budget), then
    /// the first other error; elapsed time is charged only on success.
    fn finish_phase(
        &mut self,
        results: Vec<Result<f64, DeviceError>>,
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, ClusterError> {
        let mut first_err: Option<ClusterError> = None;
        for (drive, r) in results.iter().enumerate() {
            match r {
                Err(DeviceError::Offline) => {
                    return Err(ClusterError {
                        drive,
                        error: DeviceError::Offline,
                    })
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(ClusterError { drive, error: *e });
                    }
                }
                Ok(_) => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let t = results.into_iter().flatten().fold(0.0f64, combine);
        self.elapsed_s += t;
        Ok(t)
    }

    /// Phase: every drive scans its shard flash → FPGA in parallel.
    /// Returns the phase's wall-clock seconds (slowest drive).
    ///
    /// # Errors
    ///
    /// Returns the failing drive's error ([`DeviceError::Offline`] takes
    /// precedence so the caller can evict). No wall-clock is charged on
    /// failure; a retry re-runs the whole phase.
    pub fn parallel_scan(&mut self, records: u64, record_bytes: u64) -> Result<f64, ClusterError> {
        let shards = self.shard_counts(records);
        let results = self
            .drives
            .iter_mut()
            .zip(&shards)
            .map(|(d, &r)| d.read_records_to_fpga(r, record_bytes))
            .collect();
        self.finish_phase(results, f64::max)
    }

    /// Phase: every drive runs the selection kernel on its shard
    /// (the profile's `samples` is the *total*; each drive gets its
    /// share). Returns wall-clock seconds.
    ///
    /// # Errors
    ///
    /// Returns the failing drive's error: a
    /// [`KernelError`](crate::KernelError) if the chunk does not fit or an
    /// armed kernel abort fired, [`DeviceError::Offline`] (with
    /// precedence) after a dropout.
    pub fn parallel_select(&mut self, profile: &KernelProfile) -> Result<f64, ClusterError> {
        let shards = self.shard_counts(profile.samples);
        let results = self
            .drives
            .iter_mut()
            .zip(&shards)
            .map(|(d, &samples)| {
                let local = KernelProfile {
                    samples,
                    ..*profile
                };
                d.run_selection(&local)
            })
            .collect();
        self.finish_phase(results, f64::max)
    }

    /// Phase: every drive ships its share of the `records` selected
    /// subset to the host (GreeDi round 1 → 2 hand-off), sharing the
    /// host link — transfer times add. Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns the failing drive's error ([`DeviceError::Offline`] takes
    /// precedence). No wall-clock is charged on failure.
    pub fn gather_selections(
        &mut self,
        records: u64,
        record_bytes: u64,
    ) -> Result<f64, ClusterError> {
        let shards = self.shard_counts(records);
        let results = self
            .drives
            .iter_mut()
            .zip(&shards)
            .map(|(d, &r)| d.send_subset_to_host(r, record_bytes))
            .collect();
        self.finish_phase(results, |a, b| a + b)
    }

    /// Phase: every drive streams its share of `records` through the
    /// conventional storage → host path (the degraded mode when the P2P
    /// or kernel path is out), sharing the host link — times add.
    /// Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns the failing drive's error ([`DeviceError::Offline`] takes
    /// precedence). No wall-clock is charged on failure.
    pub fn conventional_read_to_host(
        &mut self,
        records: u64,
        record_bytes: u64,
    ) -> Result<f64, ClusterError> {
        let shards = self.shard_counts(records);
        let results = self
            .drives
            .iter_mut()
            .zip(&shards)
            .map(|(d, &r)| d.conventional_read_to_host(r, record_bytes))
            .collect();
        self.finish_phase(results, |a, b| a + b)
    }

    /// Phase: broadcast the quantized-weight feedback to every drive
    /// (shared host link; times add). Returns the phase's seconds.
    ///
    /// # Errors
    ///
    /// Returns the failing drive's error ([`DeviceError::Offline`] takes
    /// precedence). No wall-clock is charged on failure.
    pub fn broadcast_feedback(&mut self, bytes: u64) -> Result<f64, ClusterError> {
        let results = self
            .drives
            .iter_mut()
            .map(|d| d.receive_feedback(bytes))
            .collect();
        self.finish_phase(results, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            samples: 100_000,
            forward_macs_per_sample: 640,
            proxy_dim: 10,
            chunk: 457,
            k_per_chunk: 128,
        }
    }

    #[test]
    fn shards_are_balanced() {
        let c = SsdCluster::new(4, SmartSsdConfig::default());
        assert_eq!(c.shard_counts(10), vec![3, 3, 2, 2]);
        assert_eq!(c.shard_counts(8), vec![2, 2, 2, 2]);
        let total: u64 = c.shard_counts(101).iter().sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn scan_scales_near_linearly() {
        let mut one = SsdCluster::new(1, SmartSsdConfig::default());
        let mut four = SsdCluster::new(4, SmartSsdConfig::default());
        let t1 = one.parallel_scan(100_000, 3000).unwrap();
        let t4 = four.parallel_scan(100_000, 3000).unwrap();
        let speedup = t1 / t4;
        assert!(
            (3.0..4.5).contains(&speedup),
            "4-drive scan speedup {speedup}"
        );
    }

    #[test]
    fn select_scales_near_linearly() {
        let mut one = SsdCluster::new(1, SmartSsdConfig::default());
        let mut four = SsdCluster::new(4, SmartSsdConfig::default());
        let t1 = one.parallel_select(&profile()).unwrap();
        let t4 = four.parallel_select(&profile()).unwrap();
        assert!(t1 / t4 > 3.0, "select speedup {}", t1 / t4);
    }

    #[test]
    fn gather_and_feedback_share_the_link() {
        let mut c = SsdCluster::new(3, SmartSsdConfig::default());
        let tg = c.gather_selections(3000, 3000).unwrap();
        let tf = c.broadcast_feedback(100_000).unwrap();
        assert!(tg > 0.0 && tf > 0.0);
        let t = c.traffic();
        assert_eq!(t.fpga_to_host, 3 * 1000 * 3000);
        assert_eq!(t.host_to_fpga, 3 * 100_000);
        assert!((c.elapsed_secs() - (tg + tf)).abs() < 1e-12);
    }

    #[test]
    fn energy_sums_over_drives() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.parallel_scan(10_000, 3000).unwrap();
        assert!(c.energy_joules() > 0.0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn rejects_empty_cluster() {
        let _ = SsdCluster::new(0, SmartSsdConfig::default());
    }

    #[test]
    fn hidden_seconds_clamp_to_elapsed() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        assert_eq!(c.hidden_secs(), 0.0);
        assert_eq!(c.exposed_secs(), 0.0);
        let t = c.parallel_scan(10_000, 3000).unwrap();
        // Hiding more time than elapsed clamps: the device cannot hide
        // work it never did.
        c.note_overlap_hidden(t * 10.0);
        assert!((c.hidden_secs() - c.elapsed_secs()).abs() < 1e-12);
        assert_eq!(c.exposed_secs(), 0.0);
        // Negative / zero notes are ignored.
        c.note_overlap_hidden(-1.0);
        c.note_overlap_hidden(0.0);
        assert!((c.hidden_secs() - c.elapsed_secs()).abs() < 1e-12);
    }

    #[test]
    fn hidden_seconds_accumulate_and_expose_remainder() {
        let mut c = SsdCluster::new(1, SmartSsdConfig::default());
        let t = c.parallel_scan(50_000, 3000).unwrap();
        c.note_overlap_hidden(t / 4.0);
        c.note_overlap_hidden(t / 4.0);
        assert!((c.hidden_secs() - t / 2.0).abs() < 1e-12);
        assert!((c.exposed_secs() - t / 2.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_rebalances_shards_to_full_count() {
        let mut c = SsdCluster::new(4, SmartSsdConfig::default());
        assert!(c.evict_drive(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.evicted(), 1);
        let shards = c.shard_counts(10);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().sum::<u64>(), 10);
        assert!(!c.evict_drive(3), "index past the live set");
    }

    #[test]
    fn offline_drive_fails_the_phase_and_eviction_recovers() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.inject_faults(1, FaultPlan::none().with_dropout_after(0));
        let err = c.parallel_scan(1000, 3000).unwrap_err();
        assert_eq!(err.drive, 1);
        assert_eq!(err.error, DeviceError::Offline);
        assert_eq!(c.elapsed_secs(), 0.0, "failed phases charge no time");
        assert!(c.evict_drive(err.drive));
        let t = c.parallel_scan(1000, 3000).unwrap();
        assert!(t > 0.0);
        assert_eq!(c.faults_injected(), 1);
    }

    #[test]
    fn offline_takes_precedence_over_transient_errors() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.inject_faults(0, FaultPlan::none().with_read_error(0, 5));
        c.inject_faults(1, FaultPlan::none().with_dropout_after(0));
        let err = c.parallel_scan(1000, 3000).unwrap_err();
        assert_eq!(err.error, DeviceError::Offline, "evictable error first");
        assert_eq!(err.drive, 1);
    }

    #[test]
    fn retired_drive_history_is_kept() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.parallel_scan(1000, 3000).unwrap();
        let before = c.traffic().ssd_to_fpga;
        let energy_before = c.energy_joules();
        c.evict_drive(0);
        assert_eq!(c.traffic().ssd_to_fpga, before);
        assert!((c.energy_joules() - energy_before).abs() < 1e-12);
        assert_eq!(c.retired_drives().len(), 1);
        assert_eq!(c.drives().len(), 1);
    }

    #[test]
    fn stall_all_charges_every_drive_and_the_wall_clock() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.stall_all(0.5);
        assert!((c.elapsed_secs() - 0.5).abs() < 1e-12);
        for d in c.drives() {
            assert!((d.elapsed_secs() - 0.5).abs() < 1e-12);
        }
    }
}
