//! Multi-SmartSSD scaling (the paper's stated future work: "extending
//! this work for larger datasets and models scaling over multiple
//! SmartSSDs and GPUs").
//!
//! A [`SsdCluster`] shards a dataset across several drives; each drive
//! scans its shard and selects locally (the GreeDi round-1 of
//! `nessa-select`), then ships its local picks over the interconnect for
//! the host-side merge (round 2). Drives operate in parallel, so the
//! wall-clock of a phase is the slowest drive's time; bytes and energy are
//! summed.

use crate::device::{SmartSsd, SmartSsdConfig, TrafficStats};
use crate::fpga::{KernelError, KernelProfile};

/// A fleet of identical SmartSSDs holding one dataset in shards.
#[derive(Debug, Clone)]
pub struct SsdCluster {
    drives: Vec<SmartSsd>,
    /// Wall-clock seconds (parallel phases take the max across drives).
    elapsed_s: f64,
}

impl SsdCluster {
    /// Creates a cluster of `n` drives with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: SmartSsdConfig) -> Self {
        assert!(n > 0, "a cluster needs at least one drive");
        Self {
            drives: (0..n).map(|_| SmartSsd::new(config)).collect(),
            elapsed_s: 0.0,
        }
    }

    /// Number of drives.
    pub fn len(&self) -> usize {
        self.drives.len()
    }

    /// True when the cluster is empty (never; constructor enforces ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.drives.is_empty()
    }

    /// Wall-clock seconds elapsed across all phases so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_s
    }

    /// Aggregated traffic over all drives.
    pub fn traffic(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        for d in &self.drives {
            let t = d.traffic();
            total.ssd_to_fpga += t.ssd_to_fpga;
            total.fpga_to_host += t.fpga_to_host;
            total.host_to_fpga += t.host_to_fpga;
            total.staged_to_host += t.staged_to_host;
        }
        total
    }

    /// Total energy in joules over all drives.
    pub fn energy_joules(&self) -> f64 {
        self.drives.iter().map(|d| d.energy().total_joules()).sum()
    }

    /// Shards `records` as evenly as possible across the drives
    /// (first shards get the remainder).
    pub fn shard_counts(&self, records: u64) -> Vec<u64> {
        let n = self.drives.len() as u64;
        let base = records / n;
        let rem = records % n;
        (0..n).map(|i| base + u64::from(i < rem)).collect()
    }

    /// Phase: every drive scans its shard flash → FPGA in parallel.
    /// Returns the phase's wall-clock seconds (slowest drive).
    pub fn parallel_scan(&mut self, records: u64, record_bytes: u64) -> f64 {
        let shards = self.shard_counts(records);
        let t = self
            .drives
            .iter_mut()
            .zip(&shards)
            .map(|(d, &r)| d.read_records_to_fpga(r, record_bytes))
            .fold(0.0f64, f64::max);
        self.elapsed_s += t;
        t
    }

    /// Phase: every drive runs the selection kernel on its shard
    /// (the profile's `samples` is the *total*; each drive gets its
    /// share). Returns wall-clock seconds.
    ///
    /// # Errors
    ///
    /// Returns the first drive's [`KernelError`] if the chunk does not fit.
    pub fn parallel_select(&mut self, profile: &KernelProfile) -> Result<f64, KernelError> {
        let shards = self.shard_counts(profile.samples);
        let mut worst = 0.0f64;
        for (d, &samples) in self.drives.iter_mut().zip(&shards) {
            let local = KernelProfile {
                samples,
                ..*profile
            };
            worst = worst.max(d.run_selection(&local)?);
        }
        self.elapsed_s += worst;
        Ok(worst)
    }

    /// Phase: every drive ships its local picks to the host (GreeDi
    /// round 1 → 2 hand-off), sharing the host link — transfer times add.
    /// Returns the phase's seconds.
    pub fn gather_selections(&mut self, records_per_drive: u64, record_bytes: u64) -> f64 {
        let t: f64 = self
            .drives
            .iter_mut()
            .map(|d| d.send_subset_to_host(records_per_drive, record_bytes))
            .sum();
        self.elapsed_s += t;
        t
    }

    /// Phase: broadcast the quantized-weight feedback to every drive
    /// (shared host link; times add). Returns the phase's seconds.
    pub fn broadcast_feedback(&mut self, bytes: u64) -> f64 {
        let t: f64 = self
            .drives
            .iter_mut()
            .map(|d| d.receive_feedback(bytes))
            .sum();
        self.elapsed_s += t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            samples: 100_000,
            forward_macs_per_sample: 640,
            proxy_dim: 10,
            chunk: 457,
            k_per_chunk: 128,
        }
    }

    #[test]
    fn shards_are_balanced() {
        let c = SsdCluster::new(4, SmartSsdConfig::default());
        assert_eq!(c.shard_counts(10), vec![3, 3, 2, 2]);
        assert_eq!(c.shard_counts(8), vec![2, 2, 2, 2]);
        let total: u64 = c.shard_counts(101).iter().sum();
        assert_eq!(total, 101);
    }

    #[test]
    fn scan_scales_near_linearly() {
        let mut one = SsdCluster::new(1, SmartSsdConfig::default());
        let mut four = SsdCluster::new(4, SmartSsdConfig::default());
        let t1 = one.parallel_scan(100_000, 3000);
        let t4 = four.parallel_scan(100_000, 3000);
        let speedup = t1 / t4;
        assert!(
            (3.0..4.5).contains(&speedup),
            "4-drive scan speedup {speedup}"
        );
    }

    #[test]
    fn select_scales_near_linearly() {
        let mut one = SsdCluster::new(1, SmartSsdConfig::default());
        let mut four = SsdCluster::new(4, SmartSsdConfig::default());
        let t1 = one.parallel_select(&profile()).unwrap();
        let t4 = four.parallel_select(&profile()).unwrap();
        assert!(t1 / t4 > 3.0, "select speedup {}", t1 / t4);
    }

    #[test]
    fn gather_and_feedback_share_the_link() {
        let mut c = SsdCluster::new(3, SmartSsdConfig::default());
        let tg = c.gather_selections(1000, 3000);
        let tf = c.broadcast_feedback(100_000);
        assert!(tg > 0.0 && tf > 0.0);
        let t = c.traffic();
        assert_eq!(t.fpga_to_host, 3 * 1000 * 3000);
        assert_eq!(t.host_to_fpga, 3 * 100_000);
        assert!((c.elapsed_secs() - (tg + tf)).abs() < 1e-12);
    }

    #[test]
    fn energy_sums_over_drives() {
        let mut c = SsdCluster::new(2, SmartSsdConfig::default());
        c.parallel_scan(10_000, 3000);
        assert!(c.energy_joules() > 0.0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn rejects_empty_cluster() {
        let _ = SsdCluster::new(0, SmartSsdConfig::default());
    }
}
