//! Property tests for the device simulator.

use nessa_smartssd::fpga::{FpgaSpec, KernelProfile};
use nessa_smartssd::ftl::Ftl;
use nessa_smartssd::nand::NandConfig;
use nessa_smartssd::{LinkModel, SmartSsd, SmartSsdConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn link_time_is_monotone(
        r1 in 1u64..10_000, r2 in 1u64..10_000,
        b1 in 1u64..1_000_000, b2 in 1u64..1_000_000
    ) {
        for link in [LinkModel::p2p(), LinkModel::host_staged(), LinkModel::fpga_host()] {
            let (rl, rh) = (r1.min(r2), r1.max(r2));
            let (bl, bh) = (b1.min(b2), b1.max(b2));
            prop_assert!(link.batch_time_s(rl, bl) <= link.batch_time_s(rh, bl));
            prop_assert!(link.batch_time_s(rl, bl) <= link.batch_time_s(rl, bh));
        }
    }

    #[test]
    fn effective_throughput_never_exceeds_peak(records in 1u64..5_000, bytes in 1u64..500_000) {
        for link in [LinkModel::p2p(), LinkModel::host_staged(), LinkModel::fpga_host()] {
            let t = link.effective_bytes_per_s(records, bytes);
            prop_assert!(t <= link.peak_bytes_per_s + 1.0);
            prop_assert!(t > 0.0);
        }
    }

    #[test]
    fn device_clock_is_monotone_and_additive(
        ops in prop::collection::vec((1u64..2_000, 100u64..50_000), 1..12)
    ) {
        let mut dev = SmartSsd::new(SmartSsdConfig::default());
        let mut sum = 0.0;
        for (records, bytes) in ops {
            let before = dev.elapsed_secs();
            let t = dev.read_records_to_fpga(records, bytes).unwrap();
            sum += t;
            prop_assert!(dev.elapsed_secs() >= before);
            prop_assert!(t >= 0.0);
        }
        prop_assert!((dev.elapsed_secs() - sum).abs() < 1e-6 * sum.max(1.0));
    }

    #[test]
    fn traffic_bytes_are_conserved(
        scans in prop::collection::vec((1u64..500, 10u64..5_000), 1..8)
    ) {
        let mut dev = SmartSsd::new(SmartSsdConfig::default());
        let expected: u64 = scans.iter().map(|&(r, b)| r * b).sum();
        for (r, b) in scans {
            dev.read_records_to_fpga(r, b).unwrap();
        }
        prop_assert_eq!(dev.traffic().ssd_to_fpga, expected);
    }

    #[test]
    fn kernel_time_scales_with_samples(
        s1 in 1u64..100_000, s2 in 1u64..100_000, macs in 1u64..10_000
    ) {
        let spec = FpgaSpec::default();
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        let p = |samples| KernelProfile {
            samples,
            forward_macs_per_sample: macs,
            proxy_dim: 10,
            chunk: 256,
            k_per_chunk: 64,
        };
        prop_assert!(
            p(lo).execute_time_s(&spec).unwrap() <= p(hi).execute_time_s(&spec).unwrap() + 1e-12
        );
    }

    #[test]
    fn max_chunk_always_fits(proxy_dim in 1usize..512) {
        let spec = FpgaSpec::default();
        let max = KernelProfile::max_chunk_for(&spec, proxy_dim);
        let p = KernelProfile {
            samples: 1,
            forward_macs_per_sample: 1,
            proxy_dim,
            chunk: max,
            k_per_chunk: 1,
        };
        prop_assert!(p.check_fit(&spec).is_ok());
    }

    #[test]
    fn ftl_sequential_time_monotone_in_pages(
        p1 in 1usize..2_000, p2 in 1usize..2_000
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let mut a = Ftl::format(NandConfig::default(), 4_096);
        let mut b = Ftl::format(NandConfig::default(), 4_096);
        prop_assert!(a.read_pages(0, lo) <= b.read_pages(0, hi) + 1e-12);
    }

    #[test]
    fn ftl_wear_total_equals_reads(pages in prop::collection::vec(0usize..128, 1..64)) {
        let mut ftl = Ftl::format(NandConfig::default(), 128);
        ftl.read_scattered(&pages);
        // Mean wear × page count = total reads issued.
        let total = (ftl.mean_wear() * 128.0).round() as usize;
        prop_assert_eq!(total, pages.len());
    }
}
