//! Quantization schemes beyond the default symmetric per-tensor int8:
//! configurable bit widths and per-row (per-output-channel) scales.
//!
//! These power the feedback-precision ablation: the paper fixes int8, but
//! the design space (4/8/16 bits, per-tensor vs per-channel) trades
//! feedback-transfer bytes against selector fidelity, and the ablation
//! bench quantifies exactly that.

use nessa_tensor::Tensor;

/// How to derive quantization scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One scale for the whole tensor.
    PerTensor,
    /// One scale per row of a 2-D tensor (per output channel); 1-D tensors
    /// fall back to per-tensor.
    PerRow,
}

/// A quantization scheme: symmetric, `bits`-wide codes with the chosen
/// scale granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheme {
    /// Code width in bits (2..=16); codes span `±(2^(bits−1) − 1)`.
    pub bits: u8,
    /// Scale granularity.
    pub granularity: Granularity,
}

impl Scheme {
    /// The paper's scheme: symmetric per-tensor int8.
    pub fn int8() -> Self {
        Self {
            bits: 8,
            granularity: Granularity::PerTensor,
        }
    }

    /// Maximum positive code.
    pub fn q_max(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Payload bits per element.
    pub fn bits_per_element(&self) -> u32 {
        self.bits as u32
    }
}

/// A tensor quantized under an arbitrary [`Scheme`]. Codes are stored as
/// `i16` regardless of the logical width (the simulator charges the wire
/// for `bits` per element, not the in-memory width).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeQuantized {
    scheme: Scheme,
    dims: Vec<usize>,
    codes: Vec<i16>,
    /// One scale per row group (len 1 for per-tensor).
    scales: Vec<f32>,
}

impl SchemeQuantized {
    /// Quantizes a tensor under `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if `scheme.bits` is outside `2..=16`.
    pub fn quantize(t: &Tensor, scheme: Scheme) -> Self {
        assert!(
            (2..=16).contains(&scheme.bits),
            "bits must be in 2..=16, got {}",
            scheme.bits
        );
        let q_max = scheme.q_max() as f32;
        let (groups, group_len) = match scheme.granularity {
            Granularity::PerRow if t.ndim() == 2 => (t.dim(0), t.dim(1)),
            _ => (1, t.numel()),
        };
        let mut scales = Vec::with_capacity(groups);
        let mut codes = Vec::with_capacity(t.numel());
        for g in 0..groups {
            let slice = &t.as_slice()[g * group_len..(g + 1) * group_len];
            let max_abs = slice.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / q_max };
            scales.push(scale);
            let inv = 1.0 / scale;
            codes.extend(
                slice
                    .iter()
                    .map(|&v| (v * inv).round().clamp(-q_max, q_max) as i16),
            );
        }
        Self {
            scheme,
            dims: t.shape().dims().to_vec(),
            codes,
            scales,
        }
    }

    /// Reconstructs the f32 tensor.
    pub fn dequantize(&self) -> Tensor {
        let group_len = self.codes.len() / self.scales.len();
        let mut out = Vec::with_capacity(self.codes.len());
        for (g, &scale) in self.scales.iter().enumerate() {
            out.extend(
                self.codes[g * group_len..(g + 1) * group_len]
                    .iter()
                    .map(|&q| q as f32 * scale),
            );
        }
        Tensor::from_vec(out, &self.dims)
    }

    /// The scheme in use.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Bytes on the wire: `bits` per element (bit-packed) plus one f32
    /// scale per group.
    pub fn payload_bytes(&self) -> usize {
        let code_bits = self.codes.len() as u64 * self.scheme.bits_per_element() as u64;
        (code_bits.div_ceil(8)) as usize + 4 * self.scales.len()
    }

    /// Worst-case absolute error per group (half a step).
    pub fn error_bounds(&self) -> Vec<f32> {
        self.scales.iter().map(|s| 0.5 * s).collect()
    }
}

/// Relative Frobenius reconstruction error of quantizing `t` under
/// `scheme` (`0.0` for an all-zero tensor).
pub fn relative_error(t: &Tensor, scheme: Scheme) -> f32 {
    let q = SchemeQuantized::quantize(t, scheme);
    let back = q.dequantize();
    let diff = t
        .try_zip(&back, "relative_error", |a, b| a - b)
        .expect("same shape by construction");
    let n = t.norm();
    if n == 0.0 {
        0.0
    } else {
        diff.norm() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::rng::Rng64;

    #[test]
    fn int8_per_tensor_matches_legacy_quantizer() {
        let mut rng = Rng64::new(0);
        let t = Tensor::rand_uniform(&[8, 8], -2.0, 2.0, &mut rng);
        let legacy = crate::QuantizedTensor::quantize(&t).dequantize();
        let new = SchemeQuantized::quantize(&t, Scheme::int8()).dequantize();
        for (a, b) in legacy.as_slice().iter().zip(new.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = Rng64::new(1);
        let t = Tensor::randn(&[16, 16], 0.0, 1.0, &mut rng);
        let mut prev = f32::INFINITY;
        for bits in [4u8, 8, 12, 16] {
            let e = relative_error(
                &t,
                Scheme {
                    bits,
                    granularity: Granularity::PerTensor,
                },
            );
            assert!(e < prev, "bits {bits}: {e} !< {prev}");
            prev = e;
        }
    }

    #[test]
    fn per_row_beats_per_tensor_on_heterogeneous_rows() {
        // Rows with wildly different magnitudes: a shared scale wastes
        // codes on the small rows.
        let mut data = Vec::new();
        for r in 0..8 {
            let scale = 10f32.powi(r - 4);
            for c in 0..16 {
                data.push(scale * ((c as f32) / 8.0 - 1.0));
            }
        }
        let t = Tensor::from_vec(data, &[8, 16]);
        let e_tensor = relative_error(
            &t,
            Scheme {
                bits: 8,
                granularity: Granularity::PerTensor,
            },
        );
        let e_row = relative_error(
            &t,
            Scheme {
                bits: 8,
                granularity: Granularity::PerRow,
            },
        );
        // Global relative error improves, and the small-magnitude rows —
        // crushed to zero by the shared scale — are recovered.
        assert!(e_row < e_tensor, "row {e_row} vs tensor {e_tensor}");
        let qt = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 8,
                granularity: Granularity::PerTensor,
            },
        );
        let qr = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 8,
                granularity: Granularity::PerRow,
            },
        );
        let small_row = 0; // magnitude 1e-4 vs row 7's 1e3
        let bt = qt.dequantize();
        let br = qr.dequantize();
        let err = |b: &Tensor| -> f32 {
            t.row(small_row)
                .iter()
                .zip(b.row(small_row))
                .map(|(&a, &x)| (a - x).abs())
                .sum()
        };
        assert!(err(&br) < 0.01 * err(&bt).max(1e-9) || err(&bt) == 0.0);
    }

    #[test]
    fn payload_scales_with_bits() {
        let t = Tensor::zeros(&[100]);
        let p4 = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 4,
                granularity: Granularity::PerTensor,
            },
        )
        .payload_bytes();
        let p8 = SchemeQuantized::quantize(&t, Scheme::int8()).payload_bytes();
        let p16 = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 16,
                granularity: Granularity::PerTensor,
            },
        )
        .payload_bytes();
        assert_eq!(p4, 50 + 4);
        assert_eq!(p8, 100 + 4);
        assert_eq!(p16, 200 + 4);
    }

    #[test]
    fn error_within_bound() {
        let mut rng = Rng64::new(2);
        let t = Tensor::rand_uniform(&[4, 12], -5.0, 5.0, &mut rng);
        let q = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 6,
                granularity: Granularity::PerRow,
            },
        );
        let back = q.dequantize();
        let bounds = q.error_bounds();
        for (r, &bound) in bounds.iter().enumerate() {
            for (a, b) in t.row(r).iter().zip(back.row(r)) {
                assert!((a - b).abs() <= bound + 1e-5);
            }
        }
    }

    #[test]
    fn per_row_on_1d_falls_back_to_per_tensor() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let q = SchemeQuantized::quantize(
            &t,
            Scheme {
                bits: 8,
                granularity: Granularity::PerRow,
            },
        );
        assert_eq!(q.error_bounds().len(), 1);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn rejects_bad_width() {
        let _ = SchemeQuantized::quantize(
            &Tensor::zeros(&[2]),
            Scheme {
                bits: 1,
                granularity: Granularity::PerTensor,
            },
        );
    }
}
