//! Whole-network quantized snapshots — the payload of NeSSA's feedback
//! loop.

use crate::qtensor::QuantizedTensor;
use nessa_nn::models::Network;

/// An int8 snapshot of every parameter of a network.
///
/// This is what travels GPU → FPGA after each training round (paper
/// §3.2.1). [`QuantizedModel::apply_to`] materializes the dequantized
/// weights into a structurally-identical network — the "selector model" the
/// FPGA then runs forward passes with.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    tensors: Vec<QuantizedTensor>,
}

impl QuantizedModel {
    /// Quantizes all parameters of `net` (per-tensor symmetric int8).
    pub fn from_network(net: &mut Network) -> Self {
        let tensors = net
            .export_weights()
            .iter()
            .map(QuantizedTensor::quantize)
            .collect();
        Self { tensors }
    }

    /// Loads the dequantized weights into `target`, which must have the
    /// same parameter structure as the source network.
    ///
    /// # Panics
    ///
    /// Panics if the parameter count or any shape differs.
    pub fn apply_to(&self, target: &mut Network) {
        let weights: Vec<_> = self
            .tensors
            .iter()
            .map(QuantizedTensor::dequantize)
            .collect();
        target.import_weights(&weights);
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The quantized tensors, in network parameter order.
    pub fn tensors(&self) -> &[QuantizedTensor] {
        &self.tensors
    }

    /// Bytes this snapshot occupies on the interconnect.
    pub fn payload_bytes(&self) -> usize {
        self.tensors
            .iter()
            .map(QuantizedTensor::payload_bytes)
            .sum()
    }

    /// Bytes the same snapshot would occupy unquantized (f32).
    pub fn f32_bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.numel() * 4).sum()
    }
}

/// Relative Frobenius error between a network's weights and a quantized
/// snapshot of them — the quantity the feedback-ablation bench sweeps.
pub fn quantization_error(net: &mut Network, snapshot: &QuantizedModel) -> f32 {
    let originals = net.export_weights();
    assert_eq!(originals.len(), snapshot.len(), "structure mismatch");
    let mut num = 0.0f32;
    let mut den = 0.0f32;
    for (orig, q) in originals.iter().zip(snapshot.tensors()) {
        let back = q.dequantize();
        let diff = orig
            .try_zip(&back, "quantization_error", |a, b| a - b)
            .expect("shape mismatch");
        num += diff.sq_norm();
        den += orig.sq_norm();
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_nn::models::mlp;
    use nessa_tensor::rng::Rng64;
    use nessa_tensor::Tensor;

    #[test]
    fn snapshot_round_trip_is_close() {
        let mut rng = Rng64::new(0);
        let mut net = mlp(&[8, 16, 4], &mut rng);
        let snap = QuantizedModel::from_network(&mut net);
        let mut clone = mlp(&[8, 16, 4], &mut rng);
        snap.apply_to(&mut clone);
        let x = Tensor::randn(&[5, 8], 0.0, 1.0, &mut rng);
        let exact = net.forward(&x, false);
        let approx = clone.forward(&x, false);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((a - b).abs() < 0.15, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_error_is_small_but_nonzero() {
        let mut rng = Rng64::new(1);
        let mut net = mlp(&[10, 20, 5], &mut rng);
        let snap = QuantizedModel::from_network(&mut net);
        let err = quantization_error(&mut net, &snap);
        assert!(err > 0.0, "int8 cannot be lossless on random weights");
        assert!(err < 0.02, "relative error too large: {err}");
    }

    #[test]
    fn payload_is_about_quarter_of_f32() {
        let mut rng = Rng64::new(2);
        let mut net = mlp(&[32, 64, 10], &mut rng);
        let snap = QuantizedModel::from_network(&mut net);
        let ratio = snap.payload_bytes() as f64 / snap.f32_bytes() as f64;
        assert!(ratio < 0.27, "ratio {ratio}");
        assert!(!snap.is_empty());
        assert_eq!(snap.len(), 4); // two Linear layers × (weight, bias)
    }

    #[test]
    fn apply_preserves_predictions_after_training_signal() {
        // Quantize → apply must keep argmax predictions on easy inputs.
        let mut rng = Rng64::new(3);
        let mut net = mlp(&[4, 12, 3], &mut rng);
        let x = Tensor::randn(&[16, 4], 0.0, 2.0, &mut rng);
        let before = net.predict(&x);
        let snap = QuantizedModel::from_network(&mut net);
        let mut selector = mlp(&[4, 12, 3], &mut rng);
        snap.apply_to(&mut selector);
        let after = selector.predict(&x);
        let agree = before.iter().zip(&after).filter(|(a, b)| a == b).count();
        assert!(agree >= 14, "only {agree}/16 predictions preserved");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn apply_rejects_wrong_structure() {
        let mut rng = Rng64::new(4);
        let mut net = mlp(&[8, 16, 4], &mut rng);
        let snap = QuantizedModel::from_network(&mut net);
        let mut other = mlp(&[8, 17, 4], &mut rng);
        snap.apply_to(&mut other);
    }
}
