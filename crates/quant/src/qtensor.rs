//! Symmetric per-tensor int8 quantization.

use nessa_tensor::Tensor;

/// An int8-quantized tensor with a single symmetric scale.
///
/// Values are stored as `q ∈ [−127, 127]` with `x ≈ q · scale`. Symmetric
/// (zero-point-free) quantization keeps the FPGA MAC path a plain integer
/// multiply-accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    dims: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
}

impl QuantizedTensor {
    /// Quantizes a tensor. The scale is `max|x| / 127`; an all-zero tensor
    /// gets scale `1.0` (every code is zero anyway).
    pub fn quantize(t: &Tensor) -> Self {
        let max_abs = t.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let inv = 1.0 / scale;
        let data = t
            .as_slice()
            .iter()
            .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            dims: t.shape().dims().to_vec(),
            data,
            scale,
        }
    }

    /// Reconstructs the f32 tensor (`q · scale`).
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.dims)
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Shape dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw int8 codes.
    pub fn codes(&self) -> &[i8] {
        &self.data
    }

    /// Bytes this tensor occupies on the wire (codes + scale).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<f32>()
    }

    /// Worst-case absolute reconstruction error (half a step).
    pub fn error_bound(&self) -> f32 {
        self.scale * 0.5
    }

    /// Integer matrix product `self (m×k) · otherᵀ (n×k)` with i32
    /// accumulation, rescaled to f32 — the arithmetic the FPGA kernel
    /// performs on its DSP slices.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions differ.
    pub fn qmatmul_transb(&self, other: &QuantizedTensor) -> Tensor {
        assert_eq!(self.dims.len(), 2, "qmatmul lhs must be 2-D");
        assert_eq!(other.dims.len(), 2, "qmatmul rhs must be 2-D");
        let (m, k) = (self.dims[0], self.dims[1]);
        let (n, k2) = (other.dims[0], other.dims[1]);
        assert_eq!(k, k2, "qmatmul inner dimensions differ: {k} vs {k2}");
        let rescale = self.scale * other.scale;
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b = &other.data[j * k..(j + 1) * k];
                let mut acc: i32 = 0;
                for (&x, &y) in a.iter().zip(b.iter()) {
                    acc += x as i32 * y as i32;
                }
                out[i * n + j] = acc as f32 * rescale;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::rng::Rng64;

    #[test]
    fn round_trip_error_within_bound() {
        let mut rng = Rng64::new(0);
        let t = Tensor::rand_uniform(&[20, 20], -3.0, 3.0, &mut rng);
        let q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        let bound = q.error_bound() + 1e-6;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_tensor_round_trips_exactly() {
        let t = Tensor::zeros(&[4, 4]);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.dequantize().as_slice(), t.as_slice());
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn extremes_map_to_127() {
        let t = Tensor::from_slice(&[-2.0, 0.0, 2.0]);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.codes(), &[-127, 0, 127]);
    }

    #[test]
    fn payload_is_4x_smaller_than_f32() {
        let t = Tensor::zeros(&[100]);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.payload_bytes(), 104);
        assert!(q.payload_bytes() * 3 < t.numel() * 4);
    }

    #[test]
    fn qmatmul_close_to_f32_matmul() {
        let mut rng = Rng64::new(1);
        let a = Tensor::rand_uniform(&[6, 10], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 10], -1.0, 1.0, &mut rng);
        let exact = a.matmul_transb(&b);
        let qa = QuantizedTensor::quantize(&a);
        let qb = QuantizedTensor::quantize(&b);
        let approx = qa.qmatmul_transb(&qb);
        for (e, x) in exact.as_slice().iter().zip(approx.as_slice()) {
            assert!((e - x).abs() < 0.1, "{e} vs {x}");
        }
    }

    #[test]
    fn qmatmul_matches_dequantized_matmul_exactly() {
        // Integer accumulation then rescale must equal the f32 product of
        // the dequantized operands (both are exact in f32 at these sizes).
        let mut rng = Rng64::new(2);
        let a = Tensor::rand_uniform(&[3, 8], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 8], -2.0, 2.0, &mut rng);
        let qa = QuantizedTensor::quantize(&a);
        let qb = QuantizedTensor::quantize(&b);
        let int_path = qa.qmatmul_transb(&qb);
        let deq_path = qa.dequantize().matmul_transb(&qb.dequantize());
        for (x, y) in int_path.as_slice().iter().zip(deq_path.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn qmatmul_rejects_mismatch() {
        let a = QuantizedTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QuantizedTensor::quantize(&Tensor::zeros(&[2, 4]));
        let _ = a.qmatmul_transb(&b);
    }
}
