//! Int8 quantization for NeSSA's FPGA feedback loop.
//!
//! Paper §3.2.1: after each training round the target model's weights are
//! quantized and shipped back to the SmartSSD, where the FPGA selection
//! kernel runs forward passes with them to compute gradient proxies.
//! Quantization serves two purposes there — it shrinks the GPU→FPGA
//! feedback transfer by 4× and it lets the kernel use the KU15P's DSP
//! slices as int8 MAC units (paper contribution 2: "quantize the selection
//! model for high selection speed").
//!
//! * [`qtensor`] — symmetric per-tensor int8 quantization with integer
//!   matmul kernels,
//! * [`qmodel`] — whole-network snapshots: quantize a
//!   [`Network`](nessa_nn::models::Network)'s weights, measure the payload
//!   that crosses the interconnect, and materialize the dequantized
//!   "selector model" the FPGA runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod qmodel;
pub mod qtensor;
pub mod schemes;

pub use qmodel::QuantizedModel;
pub use qtensor::QuantizedTensor;
pub use schemes::{Granularity, Scheme, SchemeQuantized};
