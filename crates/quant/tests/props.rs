//! Property tests for quantization.

use nessa_quant::schemes::{relative_error, Granularity, Scheme, SchemeQuantized};
use nessa_quant::QuantizedTensor;
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantize_is_idempotent(vals in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        // Quantizing an already-dequantized tensor is exact: codes are
        // reproduced and a second round trip changes nothing.
        let t = Tensor::from_slice(&vals);
        let q1 = QuantizedTensor::quantize(&t);
        let back1 = q1.dequantize();
        let q2 = QuantizedTensor::quantize(&back1);
        let back2 = q2.dequantize();
        for (a, b) in back1.as_slice().iter().zip(back2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn wider_codes_shrink_the_error_bound(
        vals in prop::collection::vec(-10.0f32..10.0, 2..48),
        b1 in 2u8..15
    ) {
        // Per-value rounding error is not monotone in step size, but the
        // worst-case bound (half a step) shrinks by ~2x per extra bit.
        let t = Tensor::from_slice(&vals);
        let narrow = SchemeQuantized::quantize(&t, Scheme { bits: b1, granularity: Granularity::PerTensor });
        let wide = SchemeQuantized::quantize(&t, Scheme { bits: b1 + 1, granularity: Granularity::PerTensor });
        prop_assert!(wide.error_bounds()[0] <= narrow.error_bounds()[0] * 0.51 + 1e-9);
        // And over many values the realized error improves too.
        if vals.len() >= 16 {
            let e_narrow = relative_error(&t, narrow.scheme());
            let e_wide = relative_error(&t, wide.scheme());
            prop_assert!(e_wide <= e_narrow * 1.5 + 1e-6);
        }
    }

    #[test]
    fn per_row_error_bounds_never_exceed_per_tensor(
        rows in 1usize..8, cols in 1usize..12, seed in any::<u64>()
    ) {
        // Rounding error on specific values is not monotone in step size,
        // but the worst-case bound (half a step) is: every row's scale is
        // at most the shared tensor scale.
        let mut rng = Rng64::new(seed);
        let t = Tensor::rand_uniform(&[rows, cols], -5.0, 5.0, &mut rng);
        let qt = SchemeQuantized::quantize(&t, Scheme { bits: 8, granularity: Granularity::PerTensor });
        let qr = SchemeQuantized::quantize(&t, Scheme { bits: 8, granularity: Granularity::PerRow });
        let tensor_bound = qt.error_bounds()[0];
        for &row_bound in &qr.error_bounds() {
            prop_assert!(row_bound <= tensor_bound + 1e-7);
        }
    }

    #[test]
    fn payload_accounts_exact_bits(n in 1usize..256, bits in 2u8..16) {
        let t = Tensor::zeros(&[n]);
        let q = SchemeQuantized::quantize(&t, Scheme { bits, granularity: Granularity::PerTensor });
        let expected = (n as u64 * bits as u64).div_ceil(8) as usize + 4;
        prop_assert_eq!(q.payload_bytes(), expected);
    }

    #[test]
    fn codes_bounded_by_width(vals in prop::collection::vec(-100.0f32..100.0, 1..40), bits in 2u8..16) {
        let t = Tensor::from_slice(&vals);
        let q = SchemeQuantized::quantize(&t, Scheme { bits, granularity: Granularity::PerTensor });
        let back = q.dequantize();
        // Round trip error within half a step of the per-group scale.
        let bound = q.error_bounds()[0] + 1e-4;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= bound);
        }
    }
}
