//! Property tests for tensor algebra.

use nessa_tensor::rng::Rng64;
use nessa_tensor::{ops, Tensor};
use proptest::prelude::*;

fn tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    Tensor::rand_uniform(&[rows, cols], -2.0, 2.0, &mut rng)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in any::<u64>()
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 1);
        let c = tensor(k, n, seed ^ 2);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn transpose_reverses_products(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()
    ) {
        let a = tensor(m, k, seed);
        let b = tensor(k, n, seed ^ 3);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn reshape_preserves_sum(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let a = tensor(rows, cols, seed);
        let b = a.reshape(&[cols * rows]);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-4);
    }

    #[test]
    fn axpy_matches_operator_form(n in 1usize..32, alpha in -3.0f32..3.0, seed in any::<u64>()) {
        let a = tensor(1, n, seed).reshape(&[n]);
        let b = tensor(1, n, seed ^ 5).reshape(&[n]);
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = &a + &b.scaled(alpha);
        prop_assert!(close(&via_axpy, &via_ops, 1e-5));
    }

    #[test]
    fn softmax_rows_is_a_distribution(rows in 1usize..6, cols in 1usize..8, seed in any::<u64>()) {
        let x = tensor(rows, cols, seed).scaled(10.0);
        let s = ops::softmax_rows(&x);
        for i in 0..rows {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn gather_rows_preserves_rows(rows in 2usize..10, cols in 1usize..6, seed in any::<u64>()) {
        let a = tensor(rows, cols, seed);
        let mut rng = Rng64::new(seed ^ 7);
        let picks = rng.sample_indices(rows, rows / 2 + 1);
        let g = a.gather_rows(&picks);
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), a.row(src));
        }
    }

    #[test]
    fn norm_triangle_inequality(n in 1usize..16, seed in any::<u64>()) {
        let a = tensor(1, n, seed).reshape(&[n]);
        let b = tensor(1, n, seed ^ 9).reshape(&[n]);
        let sum = &a + &b;
        prop_assert!(sum.norm() <= a.norm() + b.norm() + 1e-4);
    }

    #[test]
    fn sample_indices_cover_when_k_equals_n(n in 1usize..64, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut s = rng.sample_indices(n, n);
        s.sort_unstable();
        prop_assert_eq!(s, (0..n).collect::<Vec<_>>());
    }
}
