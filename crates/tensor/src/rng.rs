//! Seeded random-number utilities.
//!
//! Every stochastic component of the reproduction draws from a [`Rng64`]
//! created from an explicit `u64` seed, so whole experiments replay
//! bit-identically. The generator is a self-contained xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64, with the distributions
//! the workspace needs (normal via Box–Muller, index sampling, shuffling)
//! implemented on top — no external crates, so the workspace builds and
//! replays identically on air-gapped machines.

/// SplitMix64 step: the standard seed-expansion generator (Steele et al.).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random-number generator with the sampling helpers used by
/// the data generators, initializers, and stochastic-greedy selection.
///
/// ```
/// use nessa_tensor::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    /// xoshiro256++ state; never all-zero (SplitMix64 seeding guarantees it).
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// One xoshiro256++ step.
    fn step(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f32` in `[0, 1)` from the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.step() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.step() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; used to give each worker or
    /// partition its own stream while keeping the parent deterministic.
    pub fn split(&mut self) -> Rng64 {
        Rng64::new(self.step())
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform requires lo <= hi");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller needs u1 in (0, 1]; clamp away from 0 to avoid ln(0).
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some((r * theta.sin()) as f32);
        (r * theta.cos()) as f32
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires n > 0");
        // Lemire's multiply-shift maps a uniform u64 onto [0, n) with
        // bias below 2^-64 · n — immaterial at workspace pool sizes.
        ((self.step() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.step()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// Uses a partial Fisher–Yates so the cost is `O(n)` memory, `O(k)` swaps.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Splits `0..n` into `chunks` near-equal random chunks (the dataset
    /// partitioning primitive from NeSSA §3.2.3).
    ///
    /// Every index appears in exactly one chunk; chunk sizes differ by at
    /// most one.
    ///
    /// # Panics
    ///
    /// Panics if `chunks == 0`.
    pub fn random_chunks(&mut self, n: usize, chunks: usize) -> Vec<Vec<usize>> {
        assert!(chunks > 0, "chunks must be positive");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); chunks];
        for (i, v) in idx.into_iter().enumerate() {
            out[i % chunks].push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(123);
        let xs: Vec<f32> = (0..20_000).map(|_| r.normal(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn index_bounds() {
        let mut r = Rng64::new(4);
        for _ in 0..100 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng64::new(10);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let set: HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_k_gt_n() {
        Rng64::new(0).sample_indices(3, 4);
    }

    #[test]
    fn random_chunks_partition() {
        let mut r = Rng64::new(77);
        let chunks = r.random_chunks(103, 10);
        assert_eq!(chunks.len(), 10);
        let mut all: Vec<usize> = chunks.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        let max = chunks.iter().map(Vec::len).max().unwrap();
        let min = chunks.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = Rng64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn coin_extremes() {
        let mut r = Rng64::new(8);
        assert!(!r.coin(0.0));
        assert!(r.coin(1.0));
    }
}
