//! Tensor shapes and shape errors.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), outermost first.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that carries the row-major
/// interpretation used everywhere in this workspace and pre-computes the
/// element count.
///
/// ```
/// use nessa_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.ndim(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; `1` for rank 0).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides for this shape, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::IndexOutOfBounds`] when `index` has the wrong
    /// rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, ShapeError> {
        if index.len() != self.dims.len() {
            return Err(ShapeError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            if i >= self.dims[d] {
                return Err(ShapeError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Two operands had incompatible shapes for the attempted operation.
    Mismatch {
        /// Operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A reshape changed the element count.
    BadReshape {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Mismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            ShapeError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            ShapeError::BadReshape { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.numel(), 60);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dim(1), 4);
    }

    #[test]
    fn rank_zero_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_computes_flat_index() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
    }

    #[test]
    fn offset_rejects_bad_rank_and_oob() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[1]).is_err());
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
    }

    #[test]
    fn display_is_nonempty() {
        let s = Shape::new(&[1]);
        assert!(!format!("{s}").is_empty());
        assert!(!format!("{s:?}").is_empty());
    }
}
