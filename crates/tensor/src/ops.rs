//! Elementwise and row-wise operations shared by the training engine and
//! the selection kernels.

use crate::Tensor;

/// Row-wise numerically-stable softmax of a 2-D tensor.
///
/// Each row is shifted by its maximum before exponentiation, so inputs with
/// large logits do not overflow.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax_rows requires a 2-D tensor");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let row = logits.row(i);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        let orow = out.row_mut(i);
        for (o, &x) in orow.iter_mut().zip(row.iter()) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for o in orow.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Row-wise log-softmax (stable), used by the cross-entropy loss.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "log_softmax_rows requires a 2-D tensor");
    let (n, c) = (logits.dim(0), logits.dim(1));
    let mut out = Tensor::zeros(&[n, c]);
    for i in 0..n {
        let row = logits.row(i);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for (o, &x) in out.row_mut(i).iter_mut().zip(row.iter()) {
            *o = x - lse;
        }
    }
    out
}

/// ReLU activation, `max(x, 0)`.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Gradient mask of ReLU: `1` where the forward input was positive.
pub fn relu_grad_mask(forward_input: &Tensor) -> Tensor {
    forward_input.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// One-hot encodes integer labels into an `n × classes` matrix.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut out = Tensor::zeros(&[labels.len(), classes]);
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        out.row_mut(i)[y] = 1.0;
    }
    out
}

/// Column-wise sum of a 2-D tensor, producing a length-`cols` vector.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn sum_axis0(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "sum_axis0 requires a 2-D tensor");
    let (n, c) = (x.dim(0), x.dim(1));
    let mut out = vec![0.0f32; c];
    for i in 0..n {
        for (o, &v) in out.iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
    Tensor::from_vec(out, &[c])
}

/// Column-wise mean of a 2-D tensor.
///
/// # Panics
///
/// Panics if `x` is not 2-D or has zero rows.
pub fn mean_axis0(x: &Tensor) -> Tensor {
    assert!(x.dim(0) > 0, "mean_axis0 requires at least one row");
    let mut s = sum_axis0(x);
    s.scale_inplace(1.0 / x.dim(0) as f32);
    s
}

/// Adds a bias vector to every row of a 2-D tensor in place.
///
/// # Panics
///
/// Panics if `bias.numel() != x.dim(1)`.
pub fn add_bias_rows(x: &mut Tensor, bias: &Tensor) {
    assert_eq!(x.ndim(), 2, "add_bias_rows requires a 2-D tensor");
    let c = x.dim(1);
    assert_eq!(bias.numel(), c, "bias length must match column count");
    let b = bias.as_slice().to_vec();
    for i in 0..x.dim(0) {
        for (v, &bb) in x.row_mut(i).iter_mut().zip(b.iter()) {
            *v += bb;
        }
    }
}

/// Clips every element into `[-limit, limit]`; used for gradient clipping.
///
/// # Panics
///
/// Panics if `limit` is not positive.
pub fn clip_inplace(x: &mut Tensor, limit: f32) {
    assert!(limit > 0.0, "clip limit must be positive");
    x.map_inplace(|v| v.clamp(-limit, limit));
}

/// Per-row L2 norms of a 2-D tensor.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn row_norms(x: &Tensor) -> Vec<f32> {
    assert_eq!(x.ndim(), 2, "row_norms requires a 2-D tensor");
    (0..x.dim(0))
        .map(|i| x.row(i).iter().map(|&v| v * v).sum::<f32>().sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng64::new(2);
        let x = Tensor::rand_uniform(&[5, 7], -10.0, 10.0, &mut rng);
        let s = softmax_rows(&x);
        for i in 0..5 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]);
        let s = softmax_rows(&x);
        assert!(s.is_finite());
        let y = Tensor::from_vec(vec![0.0, 1.0, -1.0], &[1, 3]);
        let sy = softmax_rows(&y);
        for (a, b) in s.as_slice().iter().zip(sy.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let mut rng = Rng64::new(6);
        let x = Tensor::rand_uniform(&[3, 4], -5.0, 5.0, &mut rng);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for (a, b) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_and_mask() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(relu_grad_mask(&x).as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn one_hot_encodes() {
        let oh = one_hot(&[2, 0], 3);
        assert_eq!(oh.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(oh.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        one_hot(&[3], 3);
    }

    #[test]
    fn axis0_reductions() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(sum_axis0(&x).as_slice(), &[4.0, 6.0]);
        assert_eq!(mean_axis0(&x).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn bias_and_clip() {
        let mut x = Tensor::zeros(&[2, 3]);
        add_bias_rows(&mut x, &Tensor::from_slice(&[1.0, -2.0, 5.0]));
        assert_eq!(x.row(1), &[1.0, -2.0, 5.0]);
        clip_inplace(&mut x, 2.0);
        assert_eq!(x.row(0), &[1.0, -2.0, 2.0]);
    }

    #[test]
    fn row_norms_computes() {
        let x = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2]);
        let n = row_norms(&x);
        assert!((n[0] - 5.0).abs() < 1e-6);
        assert_eq!(n[1], 0.0);
    }
}
