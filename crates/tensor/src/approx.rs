//! Approximate float comparison — the approved alternative to `==`.
//!
//! Exact `==`/`!=` on floats is almost always a latent bug in numeric
//! code (accumulation order, FMA contraction, and quantization all
//! perturb low bits), so `nessa-lint` rule **F1** rejects it in library
//! crates. Code that genuinely needs a tolerance-based comparison goes
//! through this module; code that needs an *exact* sentinel comparison
//! (e.g. against `f32::NEG_INFINITY`) documents that with an inline
//! `// nessa-lint: allow(f1-float-eq)` suppression instead.

/// Whether `a` and `b` agree within `tol`, using a mixed absolute /
/// relative criterion: `|a − b| ≤ tol · max(1, |a|, |b|)`.
///
/// Two NaNs never compare equal (mirroring IEEE semantics); infinities
/// of the same sign do.
///
/// ```
/// use nessa_tensor::approx::approx_eq;
///
/// assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-6));
/// assert!(!approx_eq(1.0, 1.1, 1e-6));
/// ```
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    if a == b {
        // nessa-lint: allow(f1-float-eq) — the helper itself needs the
        // exact fast path (covers equal infinities and exact zeros).
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        // NaNs and mismatched infinities are never approximately equal
        // (∞ − −∞ would otherwise satisfy the scaled tolerance).
        return false;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// [`approx_eq`] for `f64`.
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // nessa-lint: allow(f1-float-eq) — exact fast path, as above.
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Whether two slices agree element-wise within `tol` (and in length).
pub fn approx_eq_slice(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| approx_eq(x, y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerates_small_noise() {
        assert!(approx_eq(100.0, 100.0 + 5e-5, 1e-6));
        assert!(approx_eq(0.0, 1e-9, 1e-6));
        assert!(!approx_eq(0.0, 1e-3, 1e-6));
    }

    #[test]
    fn handles_non_finite_values() {
        assert!(approx_eq(f32::INFINITY, f32::INFINITY, 1e-6));
        assert!(!approx_eq(f32::INFINITY, f32::NEG_INFINITY, 1e-6));
        assert!(!approx_eq(f32::NAN, f32::NAN, 1e-6));
        assert!(approx_eq_f64(f64::INFINITY, f64::INFINITY, 1e-12));
    }

    #[test]
    fn slice_comparison_checks_length_and_values() {
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0 + 1e-7], 1e-6));
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-6));
        assert!(!approx_eq_slice(&[1.0], &[1.5], 1e-6));
    }
}
