//! The dense row-major `f32` tensor.

use crate::rng::Rng64;
use crate::shape::{Shape, ShapeError};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container shared by the training engine,
/// the selection algorithms, and the quantizer. Most methods panic on shape
/// mismatch (training code treats that as a programming error); fallible
/// `try_*` variants exist where callers may want to recover.
///
/// ```
/// use nessa_tensor::Tensor;
///
/// let x = Tensor::zeros(&[2, 3]);
/// assert_eq!(x.shape().dims(), &[2, 3]);
/// assert_eq!(x.numel(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Self { shape, data }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {:?}",
            data.len(),
            dims
        );
        Self { shape, data }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self::from_vec(data.to_vec(), &[data.len()])
    }

    /// Creates a tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.uniform(lo, hi)).collect();
        Self { shape, data }
    }

    /// Creates a tensor with entries drawn from `N(mean, std^2)`.
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.normal(mean, std)).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid dimension.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        let off = self.shape.offset(index).expect("index out of bounds");
        self.data[off]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index).expect("index out of bounds");
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::BadReshape`] if the element counts differ.
    pub fn try_reshape(&self, dims: &[usize]) -> Result<Tensor, ShapeError> {
        let to = Shape::new(dims);
        if to.numel() != self.numel() {
            return Err(ShapeError::BadReshape {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor {
            shape: to,
            data: self.data.clone(),
        })
    }

    /// Returns a reshaped copy.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ; see [`Tensor::try_reshape`].
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        self.try_reshape(dims).expect("invalid reshape")
    }

    /// Row `r` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Gathers the given rows of a 2-D tensor into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or any row index is out of bounds.
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows() requires a 2-D tensor");
        let cols = self.dim(1);
        let mut out = Vec::with_capacity(rows.len() * cols);
        for &r in rows {
            out.extend_from_slice(self.row(r));
        }
        Tensor::from_vec(out, &[rows.len(), cols])
    }

    /// Matrix product of two 2-D tensors: `self (m×k) · other (k×n)`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams both operands.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self (m×k) · otherᵀ` where `other` is `n×k`.
    ///
    /// This keeps both inner loops contiguous and is the fast path for the
    /// linear layers' backward pass and for similarity kernels.
    ///
    /// # Panics
    ///
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul_transb(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_transb lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_transb rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul_transb inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ (k×m) · other (k×n)` producing `m×n`.
    ///
    /// # Panics
    ///
    /// Panics on rank or leading-dimension mismatch.
    pub fn matmul_transa(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_transa lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_transa rhs must be 2-D");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(
            k, k2,
            "matmul_transa leading dimensions differ: {k} vs {k2}"
        );
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary operation with shape checking.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Mismatch`] when the shapes differ.
    pub fn try_zip(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::Mismatch {
                op,
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence; `0` when empty).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot requires equal element counts"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// `self += alpha * other`, the in-place AXPY used by the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires matching shapes");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// True when every element is finite (no NaN/inf) — used by training
    /// sanity checks and failure-injection tests.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;

    fn add(self, rhs: &Tensor) -> Tensor {
        self.try_zip(rhs, "add", |a, b| a + b)
            .expect("add shape mismatch")
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;

    fn sub(self, rhs: &Tensor) -> Tensor {
        self.try_zip(rhs, "sub", |a, b| a - b)
            .expect("sub shape mismatch")
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;

    fn mul(self, rhs: &Tensor) -> Tensor {
        self.try_zip(rhs, "mul", |a, b| a * b)
            .expect("mul shape mismatch")
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.numel() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, ... ; n={}])",
                self.data[0],
                self.data[1],
                self.numel()
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn construction_basics() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 2.5);
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let mut rng = Rng64::new(7);
        let a = Tensor::rand_uniform(&[3, 3], -1.0, 1.0, &mut rng);
        let i = Tensor::eye(3);
        let prod = a.matmul(&i);
        for (x, y) in prod.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = Rng64::new(3);
        let a = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let fast = a.matmul_transb(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = Rng64::new(4);
        let a = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng);
        let fast = a.matmul_transa(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(11);
        let a = Tensor::rand_uniform(&[3, 7], -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let b = a.reshape(&[2, 6]);
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.try_reshape(&[5, 5]).is_err());
    }

    #[test]
    fn gather_rows_selects() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.shape().dims(), &[2, 3]);
        assert_eq!(g.row(0), &[6.0, 7.0, 8.0]);
        assert_eq!(g.row(1), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), 2);
        assert!((a.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_operators() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[16.0, 32.0]);
        let d = &c - &b;
        assert_eq!(d.as_slice(), a.as_slice());
        let e = &a * &b;
        assert_eq!(e.as_slice(), &[60.0, 240.0]);
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut a = Tensor::zeros(&[2, 3, 4]);
        a.set(&[1, 2, 3], 42.0);
        assert_eq!(a.at(&[1, 2, 3]), 42.0);
        assert_eq!(a.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn randn_has_plausible_moments() {
        let mut rng = Rng64::new(5);
        let a = Tensor::randn(&[10_000], 1.0, 2.0, &mut rng);
        let m = a.mean();
        let var = a.as_slice().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / 10_000.0;
        assert!((m - 1.0).abs() < 0.1, "mean {m}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Tensor::ones(&[3]);
        assert!(a.is_finite());
        a.as_mut_slice()[1] = f32::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros(&[2])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100])).is_empty());
    }
}
