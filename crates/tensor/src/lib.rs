//! Dense `f32` tensors and the small linear-algebra toolkit used throughout
//! the NeSSA reproduction.
//!
//! The crate is deliberately minimal: row-major dense storage, shape-checked
//! operations, a fast path for the 2-D matrix products that dominate both
//! training ([`matmul`]) and coreset selection ([`pairwise_sq_dists`]), plus a
//! seeded random-number layer ([`rng`]) so that every experiment in the
//! reproduction is deterministic.
//!
//! # Example
//!
//! ```
//! use nessa_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```
//!
//! [`matmul`]: Tensor::matmul
//! [`pairwise_sq_dists`]: crate::linalg::pairwise_sq_dists

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shape;
mod tensor;

pub mod approx;
pub mod linalg;
pub mod ops;
pub mod rng;

pub use shape::{Shape, ShapeError};
pub use tensor::Tensor;
