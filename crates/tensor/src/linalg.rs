//! Distance and similarity kernels used by the coreset-selection algorithms.
//!
//! The facility-location objective (NeSSA Eq. 5) and the k-centers baseline
//! both reduce to operations over the pairwise Euclidean structure of a set
//! of feature/gradient rows; this module provides those kernels with the
//! `‖a‖² + ‖b‖² − 2a·b` expansion so the inner loop is a single matrix
//! product.

use crate::Tensor;

/// All pairwise squared Euclidean distances between the rows of `x`
/// (`n × d`), returned as an `n × n` tensor.
///
/// Uses the Gram-matrix expansion; tiny negative values from floating-point
/// cancellation are clamped to zero and the diagonal is exactly zero.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn pairwise_sq_dists(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "pairwise_sq_dists requires a 2-D tensor");
    let n = x.dim(0);
    let gram = x.matmul_transb(x);
    let sq: Vec<f32> = (0..n).map(|i| gram.at(&[i, i])).collect();
    let mut out = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = sq[i] + sq[j] - 2.0 * gram.at(&[i, j]);
            out.set(&[i, j], d.max(0.0));
        }
    }
    out
}

/// Squared Euclidean distances from every row of `x` (`n × d`) to every row
/// of `centers` (`k × d`), returned as `n × k`.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the feature dimensions differ.
pub fn cross_sq_dists(x: &Tensor, centers: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "cross_sq_dists requires 2-D inputs");
    assert_eq!(centers.ndim(), 2, "cross_sq_dists requires 2-D inputs");
    assert_eq!(
        x.dim(1),
        centers.dim(1),
        "feature dimensions differ: {} vs {}",
        x.dim(1),
        centers.dim(1)
    );
    let (n, k) = (x.dim(0), centers.dim(0));
    let dots = x.matmul_transb(centers);
    let xs: Vec<f32> = (0..n)
        .map(|i| x.row(i).iter().map(|v| v * v).sum())
        .collect();
    let cs: Vec<f32> = (0..k)
        .map(|j| centers.row(j).iter().map(|v| v * v).sum())
        .collect();
    let mut out = Tensor::zeros(&[n, k]);
    for (i, &xi) in xs.iter().enumerate() {
        let row = out.row_mut(i);
        for (j, r) in row.iter_mut().enumerate() {
            *r = (xi + cs[j] - 2.0 * dots.at(&[i, j])).max(0.0);
        }
    }
    out
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist requires equal lengths");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Cosine similarity between two vectors (`0.0` when either is all-zero).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity requires equal lengths");
    let dot: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Frobenius-norm relative error `‖a − b‖ / ‖a‖` (`0.0` when both empty or
/// `a` is all-zero and `b == a`).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(a: &Tensor, b: &Tensor) -> f32 {
    let diff = a
        .try_zip(b, "relative_error", |x, y| x - y)
        .expect("relative_error shape mismatch");
    let na = a.norm();
    if na == 0.0 {
        if diff.norm() == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        diff.norm() / na
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn pairwise_matches_naive() {
        let mut rng = Rng64::new(1);
        let x = Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let d = pairwise_sq_dists(&x);
        for i in 0..6 {
            for j in 0..6 {
                let naive = sq_dist(x.row(i), x.row(j));
                assert!(
                    (d.at(&[i, j]) - naive).abs() < 1e-4,
                    "({i},{j}): {} vs {naive}",
                    d.at(&[i, j])
                );
            }
        }
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let mut rng = Rng64::new(2);
        let x = Tensor::rand_uniform(&[8, 3], -2.0, 2.0, &mut rng);
        let d = pairwise_sq_dists(&x);
        for i in 0..8 {
            assert_eq!(d.at(&[i, i]), 0.0);
            for j in 0..8 {
                assert!((d.at(&[i, j]) - d.at(&[j, i])).abs() < 1e-5);
                assert!(d.at(&[i, j]) >= 0.0);
            }
        }
    }

    #[test]
    fn cross_matches_naive() {
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng);
        let d = cross_sq_dists(&x, &c);
        for i in 0..5 {
            for j in 0..3 {
                let naive = sq_dist(x.row(i), c.row(j));
                assert!((d.at(&[i, j]) - naive).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature dimensions differ")]
    fn cross_rejects_dim_mismatch() {
        let _ = cross_sq_dists(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 4]));
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(relative_error(&a, &b), 0.0);
        let c = Tensor::from_slice(&[0.0, 4.0]);
        assert!((relative_error(&a, &c) - 3.0 / 5.0).abs() < 1e-6);
    }
}
