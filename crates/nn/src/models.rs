//! Networks: a sequential container, residual blocks, and the model
//! builders used by the paper (ResNet-20/18/50-style nets and MLPs).

use crate::layers::{
    BatchNorm2d, Bottleneck, Conv2d, GlobalAvgPool, Layer, Linear, Param, Relu, ToImage,
};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// The last layer of every classifier built in this crate is a [`Linear`]
/// head, which lets [`Network::forward_with_features`] expose the
/// penultimate activations — the feature vectors from which NeSSA's
/// selection model computes its gradient proxies.
pub struct Network {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    cached_features: Option<Tensor>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Network(name={:?}, layers={:?})", self.name, names)
    }
}

impl Network {
    /// Creates an empty network with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
            cached_features: None,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// The network's name (e.g. `"resnet20"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Full forward pass.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        let last = self.layers.len().saturating_sub(1);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if i == last {
                self.cached_features = Some(h.clone());
            }
            h = layer.forward(&h, train);
        }
        h
    }

    /// Forward pass that also returns the penultimate activations
    /// (the input to the final layer).
    ///
    /// Returns `(features, logits)`.
    pub fn forward_with_features(&mut self, x: &Tensor, train: bool) -> (Tensor, Tensor) {
        let logits = self.forward(x, train);
        let features = self
            .cached_features
            .clone()
            .expect("forward_with_features on an empty network");
        (features, logits)
    }

    /// Full backward pass; returns the gradient with respect to the input.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every parameter of every layer, in order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }

    /// Forward FLOPs per sample summed over layers (conv layers report their
    /// spatial extent only after a first forward pass).
    pub fn flops_per_sample(&self) -> u64 {
        self.layers.iter().map(|l| l.flops_per_sample()).sum()
    }

    /// Snapshot of all parameter values, in visiting order.
    pub fn export_weights(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores parameter values from a snapshot taken by
    /// [`Network::export_weights`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has the wrong length or any shape differs.
    pub fn import_weights(&mut self, weights: &[Tensor]) {
        let mut i = 0;
        self.visit_params(&mut |p| {
            assert!(i < weights.len(), "weight snapshot too short");
            assert_eq!(
                p.value.shape(),
                weights[i].shape(),
                "weight {i} shape mismatch"
            );
            p.value = weights[i].clone();
            i += 1;
        });
        assert_eq!(i, weights.len(), "weight snapshot too long");
    }

    /// Predicted class per row (eval-mode forward + argmax).
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let logits = self.forward(x, false);
        let (n, c) = (logits.dim(0), logits.dim(1));
        (0..n)
            .map(|i| {
                let row = logits.row(i);
                let mut best = 0;
                for j in 1..c {
                    if row[j] > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

/// A pre-activationless basic residual block:
/// `relu(bn2(conv2(relu(bn1(conv1 x)))) + shortcut(x))`.
///
/// When `stride > 1` or the channel count changes, the shortcut is a
/// 1×1 strided convolution followed by batch-norm, as in ResNet.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    cached_input: Option<Tensor>,
    cached_preact: Option<Tensor>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ResidualBlock(projected_shortcut={})",
            self.shortcut.is_some()
        )
    }
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_ch` to `out_ch` channels with the
    /// given stride on the first convolution.
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng64) -> Self {
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some((
                Conv2d::new(in_ch, out_ch, 1, stride, 0, rng),
                BatchNorm2d::new(out_ch),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(in_ch, out_ch, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_ch),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_ch, out_ch, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_ch),
            shortcut,
            cached_input: None,
            cached_preact: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.conv1.forward(x, train);
        h = self.bn1.forward(&h, train);
        h = self.relu1.forward(&h, train);
        h = self.conv2.forward(&h, train);
        h = self.bn2.forward(&h, train);
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        let preact = &h + &skip;
        self.cached_input = Some(x.clone());
        self.cached_preact = Some(preact.clone());
        preact.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let preact = self
            .cached_preact
            .as_ref()
            .expect("ResidualBlock::backward before forward");
        // Through the final ReLU.
        let g = grad_out
            .try_zip(
                preact,
                "resblock-relu",
                |g, p| if p > 0.0 { g } else { 0.0 },
            )
            .expect("resblock gradient shape mismatch");
        // Main branch.
        let mut gb = self.bn2.backward(&g);
        gb = self.conv2.backward(&gb);
        gb = self.relu1.backward(&gb);
        gb = self.bn1.backward(&gb);
        gb = self.conv1.backward(&gb);
        // Shortcut branch.
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g);
                conv.backward(&t)
            }
            None => g,
        };
        &gb + &gs
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn flops_per_sample(&self) -> u64 {
        let mut n = self.conv1.flops_per_sample() + self.conv2.flops_per_sample();
        if let Some((conv, _)) = &self.shortcut {
            n += conv.flops_per_sample();
        }
        n
    }

    fn name(&self) -> &'static str {
        "resblock"
    }
}

/// Builds an MLP with ReLU between consecutive [`Linear`] layers.
///
/// `sizes` lists layer widths including input and output, so
/// `&[784, 128, 10]` builds `Linear(784→128) → ReLU → Linear(128→10)`.
///
/// # Panics
///
/// Panics if fewer than two sizes are given.
pub fn mlp(sizes: &[usize], rng: &mut Rng64) -> Network {
    assert!(
        sizes.len() >= 2,
        "mlp needs at least input and output sizes"
    );
    let mut net = Network::new(format!("mlp{sizes:?}"));
    for i in 0..sizes.len() - 1 {
        net.push(Linear::new(sizes[i], sizes[i + 1], rng));
        if i + 2 < sizes.len() {
            net.push(Relu::new());
        }
    }
    net
}

/// Configuration for a scaled residual classifier.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Input channels (3 for RGB-like data).
    pub in_channels: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Base width (16 in the paper's ResNet-20; smaller in tests).
    pub width: usize,
    /// Residual blocks per stage; the stage widths are
    /// `width, 2*width, 4*width, ...`.
    pub blocks_per_stage: Vec<usize>,
}

impl ResNetConfig {
    /// ResNet-20 shape (3 stages × 3 blocks) at a given width.
    pub fn resnet20(in_channels: usize, classes: usize, width: usize) -> Self {
        Self {
            in_channels,
            classes,
            width,
            blocks_per_stage: vec![3, 3, 3],
        }
    }

    /// ResNet-18 shape (4 stages × 2 blocks) at a given width.
    pub fn resnet18(in_channels: usize, classes: usize, width: usize) -> Self {
        Self {
            in_channels,
            classes,
            width,
            blocks_per_stage: vec![2, 2, 2, 2],
        }
    }

    /// ResNet-50 *shape* (4 stages, 3/4/6/3 blocks) at a given width, built
    /// from basic blocks. The paper's ResNet-50 uses bottleneck blocks; the
    /// basic-block variant preserves depth/stage structure at reproduction
    /// scale (documented substitution, DESIGN.md §2).
    pub fn resnet50(in_channels: usize, classes: usize, width: usize) -> Self {
        Self {
            in_channels,
            classes,
            width,
            blocks_per_stage: vec![3, 4, 6, 3],
        }
    }
}

/// Builds a residual classifier from a [`ResNetConfig`].
pub fn resnet(config: &ResNetConfig, rng: &mut Rng64) -> Network {
    let mut net = Network::new(format!(
        "resnet(w={}, stages={:?})",
        config.width, config.blocks_per_stage
    ));
    // Stem.
    net.push(Conv2d::new(config.in_channels, config.width, 3, 1, 1, rng));
    net.push(BatchNorm2d::new(config.width));
    net.push(Relu::new());
    // Stages.
    let mut in_ch = config.width;
    for (s, &blocks) in config.blocks_per_stage.iter().enumerate() {
        let out_ch = config.width << s;
        for b in 0..blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            net.push(ResidualBlock::new(in_ch, out_ch, stride, rng));
            in_ch = out_ch;
        }
    }
    // Head.
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(in_ch, config.classes, rng));
    net
}

/// Builds a ResNet-50-style classifier from bottleneck blocks
/// (stages 3/4/6/3, expansion 4), scaled by `width` — the expanded stage
/// widths are `4·width, 8·width, 16·width, 32·width` (the real ResNet-50
/// is `width = 64`).
pub fn resnet_bottleneck(
    in_channels: usize,
    classes: usize,
    width: usize,
    rng: &mut Rng64,
) -> Network {
    let mut net = Network::new(format!("resnet50-style(w={width})"));
    net.push(Conv2d::new(in_channels, width, 3, 1, 1, rng));
    net.push(BatchNorm2d::new(width));
    net.push(Relu::new());
    let mut in_ch = width;
    for (s, &blocks) in [3usize, 4, 6, 3].iter().enumerate() {
        let out_ch = (width * 4) << s;
        for b in 0..blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            net.push(Bottleneck::new(in_ch, out_ch, stride, 4, rng));
            in_ch = out_ch;
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(in_ch, classes, rng));
    net
}

/// Builds a small convolutional classifier (stem + pool + head) for cheap
/// tests and examples where a full residual net is overkill.
pub fn small_cnn(in_channels: usize, classes: usize, width: usize, rng: &mut Rng64) -> Network {
    let mut net = Network::new("small_cnn");
    net.push(Conv2d::new(in_channels, width, 3, 1, 1, rng));
    net.push(BatchNorm2d::new(width));
    net.push(Relu::new());
    net.push(MaxPool2Wrapper::new());
    net.push(Conv2d::new(width, 2 * width, 3, 1, 1, rng));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(2 * width, classes, rng));
    net
}

/// Like [`small_cnn`], but consuming flat `[n, c*h*w]` feature rows (the
/// layout datasets use) via a leading [`ToImage`] adapter — the form the
/// NeSSA pipeline and policy runner accept directly.
pub fn small_cnn_on_flat(
    (c, h, w): (usize, usize, usize),
    classes: usize,
    width: usize,
    rng: &mut Rng64,
) -> Network {
    let mut net = Network::new("small_cnn_on_flat");
    net.push(ToImage::new(c, h, w));
    net.push(Conv2d::new(c, width, 3, 1, 1, rng));
    net.push(BatchNorm2d::new(width));
    net.push(Relu::new());
    net.push(Conv2d::new(width, 2 * width, 3, 2, 1, rng));
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Linear::new(2 * width, classes, rng));
    net
}

// MaxPool2 lives in layers::pool; tiny wrapper purely to keep the import
// surface of `small_cnn` local.
use crate::layers::MaxPool2 as MaxPool2Wrapper;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn mlp_shapes() {
        let mut rng = Rng64::new(0);
        let mut net = mlp(&[8, 16, 4], &mut rng);
        let x = Tensor::randn(&[5, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.shape().dims(), &[5, 4]);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn forward_with_features_exposes_penultimate() {
        let mut rng = Rng64::new(1);
        let mut net = mlp(&[6, 12, 3], &mut rng);
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let (feats, logits) = net.forward_with_features(&x, false);
        assert_eq!(feats.shape().dims(), &[4, 12]);
        assert_eq!(logits.shape().dims(), &[4, 3]);
    }

    #[test]
    fn export_import_round_trip() {
        let mut rng = Rng64::new(2);
        let mut a = mlp(&[4, 8, 2], &mut rng);
        let mut b = mlp(&[4, 8, 2], &mut rng);
        let w = a.export_weights();
        b.import_weights(&w);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn import_rejects_wrong_shapes() {
        let mut rng = Rng64::new(3);
        let mut a = mlp(&[4, 8, 2], &mut rng);
        let mut w = a.export_weights();
        w[0] = Tensor::zeros(&[1, 1]);
        a.import_weights(&w);
    }

    #[test]
    fn residual_block_identity_path_shape() {
        let mut rng = Rng64::new(4);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        let x = Tensor::randn(&[2, 4, 6, 6], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 4, 6, 6]);
        let g = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn residual_block_downsample_shape() {
        let mut rng = Rng64::new(5);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng);
        let x = Tensor::randn(&[2, 4, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 8, 4, 4]);
    }

    #[test]
    fn resnet20_config_builds_and_runs() {
        let mut rng = Rng64::new(6);
        let cfg = ResNetConfig::resnet20(3, 10, 4);
        let mut net = resnet(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 10]);
        assert!(net.param_count() > 0);
        assert!(net.flops_per_sample() > 0);
    }

    #[test]
    fn resnet_variants_have_expected_depth() {
        assert_eq!(
            ResNetConfig::resnet20(3, 10, 16).blocks_per_stage,
            vec![3, 3, 3]
        );
        assert_eq!(
            ResNetConfig::resnet18(3, 10, 16).blocks_per_stage,
            vec![2, 2, 2, 2]
        );
        assert_eq!(
            ResNetConfig::resnet50(3, 100, 16).blocks_per_stage,
            vec![3, 4, 6, 3]
        );
    }

    #[test]
    fn tiny_net_learns_a_separable_problem() {
        // Two well-separated Gaussian blobs; a tiny MLP should fit quickly.
        let mut rng = Rng64::new(7);
        let n = 60;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let centre = if class == 0 { -2.0 } else { 2.0 };
            xs.push(rng.normal(centre, 0.5));
            xs.push(rng.normal(centre, 0.5));
            ys.push(class);
        }
        let x = Tensor::from_vec(xs, &[n, 2]);
        let mut net = mlp(&[2, 8, 2], &mut rng);
        let mut opt = crate::optim::Sgd::new(crate::optim::SgdConfig::default());
        for _ in 0..60 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let out = softmax_cross_entropy(&logits, &ys);
            net.backward(&out.grad_logits);
            opt.step(&mut net, 0.1);
        }
        let preds = net.predict(&x);
        let correct = preds.iter().zip(&ys).filter(|(p, y)| p == y).count();
        assert!(correct as f32 / n as f32 > 0.95, "accuracy {correct}/{n}");
    }

    #[test]
    fn bottleneck_resnet_builds_and_backprops() {
        let mut rng = Rng64::new(10);
        let mut net = resnet_bottleneck(3, 7, 2, &mut rng);
        let x = Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 7]);
        let g = net.backward(&Tensor::ones(&[1, 7]));
        assert_eq!(g.shape().dims(), x.shape().dims());
        // 16 bottleneck blocks + stem(3) + head(2).
        assert_eq!(net.len(), 21);
    }

    #[test]
    fn small_cnn_runs() {
        let mut rng = Rng64::new(8);
        let mut net = small_cnn(3, 5, 4, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 5]);
        let g = net.backward(&Tensor::ones(&[2, 5]));
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn debug_shows_layers() {
        let mut rng = Rng64::new(9);
        let net = mlp(&[2, 2], &mut rng);
        assert!(format!("{net:?}").contains("linear"));
    }
}
