//! The model zoo behind the paper's Figure 1.
//!
//! Figure 1 plots the per-epoch ImageNet-1k training time of the
//! state-of-the-art image classifier of each year on an A100. The zoo
//! records each model's published forward FLOPs per image and parameter
//! count; the cost model in [`crate::cost`] turns those into epoch times.

use crate::cost::{epoch_time, DeviceSpec, EpochTime, LoaderSpec};

/// ImageNet-1k training-set size used throughout Figure 1.
pub const IMAGENET_1K_TRAIN: u64 = 1_281_167;

/// Mean stored JPEG size per ImageNet image in bytes (≈110 KB).
pub const IMAGENET_BYTES_PER_IMAGE: u64 = 110_000;

/// A published image-classification model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZooEntry {
    /// Model name.
    pub name: &'static str,
    /// Year of publication.
    pub year: u32,
    /// Forward FLOPs per image at the model's native resolution.
    pub forward_flops: u64,
    /// Parameter count.
    pub params: u64,
}

impl ZooEntry {
    /// Training epoch time on `device` over ImageNet-1k.
    pub fn imagenet_epoch_time(&self, device: &DeviceSpec) -> EpochTime {
        epoch_time(
            device,
            &LoaderSpec::conventional_host(),
            IMAGENET_1K_TRAIN,
            3 * self.forward_flops,
            IMAGENET_BYTES_PER_IMAGE,
        )
    }
}

/// One representative state-of-the-art classifier per generation,
/// 2012–2021, with published FLOP/parameter figures.
pub fn imagenet_models() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "AlexNet",
            year: 2012,
            forward_flops: 1_400_000_000,
            params: 61_000_000,
        },
        ZooEntry {
            name: "VGG-16",
            year: 2014,
            forward_flops: 31_000_000_000,
            params: 138_000_000,
        },
        ZooEntry {
            name: "GoogLeNet",
            year: 2014,
            forward_flops: 3_000_000_000,
            params: 6_800_000,
        },
        ZooEntry {
            name: "ResNet-50",
            year: 2015,
            forward_flops: 8_200_000_000,
            params: 25_600_000,
        },
        ZooEntry {
            name: "ResNet-152",
            year: 2016,
            forward_flops: 23_000_000_000,
            params: 60_200_000,
        },
        ZooEntry {
            name: "DenseNet-201",
            year: 2017,
            forward_flops: 8_600_000_000,
            params: 20_000_000,
        },
        ZooEntry {
            name: "SENet-154",
            year: 2018,
            forward_flops: 41_400_000_000,
            params: 115_000_000,
        },
        ZooEntry {
            name: "EfficientNet-B7",
            year: 2019,
            forward_flops: 74_000_000_000,
            params: 66_000_000,
        },
        ZooEntry {
            name: "ViT-L/16",
            year: 2020,
            forward_flops: 123_000_000_000,
            params: 307_000_000,
        },
        ZooEntry {
            name: "ViT-H/14",
            year: 2021,
            forward_flops: 334_000_000_000,
            params: 632_000_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_chronological() {
        let zoo = imagenet_models();
        assert!(zoo.windows(2).all(|w| w[0].year <= w[1].year));
        assert_eq!(zoo.first().unwrap().name, "AlexNet");
    }

    #[test]
    fn epoch_time_rises_by_generations() {
        // The paper's Figure 1 shows an exponential rise in per-epoch time:
        // the 2021 model should cost well over 10× the 2012 one.
        let zoo = imagenet_models();
        let d = DeviceSpec::a100();
        let first = zoo.first().unwrap().imagenet_epoch_time(&d).total_s();
        let last = zoo.last().unwrap().imagenet_epoch_time(&d).total_s();
        assert!(last > 10.0 * first, "first {first}s, last {last}s");
    }

    #[test]
    fn alexnet_epoch_is_minutes_not_days() {
        let d = DeviceSpec::a100();
        let t = imagenet_models()[0].imagenet_epoch_time(&d).total_s();
        assert!(t > 60.0 && t < 3600.0, "AlexNet epoch {t}s");
    }
}
