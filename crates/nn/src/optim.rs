//! SGD with Nesterov momentum and the paper's learning-rate schedule.
//!
//! The paper trains every model with batch size 128, initial learning rate
//! 0.1 divided by 5 at epochs 60/120/160 (of 200), weight decay `5e-4`, and
//! Nesterov momentum 0.9 (§4.1). [`SgdConfig::default`] encodes those
//! hyper-parameters; [`MultiStepLr::paper_schedule`] encodes the schedule,
//! scaling the milestones when an experiment runs fewer epochs.

use crate::models::Network;
use nessa_tensor::Tensor;

/// Hyper-parameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Momentum coefficient (paper: 0.9).
    pub momentum: f32,
    /// L2 weight decay (paper: 5e-4), applied to parameters whose
    /// [`Param::decay`](crate::layers::Param::decay) flag is set.
    pub weight_decay: f32,
    /// Use Nesterov momentum (paper: yes).
    pub nesterov: bool,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            momentum: 0.9,
            weight_decay: 5e-4,
            nesterov: true,
        }
    }
}

/// Stochastic gradient descent with (Nesterov) momentum and weight decay.
///
/// The update follows the standard formulation: with gradient `g` (weight
/// decay folded in), velocity `v ← μv + g`, and step `g + μv` under
/// Nesterov or `v` otherwise.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer; velocity buffers are allocated lazily on the
    /// first [`Sgd::step`].
    pub fn new(config: SgdConfig) -> Self {
        Self {
            config,
            velocity: Vec::new(),
        }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Applies one update to every parameter of `net` using the gradients
    /// accumulated by the most recent backward pass, then leaves gradients
    /// untouched (call [`Network::zero_grad`] before the next pass).
    pub fn step(&mut self, net: &mut Network, lr: f32) {
        let cfg = self.config;
        let velocity = &mut self.velocity;
        let mut i = 0;
        net.visit_params(&mut |p| {
            if velocity.len() <= i {
                velocity.push(Tensor::zeros(p.value.shape().dims()));
            }
            let v = &mut velocity[i];
            // g = grad (+ wd * w)
            let mut g = p.grad.clone();
            if cfg.weight_decay != 0.0 && p.decay {
                g.axpy(cfg.weight_decay, &p.value);
            }
            // v = μv + g
            v.scale_inplace(cfg.momentum);
            *v += &g;
            // step = g + μv (Nesterov) or v
            if cfg.nesterov {
                g.axpy(cfg.momentum, v);
                p.value.axpy(-lr, &g);
            } else {
                p.value.axpy(-lr, v);
            }
            i += 1;
        });
    }

    /// Clears the momentum buffers (used when the parameter set changes).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// A multi-step learning-rate schedule: `base_lr` multiplied by `gamma`
/// after each milestone epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStepLr {
    base_lr: f32,
    gamma: f32,
    milestones: Vec<usize>,
}

impl MultiStepLr {
    /// Creates a schedule from explicit milestones.
    pub fn new(base_lr: f32, gamma: f32, milestones: Vec<usize>) -> Self {
        Self {
            base_lr,
            gamma,
            milestones,
        }
    }

    /// The paper's schedule — LR 0.1 divided by 5 at epochs 60/120/160 of
    /// 200 — rescaled proportionally to `total_epochs`.
    pub fn paper_schedule(total_epochs: usize) -> Self {
        let scale = |m: usize| m * total_epochs / 200;
        Self::new(0.1, 0.2, vec![scale(60), scale(120), scale(160)])
    }

    /// Replaces the base learning rate, keeping gamma and milestones
    /// (models far from the paper's ResNet scale need a different
    /// starting point on the same decay shape).
    pub fn with_base_lr(mut self, base_lr: f32) -> Self {
        self.base_lr = base_lr;
        self
    }

    /// Learning rate for a (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.gamma.powi(passed as i32)
    }
}

/// Cosine-annealing learning-rate schedule: `base_lr` decayed to
/// `min_lr` over `total_epochs` along a half cosine. Provided as the
/// standard modern alternative to the paper's multi-step schedule for the
/// ablation benches.
#[derive(Debug, Clone, PartialEq)]
pub struct CosineLr {
    base_lr: f32,
    min_lr: f32,
    total_epochs: usize,
}

impl CosineLr {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs == 0` or `min_lr > base_lr`.
    pub fn new(base_lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "need at least one epoch");
        assert!(min_lr <= base_lr, "min_lr must not exceed base_lr");
        Self {
            base_lr,
            min_lr,
            total_epochs,
        }
    }

    /// Learning rate for a (0-based) epoch; clamps past the horizon.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs - 1)) as f32 / (self.total_epochs - 1).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cos
    }
}

/// Clips every parameter gradient of `net` to `[-limit, limit]`
/// elementwise; call between `backward` and [`Sgd::step`] when training
/// with large medoid weights.
///
/// # Panics
///
/// Panics if `limit` is not positive.
pub fn clip_gradients(net: &mut Network, limit: f32) {
    assert!(limit > 0.0, "clip limit must be positive");
    net.visit_params(&mut |p| {
        nessa_tensor::ops::clip_inplace(&mut p.grad, limit);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use nessa_tensor::rng::Rng64;
    use nessa_tensor::Tensor;

    #[test]
    fn cosine_schedule_endpoints_and_monotone() {
        let s = CosineLr::new(0.1, 0.001, 100);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(99) - 0.001).abs() < 1e-6);
        assert!((s.lr_at(500) - 0.001).abs() < 1e-6);
        for e in 1..100 {
            assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-7);
        }
        // Halfway sits near the midpoint.
        let mid = s.lr_at(50);
        assert!((mid - 0.0505).abs() < 0.01, "mid {mid}");
    }

    #[test]
    fn with_base_lr_rescales_but_keeps_decay_shape() {
        let paper = MultiStepLr::paper_schedule(200);
        let scaled = MultiStepLr::paper_schedule(200).with_base_lr(0.02);
        assert!((scaled.lr_at(0) - 0.02).abs() < 1e-9);
        for e in [0, 59, 60, 119, 120, 159, 160, 199] {
            // Same decay multiplier at every epoch: ratio stays 0.02 / 0.1.
            let ratio = scaled.lr_at(e) / paper.lr_at(e);
            assert!((ratio - 0.2).abs() < 1e-6, "epoch {e}: ratio {ratio}");
        }
    }

    #[test]
    fn clip_gradients_bounds_all_entries() {
        let mut rng = Rng64::new(0);
        let mut net = mlp(&[4, 4, 2], &mut rng);
        net.visit_params(&mut |p| {
            p.grad = Tensor::full(p.value.shape().dims(), 100.0);
        });
        clip_gradients(&mut net, 0.5);
        net.visit_params(&mut |p| {
            assert!(p.grad.as_slice().iter().all(|&g| g.abs() <= 0.5));
        });
    }

    /// One-parameter quadratic: loss = 0.5 * w²; gradient = w.
    fn quadratic_step(net: &mut Network, opt: &mut Sgd, lr: f32) -> f32 {
        let mut w0 = 0.0;
        net.zero_grad();
        net.visit_params(&mut |p| {
            if p.value.ndim() == 2 {
                w0 = p.value.as_slice()[0];
                p.grad = p.value.clone();
            }
        });
        opt.step(net, lr);
        w0
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut rng = Rng64::new(0);
        let mut net = mlp(&[1, 1], &mut rng);
        let mut opt = Sgd::new(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.0,
            nesterov: false,
        });
        let mut prev = f32::INFINITY;
        for _ in 0..30 {
            let w = quadratic_step(&mut net, &mut opt, 0.1).abs();
            assert!(w <= prev + 1e-6);
            prev = w;
        }
        assert!(prev < 0.1);
    }

    #[test]
    fn plain_momentum_matches_hand_rolled_update() {
        let mut rng = Rng64::new(1);
        let mut net = mlp(&[1, 1], &mut rng);
        let mut opt = Sgd::new(SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            nesterov: false,
        });
        let mut w = 0.0;
        net.visit_params(&mut |p| {
            if p.value.ndim() == 2 {
                w = p.value.as_slice()[0];
            }
        });
        let mut v = 0.0f32;
        let mut w_ref = w;
        for _ in 0..5 {
            let g = w_ref; // quadratic gradient
            v = 0.9 * v + g;
            w_ref -= 0.05 * v;
            quadratic_step(&mut net, &mut opt, 0.05);
        }
        let mut w_actual = 0.0;
        net.visit_params(&mut |p| {
            if p.value.ndim() == 2 {
                w_actual = p.value.as_slice()[0];
            }
        });
        assert!((w_actual - w_ref).abs() < 1e-5, "{w_actual} vs {w_ref}");
    }

    #[test]
    fn nesterov_differs_from_plain_momentum() {
        let mut rng = Rng64::new(2);
        let mut a = mlp(&[1, 1], &mut rng);
        let mut b = mlp(&[1, 1], &mut rng);
        // Give both nets identical weights.
        let w = a.export_weights();
        b.import_weights(&w);
        let mut oa = Sgd::new(SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            nesterov: true,
        });
        let mut ob = Sgd::new(SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            nesterov: false,
        });
        for _ in 0..3 {
            quadratic_step(&mut a, &mut oa, 0.05);
            quadratic_step(&mut b, &mut ob, 0.05);
        }
        let (mut wa, mut wb) = (0.0, 0.0);
        a.visit_params(&mut |p| {
            if p.value.ndim() == 2 {
                wa = p.value.as_slice()[0];
            }
        });
        b.visit_params(&mut |p| {
            if p.value.ndim() == 2 {
                wb = p.value.as_slice()[0];
            }
        });
        assert!((wa - wb).abs() > 1e-7);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = Rng64::new(3);
        let mut net = mlp(&[2, 2], &mut rng);
        let before: f32 = net.export_weights().iter().map(Tensor::sq_norm).sum();
        let mut opt = Sgd::new(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.1,
            nesterov: false,
        });
        net.zero_grad();
        opt.step(&mut net, 0.5);
        let after: f32 = net.export_weights().iter().map(Tensor::sq_norm).sum();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn paper_schedule_divides_by_five() {
        let s = MultiStepLr::paper_schedule(200);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(59) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(60) - 0.02).abs() < 1e-7);
        assert!((s.lr_at(120) - 0.004).abs() < 1e-7);
        assert!((s.lr_at(160) - 0.0008).abs() < 1e-7);
        assert!((s.lr_at(199) - 0.0008).abs() < 1e-7);
    }

    #[test]
    fn paper_schedule_rescales() {
        let s = MultiStepLr::paper_schedule(50);
        // Milestones 15/30/40.
        assert!((s.lr_at(14) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(15) - 0.02).abs() < 1e-7);
        assert!((s.lr_at(40) - 0.0008).abs() < 1e-7);
    }
}
