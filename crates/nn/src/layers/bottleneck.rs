//! The bottleneck residual block (ResNet-50's building block).

use super::{BatchNorm2d, Conv2d, Layer, Param, Relu};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// A bottleneck residual block:
/// `relu(bn3(conv1x1_expand(relu(bn2(conv3x3(relu(bn1(conv1x1_reduce x))))))) + shortcut(x))`.
///
/// The 3×3 convolution operates at `out_ch / expansion` channels
/// (expansion = 4 in ResNet-50), which is what lets the deep ImageNet
/// models stay affordable. Used by the ResNet-50-style builder in
/// [`crate::models`].
pub struct Bottleneck {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    conv3: Conv2d,
    bn3: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    cached_preact: Option<Tensor>,
}

impl std::fmt::Debug for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Bottleneck(projected_shortcut={})",
            self.shortcut.is_some()
        )
    }
}

impl Bottleneck {
    /// Creates a bottleneck block mapping `in_ch` to `out_ch` channels with
    /// the given stride on the 3×3 convolution and the given expansion
    /// (ResNet-50 uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `expansion == 0` or `out_ch` is not divisible by
    /// `expansion`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        expansion: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(expansion > 0, "expansion must be positive");
        assert_eq!(
            out_ch % expansion,
            0,
            "out_ch {out_ch} must be divisible by expansion {expansion}"
        );
        let mid = out_ch / expansion;
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some((
                Conv2d::new(in_ch, out_ch, 1, stride, 0, rng),
                BatchNorm2d::new(out_ch),
            ))
        } else {
            None
        };
        Self {
            conv1: Conv2d::new(in_ch, mid, 1, 1, 0, rng),
            bn1: BatchNorm2d::new(mid),
            relu1: Relu::new(),
            conv2: Conv2d::new(mid, mid, 3, stride, 1, rng),
            bn2: BatchNorm2d::new(mid),
            relu2: Relu::new(),
            conv3: Conv2d::new(mid, out_ch, 1, 1, 0, rng),
            bn3: BatchNorm2d::new(out_ch),
            shortcut,
            cached_preact: None,
        }
    }
}

impl Layer for Bottleneck {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = self.conv1.forward(x, train);
        h = self.bn1.forward(&h, train);
        h = self.relu1.forward(&h, train);
        h = self.conv2.forward(&h, train);
        h = self.bn2.forward(&h, train);
        h = self.relu2.forward(&h, train);
        h = self.conv3.forward(&h, train);
        h = self.bn3.forward(&h, train);
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        let preact = &h + &skip;
        self.cached_preact = Some(preact.clone());
        preact.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let preact = self
            .cached_preact
            .as_ref()
            .expect("Bottleneck::backward before forward");
        let g = grad_out
            .try_zip(
                preact,
                "bottleneck-relu",
                |g, p| if p > 0.0 { g } else { 0.0 },
            )
            .expect("bottleneck gradient shape mismatch");
        let mut gb = self.bn3.backward(&g);
        gb = self.conv3.backward(&gb);
        gb = self.relu2.backward(&gb);
        gb = self.bn2.backward(&gb);
        gb = self.conv2.backward(&gb);
        gb = self.relu1.backward(&gb);
        gb = self.bn1.backward(&gb);
        gb = self.conv1.backward(&gb);
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g);
                conv.backward(&t)
            }
            None => g,
        };
        &gb + &gs
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        self.conv3.visit_params(f);
        self.bn3.visit_params(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn flops_per_sample(&self) -> u64 {
        let mut n = self.conv1.flops_per_sample()
            + self.conv2.flops_per_sample()
            + self.conv3.flops_per_sample();
        if let Some((conv, _)) = &self.shortcut {
            n += conv.flops_per_sample();
        }
        n
    }

    fn name(&self) -> &'static str {
        "bottleneck"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_path_preserves_shape() {
        let mut rng = Rng64::new(0);
        let mut block = Bottleneck::new(8, 8, 1, 4, &mut rng);
        let x = Tensor::randn(&[2, 8, 6, 6], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 8, 6, 6]);
        let g = block.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn downsample_halves_spatial_and_expands_channels() {
        let mut rng = Rng64::new(1);
        let mut block = Bottleneck::new(8, 16, 2, 4, &mut rng);
        let x = Tensor::randn(&[1, 8, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn bottleneck_is_cheaper_than_basic_at_same_width() {
        use crate::models::ResidualBlock;
        let mut rng = Rng64::new(2);
        let mut bneck = Bottleneck::new(32, 32, 1, 4, &mut rng);
        let mut basic = ResidualBlock::new(32, 32, 1, &mut rng);
        let x = Tensor::randn(&[1, 32, 8, 8], 0.0, 1.0, &mut rng);
        let _ = bneck.forward(&x, true);
        let _ = basic.forward(&x, true);
        assert!(
            bneck.flops_per_sample() < basic.flops_per_sample(),
            "{} !< {}",
            bneck.flops_per_sample(),
            basic.flops_per_sample()
        );
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let mut rng = Rng64::new(3);
        let mut block = Bottleneck::new(4, 8, 2, 4, &mut rng);
        let x = Tensor::randn(&[1, 4, 4, 4], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        let _ = block.backward(&Tensor::ones(y.shape().dims()));
        let mut any_zero_grad_weight = false;
        block.visit_params(&mut |p: &mut Param| {
            if p.value.ndim() == 2 && p.grad.sq_norm() == 0.0 {
                any_zero_grad_weight = true;
            }
        });
        assert!(
            !any_zero_grad_weight,
            "some conv weight received no gradient"
        );
    }

    #[test]
    #[should_panic(expected = "divisible by expansion")]
    fn rejects_bad_expansion() {
        let mut rng = Rng64::new(4);
        let _ = Bottleneck::new(4, 10, 1, 4, &mut rng);
    }
}
