//! 2-D convolution via im2col.

use super::{Layer, Param};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// 2-D convolution over `[n, c, h, w]` activations.
///
/// The kernel is square (`k × k`); implementation lowers each sample to a
/// column matrix (im2col) so the convolution is a single matrix product —
/// the same lowering used by the FPGA selection kernel in `nessa-smartssd`'s
/// resource model.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cached_cols: Vec<Tensor>,
    cached_in_dims: Option<Vec<usize>>,
    cached_out_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with He-normal weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `stride == 0`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(k > 0 && stride > 0, "kernel and stride must be positive");
        let fan_in = in_ch * k * k;
        let std = (2.0 / fan_in as f32).sqrt();
        let weight = Tensor::randn(&[out_ch, fan_in], 0.0, std, rng);
        let bias = Tensor::zeros(&[out_ch]);
        Self {
            weight: Param::new(weight, true),
            bias: Param::new(bias, true),
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            cached_cols: Vec::new(),
            cached_in_dims: None,
            cached_out_hw: (0, 0),
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.k) / self.stride + 1;
        (oh, ow)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    /// Lowers one sample `[c, h, w]` (as a flat slice) to a
    /// `[c*k*k, oh*ow]` column matrix.
    fn im2col(&self, sample: &[f32], h: usize, w: usize) -> Tensor {
        let (oh, ow) = self.out_hw(h, w);
        let rows = self.in_ch * self.k * self.k;
        let cols = oh * ow;
        let mut out = vec![0.0f32; rows * cols];
        for c in 0..self.in_ch {
            let plane = &sample[c * h * w..(c + 1) * h * w];
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let row = (c * self.k + ky) * self.k + kx;
                    let base = row * cols;
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[base + oy * ow + ox] = plane[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[rows, cols])
    }

    /// Scatters a `[c*k*k, oh*ow]` column-gradient back to a `[c, h, w]`
    /// input-gradient slice (the adjoint of [`Conv2d::im2col`]).
    fn col2im(&self, cols_t: &Tensor, h: usize, w: usize, out: &mut [f32]) {
        let (oh, ow) = self.out_hw(h, w);
        let cols = oh * ow;
        let data = cols_t.as_slice();
        for c in 0..self.in_ch {
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let row = (c * self.k + ky) * self.k + kx;
                    let base = row * cols;
                    for oy in 0..oh {
                        let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[c * h * w + iy * w + ix as usize] += data[base + oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "Conv2d expects [n, c, h, w]");
        assert_eq!(x.dim(1), self.in_ch, "Conv2d channel mismatch");
        let (n, h, w) = (x.dim(0), x.dim(2), x.dim(3));
        let (oh, ow) = self.out_hw(h, w);
        let plane = self.in_ch * h * w;
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        self.cached_cols.clear();
        let bias = self.bias.value.as_slice().to_vec();
        for i in 0..n {
            let sample = &x.as_slice()[i * plane..(i + 1) * plane];
            let col = self.im2col(sample, h, w);
            let y = self.weight.value.matmul(&col); // [out_ch, oh*ow]
            let dst =
                &mut out.as_mut_slice()[i * self.out_ch * oh * ow..(i + 1) * self.out_ch * oh * ow];
            for (oc, &b) in bias.iter().enumerate() {
                let src = &y.as_slice()[oc * oh * ow..(oc + 1) * oh * ow];
                let d = &mut dst[oc * oh * ow..(oc + 1) * oh * ow];
                for (dv, &sv) in d.iter_mut().zip(src) {
                    *dv = sv + b;
                }
            }
            self.cached_cols.push(col);
        }
        self.cached_in_dims = Some(x.shape().dims().to_vec());
        self.cached_out_hw = (oh, ow);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_dims = self
            .cached_in_dims
            .clone()
            .expect("Conv2d::backward before forward");
        let (n, h, w) = (in_dims[0], in_dims[2], in_dims[3]);
        let (oh, ow) = self.cached_out_hw;
        assert_eq!(grad_out.shape().dims(), &[n, self.out_ch, oh, ow]);
        let mut grad_in = Tensor::zeros(&in_dims);
        let plane = self.in_ch * h * w;
        for i in 0..n {
            let g = Tensor::from_vec(
                grad_out.as_slice()[i * self.out_ch * oh * ow..(i + 1) * self.out_ch * oh * ow]
                    .to_vec(),
                &[self.out_ch, oh * ow],
            );
            let col = &self.cached_cols[i];
            // dW += g · col^T
            self.weight.grad += &g.matmul_transb(col);
            // db += row sums of g
            for oc in 0..self.out_ch {
                let s: f32 = g.row(oc).iter().sum();
                self.bias.grad.as_mut_slice()[oc] += s;
            }
            // dcol = W^T · g, then scatter.
            let dcol = self.weight.value.matmul_transa(&g);
            self.col2im(
                &dcol,
                h,
                w,
                &mut grad_in.as_mut_slice()[i * plane..(i + 1) * plane],
            );
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn flops_per_sample(&self) -> u64 {
        let (oh, ow) = self.cached_out_hw;
        let spatial = if oh == 0 { 1 } else { (oh * ow) as u64 };
        2 * self.out_ch as u64 * (self.in_ch * self.k * self.k) as u64 * spatial
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::check_input_gradient;
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = Rng64::new(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.visit_params(&mut |p: &mut Param| {
            if p.value.ndim() == 2 {
                p.value = Tensor::ones(&[1, 1]);
            } else {
                p.value = Tensor::zeros(&[1]);
            }
        });
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward(&x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = Rng64::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        conv.visit_params(&mut |p: &mut Param| {
            if p.value.ndim() == 2 {
                // Averaging kernel.
                p.value = Tensor::full(&[1, 9], 1.0);
            } else {
                p.value = Tensor::zeros(&[1]);
            }
        });
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, true);
        // Centre pixel sees all 9 ones; corners see 4.
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0);
    }

    #[test]
    fn stride_two_halves_spatial_size() {
        let mut rng = Rng64::new(1);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor::randn(&[2, 2, 8, 8], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(2);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        check_input_gradient(&mut conv, &x, 2e-2, true);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&Tensor::ones(y.shape().dims()));
        let mut analytic = Vec::new();
        conv.visit_params(&mut |p: &mut Param| analytic.push(p.grad.clone()));
        let eps = 1e-3;
        for wi in 0..9 {
            let perturb = |delta: f32, conv: &mut Conv2d| {
                conv.visit_params(&mut |p: &mut Param| {
                    if p.value.ndim() == 2 {
                        p.value.as_mut_slice()[wi] += delta;
                    }
                });
            };
            perturb(eps, &mut conv);
            let fp = conv.forward(&x, true).sum();
            perturb(-2.0 * eps, &mut conv);
            let fm = conv.forward(&x, true).sum();
            perturb(eps, &mut conv);
            let num = (fp - fm) / (2.0 * eps);
            let ana = analytic[0].as_slice()[wi];
            assert!((num - ana).abs() < 2e-2, "w[{wi}]: numeric {num} vs {ana}");
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = Rng64::new(4);
        let conv = Conv2d::new(2, 1, 3, 2, 1, &mut rng);
        let (h, w) = (5, 5);
        let x = Tensor::randn(&[2 * h * w], 0.0, 1.0, &mut rng);
        let col = conv.im2col(x.as_slice(), h, w);
        let y = Tensor::randn(col.shape().dims(), 0.0, 1.0, &mut rng);
        let lhs = col.dot(&y);
        let mut back = vec![0.0f32; 2 * h * w];
        conv.col2im(&y, h, w, &mut back);
        let rhs: f32 = back.iter().zip(x.as_slice()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn flops_counted_after_forward() {
        let mut rng = Rng64::new(5);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let _ = conv.forward(&x, true);
        // 2 * 8 * 27 * 64
        assert_eq!(conv.flops_per_sample(), 2 * 8 * 27 * 64);
    }
}
