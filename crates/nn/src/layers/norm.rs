//! Batch normalization (1-D over features, 2-D over channels).

use super::{Layer, Param};
use nessa_tensor::Tensor;

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.1;

/// Batch normalization over the feature axis of `[n, f]` activations.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    features: usize,
    cache: Option<BnCache>,
}

/// Batch normalization over the channel axis of `[n, c, h, w]` activations.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    /// Normalized activations x̂, same layout as the input.
    x_hat: Tensor,
    /// Per-group inverse standard deviation.
    inv_std: Vec<f32>,
    /// Number of elements per normalization group (n for 1-D, n*h*w for 2-D).
    group_size: usize,
    in_dims: Vec<usize>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features`-wide rows.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[features]), false),
            beta: Param::new(Tensor::zeros(&[features]), false),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            features,
            cache: None,
        }
    }
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels`-channel feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[channels]), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            cache: None,
        }
    }
}

/// Shared forward: normalizes `groups` interleaved as described by
/// `group_of`, which maps a flat element index to its channel/feature.
#[allow(clippy::too_many_arguments)]
fn bn_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    running_mean: &mut [f32],
    running_var: &mut [f32],
    groups: usize,
    group_of: impl Fn(usize) -> usize,
    train: bool,
    cache: &mut Option<BnCache>,
) -> Tensor {
    let n_elems = x.numel();
    let group_size = n_elems / groups;
    let (mean, var) = if train {
        let mut mean = vec![0.0f32; groups];
        let mut var = vec![0.0f32; groups];
        for (i, &v) in x.as_slice().iter().enumerate() {
            mean[group_of(i)] += v;
        }
        for m in &mut mean {
            *m /= group_size as f32;
        }
        for (i, &v) in x.as_slice().iter().enumerate() {
            let g = group_of(i);
            let d = v - mean[g];
            var[g] += d * d;
        }
        for v in &mut var {
            *v /= group_size as f32;
        }
        for g in 0..groups {
            running_mean[g] = (1.0 - MOMENTUM) * running_mean[g] + MOMENTUM * mean[g];
            running_var[g] = (1.0 - MOMENTUM) * running_var[g] + MOMENTUM * var[g];
        }
        (mean, var)
    } else {
        (running_mean.to_vec(), running_var.to_vec())
    };
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
    let mut x_hat = Tensor::zeros(x.shape().dims());
    let mut out = Tensor::zeros(x.shape().dims());
    let (gs, bs) = (gamma.as_slice(), beta.as_slice());
    for (i, &v) in x.as_slice().iter().enumerate() {
        let g = group_of(i);
        let xh = (v - mean[g]) * inv_std[g];
        x_hat.as_mut_slice()[i] = xh;
        out.as_mut_slice()[i] = gs[g] * xh + bs[g];
    }
    if train {
        *cache = Some(BnCache {
            x_hat,
            inv_std,
            group_size,
            in_dims: x.shape().dims().to_vec(),
        });
    }
    out
}

/// Shared backward using the cached normalized activations.
fn bn_backward(
    grad_out: &Tensor,
    gamma: &Tensor,
    gamma_grad: &mut Tensor,
    beta_grad: &mut Tensor,
    groups: usize,
    group_of: impl Fn(usize) -> usize,
    cache: &BnCache,
) -> Tensor {
    assert_eq!(
        grad_out.shape().dims(),
        cache.in_dims.as_slice(),
        "batch-norm backward shape mismatch"
    );
    let m = cache.group_size as f32;
    // Accumulate per-group sums: sum(dy), sum(dy * x̂).
    let mut sum_dy = vec![0.0f32; groups];
    let mut sum_dy_xhat = vec![0.0f32; groups];
    for (i, &dy) in grad_out.as_slice().iter().enumerate() {
        let g = group_of(i);
        sum_dy[g] += dy;
        sum_dy_xhat[g] += dy * cache.x_hat.as_slice()[i];
    }
    for g in 0..groups {
        gamma_grad.as_mut_slice()[g] += sum_dy_xhat[g];
        beta_grad.as_mut_slice()[g] += sum_dy[g];
    }
    let gs = gamma.as_slice();
    let mut grad_in = Tensor::zeros(&cache.in_dims);
    for (i, &dy) in grad_out.as_slice().iter().enumerate() {
        let g = group_of(i);
        let xh = cache.x_hat.as_slice()[i];
        grad_in.as_mut_slice()[i] =
            gs[g] * cache.inv_std[g] / m * (m * dy - sum_dy[g] - xh * sum_dy_xhat[g]);
    }
    grad_in
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "BatchNorm1d expects [n, f]");
        assert_eq!(x.dim(1), self.features, "BatchNorm1d width mismatch");
        let f = self.features;
        bn_forward(
            x,
            &self.gamma.value,
            &self.beta.value,
            &mut self.running_mean,
            &mut self.running_var,
            f,
            |i| i % f,
            train,
            &mut self.cache,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm1d::backward before forward");
        let f = self.features;
        bn_backward(
            grad_out,
            &self.gamma.value,
            &mut self.gamma.grad,
            &mut self.beta.grad,
            f,
            |i| i % f,
            cache,
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm1d"
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects [n, c, h, w]");
        assert_eq!(x.dim(1), self.channels, "BatchNorm2d channel mismatch");
        let c = self.channels;
        let hw = x.dim(2) * x.dim(3);
        bn_forward(
            x,
            &self.gamma.value,
            &self.beta.value,
            &mut self.running_mean,
            &mut self.running_var,
            c,
            move |i| (i / hw) % c,
            train,
            &mut self.cache,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        let c = self.channels;
        let hw = cache.in_dims[2] * cache.in_dims[3];
        bn_backward(
            grad_out,
            &self.gamma.value,
            &mut self.gamma.grad,
            &mut self.beta.grad,
            c,
            move |i| (i / hw) % c,
            cache,
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::rng::Rng64;

    #[test]
    fn bn1d_normalizes_batch_statistics() {
        let mut rng = Rng64::new(0);
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::randn(&[64, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, true);
        for f in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| y.at(&[i, f])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn bn2d_normalizes_per_channel() {
        let mut rng = Rng64::new(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[8, 2, 4, 4], -3.0, 4.0, &mut rng);
        let y = bn.forward(&x, true);
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..8 {
                for h in 0..4 {
                    for w in 0..4 {
                        vals.push(y.at(&[n, c, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut rng = Rng64::new(2);
        let mut bn = BatchNorm1d::new(2);
        // Warm up the running statistics.
        for _ in 0..200 {
            let x = Tensor::randn(&[32, 2], 10.0, 1.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        let x = Tensor::full(&[4, 2], 10.0);
        let y = bn.forward(&x, false);
        // Inputs at the running mean should normalize to ~0 (γ=1, β=0).
        assert!(y.as_slice().iter().all(|&v| v.abs() < 0.2), "{y:?}");
    }

    #[test]
    fn bn1d_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::randn(&[5, 2], 0.0, 1.0, &mut rng);
        // Loss = sum(y^2)/2 so the gradient actually depends on x (plain sum
        // is killed by mean subtraction).
        let y = bn.forward(&x, true);
        let gin = bn.backward(&y);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = bn.forward(&xp, true).map(|v| v * v * 0.5).sum();
            let fm = bn.forward(&xm, true).map(|v| v * v * 0.5).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = gin.as_slice()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "grad at {i}: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn gamma_beta_not_weight_decayed() {
        let mut bn = BatchNorm2d::new(4);
        let mut decays = Vec::new();
        bn.visit_params(&mut |p: &mut Param| decays.push(p.decay));
        assert_eq!(decays, vec![false, false]);
    }
}
