//! Layers with explicit forward/backward passes.
//!
//! Every layer caches whatever it needs during [`Layer::forward`] and
//! consumes that cache in [`Layer::backward`]; gradients accumulate into
//! [`Param::grad`] and are consumed by the optimizer.

mod bottleneck;
mod conv;
mod norm;
mod pool;

pub use bottleneck::Bottleneck;
pub use conv::Conv2d;
pub use norm::{BatchNorm1d, BatchNorm2d};
pub use pool::{GlobalAvgPool, MaxPool2};

use nessa_tensor::ops::{add_bias_rows, relu_grad_mask, sum_axis0};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the most
/// recent backward pass.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to [`Param::value`].
    pub grad: Tensor,
    /// Whether weight decay applies (disabled for batch-norm scale/shift).
    pub decay: bool,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Self { value, grad, decay }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape().dims());
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations, `backward` must be
/// called with the gradient of the loss w.r.t. the layer's output *after*
/// the corresponding `forward`, and returns the gradient w.r.t. the input.
pub trait Layer: Send {
    /// Runs the layer on a batch. `train` selects training behaviour
    /// (e.g. batch statistics in batch-norm).
    ///
    /// The `Send` supertrait lets a whole [`crate::models::Network`]
    /// move to a worker thread (layers are plain tensors), which the
    /// overlapped pipeline relies on to run selection concurrently with
    /// training.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients, and returns the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter (used by optimizers and the
    /// quantizer). Layers without parameters use the default no-op.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Multiply-accumulate-dominated FLOPs per input sample for the forward
    /// pass (backward is modelled as 2× forward, as is conventional).
    fn flops_per_sample(&self) -> u64 {
        0
    }

    /// Short human-readable layer name for debugging.
    fn name(&self) -> &'static str;
}

/// Fully-connected layer `y = xW^T + b` with He-normal initialization.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`.
    ///
    /// Weights are He-normal (`std = sqrt(2 / in_features)`); biases start
    /// at zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        let weight = Tensor::randn(&[out_features, in_features], 0.0, std, rng);
        let bias = Tensor::zeros(&[out_features]);
        Self {
            weight: Param::new(weight, true),
            bias: Param::new(bias, true),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects a 2-D batch");
        assert_eq!(x.dim(1), self.in_features, "Linear input width mismatch");
        let mut y = x.matmul_transb(&self.weight.value);
        add_bias_rows(&mut y, &self.bias.value);
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        // dW = g^T x ; db = sum_rows(g) ; dx = g W
        let gw = grad_out.matmul_transa(x);
        self.weight.grad += &gw;
        self.bias.grad += &sum_axis0(grad_out);
        grad_out.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn flops_per_sample(&self) -> u64 {
        2 * self.in_features as u64 * self.out_features as u64
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Relu::backward before forward");
        let mask = relu_grad_mask(x);
        grad_out
            .try_zip(&mask, "relu-backward", |g, m| g * m)
            .expect("relu gradient shape mismatch")
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Reshapes flat `[n, d]` rows into `[n, c, h, w]` images — the adapter
/// that lets convolutional networks consume dataset-style flat feature
/// rows (e.g. inside the NeSSA pipeline).
#[derive(Debug, Clone)]
pub struct ToImage {
    c: usize,
    h: usize,
    w: usize,
}

impl ToImage {
    /// Creates an adapter to `c × h × w` images.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "image dims must be positive");
        Self { c, h, w }
    }
}

impl Layer for ToImage {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "ToImage expects flat [n, d] rows");
        assert_eq!(
            x.dim(1),
            self.c * self.h * self.w,
            "feature dim {} does not factor into {}x{}x{}",
            x.dim(1),
            self.c,
            self.h,
            self.w
        );
        x.reshape(&[x.dim(0), self.c, self.h, self.w])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = grad_out.dim(0);
        grad_out.reshape(&[n, self.c * self.h * self.w])
    }

    fn name(&self) -> &'static str {
        "to_image"
    }
}

/// Reshapes `[n, c, h, w]` activations into `[n, c*h*w]` rows.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten expects a batched tensor");
        let n = x.dim(0);
        let rest: usize = x.shape().dims()[1..].iter().product();
        self.cached_dims = Some(x.shape().dims().to_vec());
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .as_ref()
            .expect("Flatten::backward before forward");
        grad_out.reshape(dims)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Finite-difference check of a layer's input gradient on a small batch.
    pub fn check_input_gradient(layer: &mut dyn Layer, x: &Tensor, tol: f32, train: bool) {
        // Scalar loss: sum of outputs. dL/dy = ones.
        let y = layer.forward(x, train);
        let gin = layer.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-3;
        for i in 0..x.numel().min(24) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp, train).sum();
            let fm = layer.forward(&xm, train).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = gin.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_known_values() {
        let mut rng = Rng64::new(0);
        let mut l = Linear::new(2, 2, &mut rng);
        l.visit_params(&mut |p: &mut Param| {
            // weight then bias; identify by shape.
            if p.value.ndim() == 2 {
                p.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                p.value = Tensor::from_slice(&[0.5, -0.5]);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut l = Linear::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        testutil::check_input_gradient(&mut l, &x, 1e-2, true);
    }

    #[test]
    fn linear_weight_gradient_accumulates() {
        let mut rng = Rng64::new(2);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let _ = l.forward(&x, true);
        let g = Tensor::ones(&[1, 2]);
        let _ = l.backward(&g);
        let _ = l.forward(&x, true);
        let _ = l.backward(&g);
        let mut grads = Vec::new();
        l.visit_params(&mut |p: &mut Param| grads.push(p.grad.clone()));
        // dW for sum loss with x=1 is all-ones per pass; two passes double it.
        assert!(grads[0].as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(grads[1].as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn relu_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(3);
        let mut l = Relu::new();
        // Keep inputs away from the kink at 0 for the numeric check.
        let x = Tensor::randn(&[2, 5], 0.0, 1.0, &mut rng).map(|v| {
            if v.abs() < 0.05 {
                v + 0.1
            } else {
                v
            }
        });
        testutil::check_input_gradient(&mut l, &x, 1e-2, true);
    }

    #[test]
    fn to_image_round_trip() {
        let mut l = ToImage::new(3, 2, 2);
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 12]);
        let y = l.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 3, 2, 2]);
        let back = l.backward(&y);
        assert_eq!(back.shape().dims(), &[2, 12]);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "does not factor")]
    fn to_image_rejects_bad_dims() {
        let mut l = ToImage::new(3, 2, 2);
        let _ = l.forward(&Tensor::zeros(&[1, 10]), true);
    }

    #[test]
    fn flatten_round_trip() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = l.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let back = l.backward(&y);
        assert_eq!(back.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(back.as_slice(), x.as_slice());
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(&[3]), true);
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn linear_flops() {
        let mut rng = Rng64::new(4);
        let l = Linear::new(10, 20, &mut rng);
        assert_eq!(l.flops_per_sample(), 400);
    }
}
