//! Spatial pooling layers.

use super::Layer;
use nessa_tensor::Tensor;

/// 2×2 max pooling with stride 2 over `[n, c, h, w]` activations.
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// usual framework behaviour.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    /// Flat index (into the input) of each pooled maximum.
    cached_argmax: Vec<usize>,
    cached_in_dims: Option<Vec<usize>>,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "MaxPool2 expects [n, c, h, w]");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        self.cached_argmax = vec![0; n * c * oh * ow];
        let data = x.as_slice();
        let mut oi = 0;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = base + (oy * 2 + dy) * w + ox * 2 + dx;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out.as_mut_slice()[oi] = best;
                        self.cached_argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.cached_in_dims = Some(x.shape().dims().to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_in_dims
            .as_ref()
            .expect("MaxPool2::backward before forward");
        let mut grad_in = Tensor::zeros(dims);
        for (oi, &src) in self.cached_argmax.iter().enumerate() {
            grad_in.as_mut_slice()[src] += grad_out.as_slice()[oi];
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_in_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "GlobalAvgPool expects [n, c, h, w]");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let hw = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let s: f32 = x.as_slice()[base..base + h * w].iter().sum();
                out.as_mut_slice()[ni * c + ci] = s / hw;
            }
        }
        self.cached_in_dims = Some(x.shape().dims().to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .cached_in_dims
            .as_ref()
            .expect("GlobalAvgPool::backward before forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let hw = (h * w) as f32;
        let mut grad_in = Tensor::zeros(dims);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.as_slice()[ni * c + ci] / hw;
                let base = (ni * c + ci) * h * w;
                for v in &mut grad_in.as_mut_slice()[base..base + h * w] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "globalavgpool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::rng::Rng64;

    #[test]
    fn maxpool_selects_maxima() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = p.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let mut rng = Rng64::new(0);
        let mut p = MaxPool2::new();
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, &mut rng);
        let y = p.forward(&x, true);
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn gap_averages() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0]);
    }

    #[test]
    fn gap_backward_spreads_gradient() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let _ = p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
