//! Classification metrics.

/// Fraction of predictions equal to the labels (`0.0` when empty).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction and label counts differ"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, y)| p == y)
        .count();
    correct as f32 / labels.len() as f32
}

/// A `classes × classes` confusion matrix; `rows` are true labels,
/// `columns` predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Records one (true, predicted) pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes);
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Records a batch of pairs.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or contain bad indices.
    pub fn record_batch(&mut self, truths: &[usize], predictions: &[usize]) {
        assert_eq!(truths.len(), predictions.len());
        for (&t, &p) in truths.iter().zip(predictions.iter()) {
            self.record(t, p);
        }
    }

    /// Count at (truth, predicted).
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (`None` when a class has no samples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = (0..self.classes).map(|j| self.count(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

/// Exponentially-weighted running average, used for smoothing loss curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningAverage {
    alpha: f32,
    value: Option<f32>,
}

impl RunningAverage {
    /// Creates an average with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds a new observation and returns the smoothed value.
    pub fn update(&mut self, x: f32) -> f32 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current smoothed value, if any observation has been fed.
    pub fn value(&self) -> Option<f32> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "counts differ")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record_batch(&[0, 0, 1, 2, 2], &[0, 1, 1, 2, 0]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(2, 0), 1);
        assert!((m.accuracy() - 3.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_recall() {
        let mut m = ConfusionMatrix::new(2);
        m.record_batch(&[0, 0, 0, 1], &[0, 0, 1, 1]);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.recall(1), Some(1.0));
        let empty = ConfusionMatrix::new(2);
        assert_eq!(empty.recall(0), None);
    }

    #[test]
    fn running_average_smooths() {
        let mut r = RunningAverage::new(0.5);
        assert_eq!(r.value(), None);
        assert_eq!(r.update(10.0), 10.0);
        assert_eq!(r.update(0.0), 5.0);
        assert_eq!(r.update(5.0), 5.0);
    }

    #[test]
    fn running_average_alpha_one_tracks_input() {
        let mut r = RunningAverage::new(1.0);
        r.update(3.0);
        assert_eq!(r.update(7.0), 7.0);
    }
}
