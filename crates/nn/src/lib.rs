//! Neural-network training engine for the NeSSA reproduction.
//!
//! The paper trains ResNet-20/18/50 on six image datasets with SGD
//! (Nesterov momentum 0.9, weight decay 5e-4, LR 0.1 divided by 5 at 60/120/
//! 160 of 200 epochs, batch 128). This crate provides everything needed to
//! run that loop on a CPU at reproduction scale:
//!
//! * layers with explicit forward/backward ([`layers`]),
//! * residual networks and MLP builders ([`models`]),
//! * softmax cross-entropy with per-sample losses ([`loss`]) — the
//!   per-sample losses feed NeSSA's subset-biasing optimization,
//! * SGD with Nesterov momentum, weight decay and multi-step schedules
//!   ([`optim`]),
//! * accuracy metrics ([`metrics`]),
//! * FLOP accounting ([`flops`]) and an analytic GPU cost model ([`cost`])
//!   that stand in for the paper's V100/A100 wall-clock measurements,
//! * the model zoo behind the paper's Figure 1 ([`zoo`]).
//!
//! # Example
//!
//! ```
//! use nessa_nn::models::mlp;
//! use nessa_nn::loss::softmax_cross_entropy;
//! use nessa_nn::optim::{Sgd, SgdConfig};
//! use nessa_tensor::{rng::Rng64, Tensor};
//!
//! let mut rng = Rng64::new(0);
//! let mut net = mlp(&[4, 16, 3], &mut rng);
//! let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut rng);
//! let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! let mut opt = Sgd::new(SgdConfig::default());
//! let logits = net.forward(&x, true);
//! let out = softmax_cross_entropy(&logits, &y);
//! net.backward(&out.grad_logits);
//! opt.step(&mut net, 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod flops;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod zoo;

pub use layers::{Layer, Param};
pub use models::Network;
