//! Analytic GPU training cost model.
//!
//! The paper's wall-clock measurements (Figure 1: epoch time across model
//! generations; Figure 2: share of time spent on data movement; Figure 4:
//! per-epoch time by selection policy) are functions of FLOP counts, sample
//! counts, per-sample byte sizes, and data-path characteristics. This module
//! encodes that function together with the device presets the paper names
//! (NVIDIA V100, A100, K1200 and the SmartSSD's Kintex KU15P FPGA).
//!
//! The data path is modelled as a per-sample fixed overhead (file handling
//! and decode) plus a streaming term. The default [`LoaderSpec`] is
//! calibrated against the paper's two published Figure-2 endpoints — MNIST
//! (0.5 KB/image) spends 5.4 % of epoch time on data movement, ImageNet-100
//! (130 KB/image) spends 40.4 % — which pins the fixed overhead to ~25 µs
//! and the streaming rate to ~460 MB/s, both typical of a CPU-side loader.

/// A compute device's performance envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name.
    pub name: &'static str,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained fraction of peak achieved by DNN training (model FLOP
    /// utilization); GPUs typically sustain 0.3–0.5 on convnets.
    pub utilization: f64,
    /// Board power in watts (paper §2.2 cites these for the energy
    /// comparison).
    pub power_watts: f64,
}

impl DeviceSpec {
    /// NVIDIA V100 (used for the paper's Figure 2 profile).
    pub fn v100() -> Self {
        Self {
            name: "V100",
            peak_flops: 15.7e12,
            utilization: 0.35,
            power_watts: 300.0,
        }
    }

    /// NVIDIA A100 (used for the paper's Figure 1 sweep).
    pub fn a100() -> Self {
        Self {
            name: "A100",
            peak_flops: 19.5e12,
            utilization: 0.4,
            power_watts: 250.0,
        }
    }

    /// NVIDIA K1200 (the low-power GPU named in the paper's energy
    /// comparison).
    pub fn k1200() -> Self {
        Self {
            name: "K1200",
            peak_flops: 1.1e12,
            utilization: 0.3,
            power_watts: 45.0,
        }
    }

    /// The SmartSSD's Kintex KU15P FPGA running an int8 selection kernel
    /// (paper: ~7.5 W). Peak reflects DSP-limited int8 MACs at 300 MHz.
    pub fn smartssd_fpga() -> Self {
        Self {
            name: "SmartSSD-KU15P",
            peak_flops: 1962.0 * 2.0 * 300.0e6, // DSP slices × 2 ops × clock
            utilization: 0.6,
            power_watts: 7.5,
        }
    }

    /// Sustained compute throughput in FLOP/s.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops * self.utilization
    }
}

/// The storage → host → device data path for training data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoaderSpec {
    /// Per-sample fixed cost in seconds (file handling, decode, staging).
    pub fixed_overhead_s: f64,
    /// Streaming throughput in bytes/s once a sample is being moved.
    pub bytes_per_s: f64,
}

impl LoaderSpec {
    /// Conventional disk → CPU → GPU loader, calibrated to the paper's
    /// Figure-2 endpoints (see module docs).
    pub fn conventional_host() -> Self {
        Self {
            fixed_overhead_s: 2.5e-5,
            bytes_per_s: 4.6e8,
        }
    }

    /// The SmartSSD peer-to-peer path: no host staging, negligible fixed
    /// overhead, up to 3 GB/s on-board (paper §4.4).
    pub fn smartssd_p2p() -> Self {
        Self {
            fixed_overhead_s: 1.0e-6,
            bytes_per_s: 3.0e9,
        }
    }

    /// Seconds to deliver one sample of `bytes` bytes.
    pub fn sample_time_s(&self, bytes: u64) -> f64 {
        self.fixed_overhead_s + bytes as f64 / self.bytes_per_s
    }
}

impl Default for LoaderSpec {
    fn default() -> Self {
        Self::conventional_host()
    }
}

/// A decomposed epoch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochTime {
    /// Seconds spent on gradient computation.
    pub compute_s: f64,
    /// Seconds spent moving training data to the device.
    pub io_s: f64,
}

impl EpochTime {
    /// Total seconds (serial pipeline, as profiled in the paper's Fig. 2).
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.io_s
    }

    /// Fraction of the epoch spent on data movement.
    pub fn io_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            self.io_s / t
        }
    }
}

/// Computes one training epoch's cost on `device` fed by `loader`.
///
/// * `samples` — number of training examples visited this epoch,
/// * `training_flops_per_sample` — forward+backward FLOPs per example,
/// * `bytes_per_sample` — storage footprint per example.
pub fn epoch_time(
    device: &DeviceSpec,
    loader: &LoaderSpec,
    samples: u64,
    training_flops_per_sample: u64,
    bytes_per_sample: u64,
) -> EpochTime {
    let compute_s = samples as f64 * training_flops_per_sample as f64 / device.sustained_flops();
    let io_s = samples as f64 * loader.sample_time_s(bytes_per_sample);
    EpochTime { compute_s, io_s }
}

/// Energy in joules for a span of seconds on a device.
pub fn energy_joules(device: &DeviceSpec, seconds: f64) -> f64 {
    device.power_watts * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure-2 reference compute: a ResNet-18-class workload on a V100
    /// (~0.45 ms of gradient work per sample).
    const REF_TRAIN_FLOPS: u64 = 3 * 825_000_000;

    #[test]
    fn epoch_time_scales_linearly_with_samples() {
        let d = DeviceSpec::v100();
        let l = LoaderSpec::default();
        let a = epoch_time(&d, &l, 1000, 1_000_000, 3000);
        let b = epoch_time(&d, &l, 2000, 1_000_000, 3000);
        assert!((b.total_s() / a.total_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn figure2_endpoints_match_paper() {
        // Paper §1: MNIST (0.5 KB) ⇒ 5.4 % of time on data movement,
        // ImageNet-100 (130 KB) ⇒ 40.4 %. The calibrated loader should land
        // within a couple of points of both.
        let d = DeviceSpec::v100();
        let l = LoaderSpec::conventional_host();
        let mnist = epoch_time(&d, &l, 50_000, REF_TRAIN_FLOPS, 500);
        let inet = epoch_time(&d, &l, 130_000, REF_TRAIN_FLOPS, 130_000);
        assert!(
            (mnist.io_fraction() - 0.054).abs() < 0.02,
            "MNIST io fraction {}",
            mnist.io_fraction()
        );
        assert!(
            (inet.io_fraction() - 0.404).abs() < 0.05,
            "ImageNet-100 io fraction {}",
            inet.io_fraction()
        );
    }

    #[test]
    fn io_fraction_grows_with_image_size() {
        let d = DeviceSpec::v100();
        let l = LoaderSpec::default();
        let sizes = [500u64, 3_000, 3_000, 130_000];
        let fracs: Vec<f64> = sizes
            .iter()
            .map(|&b| epoch_time(&d, &l, 50_000, REF_TRAIN_FLOPS, b).io_fraction())
            .collect();
        assert!(fracs[0] < fracs[1]);
        assert!(fracs[2] < fracs[3]);
    }

    #[test]
    fn p2p_loader_is_faster_than_host() {
        let host = LoaderSpec::conventional_host().sample_time_s(130_000);
        let p2p = LoaderSpec::smartssd_p2p().sample_time_s(130_000);
        assert!(host / p2p > 2.0, "host {host}, p2p {p2p}");
    }

    #[test]
    fn a100_outruns_k1200() {
        let l = LoaderSpec::default();
        let fast = epoch_time(&DeviceSpec::a100(), &l, 1_000_000, 1_000_000_000, 0);
        let slow = epoch_time(&DeviceSpec::k1200(), &l, 1_000_000, 1_000_000_000, 0);
        assert!(slow.compute_s > 10.0 * fast.compute_s);
    }

    #[test]
    fn fpga_is_low_power() {
        let fpga = DeviceSpec::smartssd_fpga();
        assert!(fpga.power_watts < 10.0);
        assert!(energy_joules(&fpga, 10.0) < energy_joules(&DeviceSpec::a100(), 10.0));
    }

    #[test]
    fn io_fraction_zero_when_no_time() {
        let t = EpochTime {
            compute_s: 0.0,
            io_s: 0.0,
        };
        assert_eq!(t.io_fraction(), 0.0);
    }
}
