//! Softmax cross-entropy with per-sample losses.
//!
//! The per-sample losses are first-class here because NeSSA's subset-biasing
//! optimization (§3.2.2) tracks each example's loss over the most recent
//! five epochs to decide which samples are "learned".

use nessa_tensor::ops::{log_softmax_rows, softmax_rows};
use nessa_tensor::Tensor;

/// Result of a cross-entropy evaluation over a batch.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub mean_loss: f32,
    /// Loss of each sample.
    pub per_sample: Vec<f32>,
    /// Gradient of the *mean* loss with respect to the logits
    /// (`(softmax − one-hot) / n`), ready to feed `Network::backward`.
    pub grad_logits: Tensor,
}

/// Softmax cross-entropy between `logits` (`n × c`) and integer `labels`.
///
/// # Panics
///
/// Panics if `logits` is not 2-D, the label count differs from the row
/// count, or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.ndim(), 2, "cross-entropy expects 2-D logits");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "label count must match batch size");
    let log_p = log_softmax_rows(logits);
    let probs = softmax_rows(logits);
    let mut per_sample = Vec::with_capacity(n);
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        per_sample.push(-log_p.at(&[i, y]));
        let row = grad.row_mut(i);
        row[y] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    let mean_loss = per_sample.iter().sum::<f32>() * inv_n;
    LossOutput {
        mean_loss,
        per_sample,
        grad_logits: grad,
    }
}

/// Weighted softmax cross-entropy.
///
/// CRAIG-style coreset training weighs each selected medoid by the size of
/// the cluster it represents; this variant scales both the per-sample losses
/// and the logit gradients by `weights` (normalized by the weight sum).
///
/// # Panics
///
/// Panics on the same conditions as [`softmax_cross_entropy`], if the
/// weight count differs from the batch size, or if all weights are zero.
pub fn weighted_softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
    weights: &[f32],
) -> LossOutput {
    assert_eq!(logits.ndim(), 2, "cross-entropy expects 2-D logits");
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), n, "label count must match batch size");
    assert_eq!(weights.len(), n, "weight count must match batch size");
    let wsum: f32 = weights.iter().sum();
    assert!(wsum > 0.0, "weights must not all be zero");
    let log_p = log_softmax_rows(logits);
    let probs = softmax_rows(logits);
    let mut per_sample = Vec::with_capacity(n);
    let mut grad = probs.clone();
    let mut mean_loss = 0.0;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        let l = -log_p.at(&[i, y]);
        per_sample.push(l);
        mean_loss += weights[i] * l;
        let scale = weights[i] / wsum;
        let row = grad.row_mut(i);
        row[y] -= 1.0;
        for v in row.iter_mut() {
            *v *= scale;
        }
    }
    LossOutput {
        mean_loss: mean_loss / wsum,
        per_sample,
        grad_logits: grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_tensor::rng::Rng64;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((out.mean_loss - (10.0f32).ln()).abs() < 1e-5);
        for l in &out.per_sample {
            assert!((l - (10.0f32).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 0], 10.0);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.mean_loss < 1e-3);
        let wrong = softmax_cross_entropy(&logits, &[1]);
        assert!(wrong.mean_loss > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng64::new(0);
        let logits = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let labels = vec![1, 0, 3];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).mean_loss;
            let fm = softmax_cross_entropy(&lm, &labels).mean_loss;
            let num = (fp - fm) / (2.0 * eps);
            let ana = out.grad_logits.as_slice()[i];
            assert!((num - ana).abs() < 1e-3, "at {i}: {num} vs {ana}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng64::new(1);
        let logits = Tensor::randn(&[5, 7], 0.0, 2.0, &mut rng);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            let s: f32 = out.grad_logits.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_reduces_to_unweighted_for_equal_weights() {
        let mut rng = Rng64::new(2);
        let logits = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2, 0];
        let a = softmax_cross_entropy(&logits, &labels);
        let b = weighted_softmax_cross_entropy(&logits, &labels, &[1.0; 4]);
        assert!((a.mean_loss - b.mean_loss).abs() < 1e-6);
        for (x, y) in a
            .grad_logits
            .as_slice()
            .iter()
            .zip(b.grad_logits.as_slice())
        {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_emphasizes_heavy_samples() {
        let mut rng = Rng64::new(3);
        let logits = Tensor::randn(&[2, 3], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1];
        let out = weighted_softmax_cross_entropy(&logits, &labels, &[3.0, 1.0]);
        let g0: f32 = out.grad_logits.row(0).iter().map(|v| v.abs()).sum();
        let g1: f32 = out.grad_logits.row(1).iter().map(|v| v.abs()).sum();
        // Row 0 carries 3× the weight; its gradient mass should dominate
        // unless row 1 is much harder — with symmetric random logits this
        // holds with margin for the chosen seed.
        assert!(g0 > g1, "g0={g0} g1={g1}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = softmax_cross_entropy(&logits, &[2]);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn rejects_zero_weights() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = weighted_softmax_cross_entropy(&logits, &[0], &[0.0]);
    }
}
