//! Analytic FLOP accounting for the paper's full-size architectures.
//!
//! The reproduction trains *scaled* networks (CPU-sized), but the timing
//! experiments (Figures 1, 2, 4 and the §4.3 speed-ups) are driven by the
//! FLOP counts of the *full-size* models the paper used. This module builds
//! those counts analytically from the architecture definitions, so the cost
//! model in [`crate::cost`] works with faithful numbers.

/// One convolution's shape, enough to count its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Square kernel size.
    pub k: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
}

impl ConvSpec {
    /// Forward multiply-accumulate FLOPs (2 per MAC).
    pub fn flops(&self) -> u64 {
        2 * self.cin as u64
            * self.cout as u64
            * (self.k * self.k) as u64
            * (self.oh * self.ow) as u64
    }
}

/// An architecture as a flat list of convolutions plus a linear head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSpec {
    /// Human-readable name (e.g. `"resnet20@32"`).
    pub name: String,
    /// All convolutions, in order.
    pub convs: Vec<ConvSpec>,
    /// The classifier head: (in-features, classes).
    pub fc: (usize, usize),
}

impl ArchSpec {
    /// Total forward FLOPs per sample.
    pub fn forward_flops(&self) -> u64 {
        let conv: u64 = self.convs.iter().map(ConvSpec::flops).sum();
        conv + 2 * self.fc.0 as u64 * self.fc.1 as u64
    }

    /// Forward+backward FLOPs per sample (backward ≈ 2× forward, the
    /// standard convention the paper's GPU numbers reflect).
    pub fn training_flops(&self) -> u64 {
        3 * self.forward_flops()
    }

    /// CIFAR-style ResNet-20 (stem + 3 stages × 3 basic blocks, widths
    /// 16/32/64) on `hw × hw` inputs.
    pub fn resnet20(hw: usize, classes: usize) -> Self {
        Self::basic_resnet("resnet20", hw, classes, 16, &[3, 3, 3], 3)
    }

    /// ImageNet-style ResNet-18 (4 stages × 2 basic blocks, widths
    /// 64..512) on `hw × hw` inputs, with a CIFAR-style 3×3 stem so the
    /// same builder covers the small-image datasets the paper uses it on.
    pub fn resnet18(hw: usize, classes: usize) -> Self {
        Self::basic_resnet("resnet18", hw, classes, 64, &[2, 2, 2, 2], 3)
    }

    /// ResNet-50 (4 stages of 3/4/6/3 bottleneck blocks, widths 256..2048)
    /// on `hw × hw` inputs with the 7×7/stride-2 stem and 3×3 max pool.
    pub fn resnet50(hw: usize, classes: usize) -> Self {
        let mut convs = Vec::new();
        let mut size = hw.div_ceil(2); // 7×7 stride-2 stem
        convs.push(ConvSpec {
            cin: 3,
            cout: 64,
            k: 7,
            oh: size,
            ow: size,
        });
        size = size.div_ceil(2); // 3×3 stride-2 max pool
        let stages: [(usize, usize); 4] = [(256, 3), (512, 4), (1024, 6), (2048, 3)];
        let mut cin = 64;
        for (s, &(cout, blocks)) in stages.iter().enumerate() {
            for b in 0..blocks {
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                if stride == 2 {
                    size = size.div_ceil(2);
                }
                let mid = cout / 4;
                // 1×1 reduce, 3×3, 1×1 expand.
                convs.push(ConvSpec {
                    cin,
                    cout: mid,
                    k: 1,
                    oh: size,
                    ow: size,
                });
                convs.push(ConvSpec {
                    cin: mid,
                    cout: mid,
                    k: 3,
                    oh: size,
                    ow: size,
                });
                convs.push(ConvSpec {
                    cin: mid,
                    cout,
                    k: 1,
                    oh: size,
                    ow: size,
                });
                if b == 0 {
                    // Projection shortcut.
                    convs.push(ConvSpec {
                        cin,
                        cout,
                        k: 1,
                        oh: size,
                        ow: size,
                    });
                }
                cin = cout;
            }
        }
        Self {
            name: format!("resnet50@{hw}"),
            convs,
            fc: (2048, classes),
        }
    }

    fn basic_resnet(
        name: &str,
        hw: usize,
        classes: usize,
        width: usize,
        blocks_per_stage: &[usize],
        stem_k: usize,
    ) -> Self {
        let mut convs = Vec::new();
        let mut size = hw;
        convs.push(ConvSpec {
            cin: 3,
            cout: width,
            k: stem_k,
            oh: size,
            ow: size,
        });
        let mut cin = width;
        for (s, &blocks) in blocks_per_stage.iter().enumerate() {
            let cout = width << s;
            for b in 0..blocks {
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                if stride == 2 {
                    size = size.div_ceil(2);
                }
                convs.push(ConvSpec {
                    cin,
                    cout,
                    k: 3,
                    oh: size,
                    ow: size,
                });
                convs.push(ConvSpec {
                    cin: cout,
                    cout,
                    k: 3,
                    oh: size,
                    ow: size,
                });
                if stride == 2 || cin != cout {
                    convs.push(ConvSpec {
                        cin,
                        cout,
                        k: 1,
                        oh: size,
                        ow: size,
                    });
                }
                cin = cout;
            }
        }
        Self {
            name: format!("{name}@{hw}"),
            convs,
            fc: (cin, classes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_formula() {
        let c = ConvSpec {
            cin: 3,
            cout: 16,
            k: 3,
            oh: 32,
            ow: 32,
        };
        assert_eq!(c.flops(), 2 * 3 * 16 * 9 * 1024);
    }

    #[test]
    fn resnet20_is_about_80_mflops() {
        // Published MAC count for CIFAR ResNet-20 is ~40.8M ⇒ ~81.6 MFLOPs.
        let f = ArchSpec::resnet20(32, 10).forward_flops();
        assert!(
            (60_000_000..110_000_000).contains(&f),
            "resnet20 forward flops {f}"
        );
    }

    #[test]
    fn resnet18_at_32_is_about_1_gflop() {
        // CIFAR-style ResNet-18 is ~0.56 GMACs ⇒ ~1.1 GFLOPs.
        let f = ArchSpec::resnet18(32, 10).forward_flops();
        assert!(
            (800_000_000..1_500_000_000).contains(&f),
            "resnet18@32 forward flops {f}"
        );
    }

    #[test]
    fn resnet50_at_224_is_about_8_gflops() {
        // Published ResNet-50 is ~4.1 GMACs ⇒ ~8.2 GFLOPs.
        let f = ArchSpec::resnet50(224, 1000).forward_flops();
        assert!(
            (6_000_000_000..11_000_000_000).contains(&f),
            "resnet50 forward flops {f}"
        );
    }

    #[test]
    fn training_flops_are_triple_forward() {
        let a = ArchSpec::resnet20(32, 10);
        assert_eq!(a.training_flops(), 3 * a.forward_flops());
    }

    #[test]
    fn larger_inputs_cost_more() {
        let small = ArchSpec::resnet18(32, 200).forward_flops();
        let big = ArchSpec::resnet18(64, 200).forward_flops();
        assert!(big > 3 * small, "{big} vs {small}");
    }
}
