//! Property tests for the training engine.

use nessa_nn::loss::softmax_cross_entropy;
use nessa_nn::models::mlp;
use nessa_nn::optim::{CosineLr, MultiStepLr};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cross_entropy_is_positive_and_bounded_below_by_confidence(
        n in 1usize..6, c in 2usize..8, seed in any::<u64>()
    ) {
        let mut rng = Rng64::new(seed);
        let logits = Tensor::rand_uniform(&[n, c], -4.0, 4.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|_| rng.index(c)).collect();
        let out = softmax_cross_entropy(&logits, &labels);
        prop_assert!(out.mean_loss > 0.0);
        prop_assert!(out.per_sample.iter().all(|&l| l > 0.0));
        // Loss of a sample is at least −log of its softmax mass, which is
        // bounded by the logit span.
        prop_assert!(out.per_sample.iter().all(|&l| l < 20.0));
    }

    #[test]
    fn gradient_rows_sum_to_zero(n in 1usize..5, c in 2usize..6, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let logits = Tensor::rand_uniform(&[n, c], -3.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|_| rng.index(c)).collect();
        let out = softmax_cross_entropy(&logits, &labels);
        for i in 0..n {
            let s: f32 = out.grad_logits.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn multistep_lr_is_nonincreasing(
        base in 0.001f32..1.0, gamma in 0.05f32..0.99,
        m1 in 1usize..50, m2 in 50usize..120, epochs in 120usize..200
    ) {
        let s = MultiStepLr::new(base, gamma, vec![m1, m2]);
        let mut prev = f32::INFINITY;
        for e in 0..epochs {
            let lr = s.lr_at(e);
            prop_assert!(lr <= prev);
            prop_assert!(lr > 0.0);
            prev = lr;
        }
    }

    #[test]
    fn cosine_lr_stays_in_band(
        base in 0.01f32..1.0, frac in 0.0f32..0.9, epochs in 2usize..300, e in 0usize..400
    ) {
        let min = base * frac;
        let s = CosineLr::new(base, min, epochs);
        let lr = s.lr_at(e);
        prop_assert!(lr >= min - 1e-6 && lr <= base + 1e-6, "lr {} outside [{}, {}]", lr, min, base);
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut net = mlp(&[6, 10, 3], &mut rng);
        let x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
        let a = net.forward(&x, false);
        let b = net.forward(&x, false);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn export_import_identity(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let mut net = mlp(&[4, 8, 2], &mut rng);
        let w = net.export_weights();
        net.import_weights(&w);
        let w2 = net.export_weights();
        for (a, b) in w.iter().zip(&w2) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
