//! The violation baseline: a checked-in ratchet.
//!
//! Pre-existing violations are frozen as per-`(rule, file)` **counts**
//! in `crates/lint/baseline.toml`. Counts (rather than line numbers)
//! survive unrelated edits to a file; the gate only fails when a file's
//! count for some rule *rises* above its frozen value, so new debt
//! cannot land while old debt is burned down file by file. When a count
//! falls, the baseline is stale — regenerate it with `--write-baseline`
//! to ratchet the ceiling down.
//!
//! The format is a deliberately tiny TOML subset (array-of-tables with
//! string/integer values) so the linter stays dependency-free.

use std::collections::BTreeMap;

/// Frozen violation counts, keyed by `(rule, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// A baseline file that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineParseError {}

impl Baseline {
    /// The frozen count for a `(rule, file)` pair (0 when absent).
    pub fn allowed(&self, rule: &str, file: &str) -> usize {
        self.entries
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates entries in sorted order as `(rule, file, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.entries
            .iter()
            .map(|((r, f), &c)| (r.as_str(), f.as_str(), c))
    }

    /// Number of `(rule, file)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds a baseline from observed `(rule, file)` counts.
    pub fn from_counts(counts: &BTreeMap<(String, String), usize>) -> Baseline {
        Baseline {
            entries: counts
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k.clone(), c))
                .collect(),
        }
    }

    /// Parses the TOML-subset baseline format.
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<usize>)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut current, &mut entries, lineno)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let slot = current.as_mut().ok_or(BaselineParseError {
                line: lineno,
                message: "key outside any [[entry]] table".to_string(),
            })?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" => slot.0 = Some(parse_string(value, lineno)?),
                "file" => slot.1 = Some(parse_string(value, lineno)?),
                "count" => {
                    slot.2 = Some(value.parse().map_err(|_| BaselineParseError {
                        line: lineno,
                        message: format!("count must be an integer, got `{value}`"),
                    })?)
                }
                other => {
                    return Err(BaselineParseError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    })
                }
            }
        }
        flush(&mut current, &mut entries, text.lines().count())?;
        Ok(Baseline { entries })
    }

    /// Serializes to the TOML subset, sorted by `(rule, file)`.
    pub fn to_toml(&self) -> String {
        let mut out = String::from(
            "# nessa-lint baseline — frozen pre-existing violations.\n\
             # Regenerate with: cargo run --release --bin lint -- --write-baseline\n\
             # The CI gate fails only on violations beyond these counts.\n",
        );
        for (rule, file, count) in self.iter() {
            out.push_str("\n[[entry]]\n");
            out.push_str(&format!("rule = \"{rule}\"\n"));
            out.push_str(&format!("file = \"{file}\"\n"));
            out.push_str(&format!("count = {count}\n"));
        }
        out
    }
}

fn flush(
    current: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
    entries: &mut BTreeMap<(String, String), usize>,
    lineno: usize,
) -> Result<(), BaselineParseError> {
    if let Some((rule, file, count)) = current.take() {
        let (Some(rule), Some(file), Some(count)) = (rule, file, count) else {
            return Err(BaselineParseError {
                line: lineno,
                message: "entry needs rule, file, and count".to_string(),
            });
        };
        if entries
            .insert((rule.clone(), file.clone()), count)
            .is_some()
        {
            return Err(BaselineParseError {
                line: lineno,
                message: format!("duplicate entry for {rule} / {file}"),
            });
        }
    }
    Ok(())
}

fn parse_string(value: &str, lineno: usize) -> Result<String, BaselineParseError> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(|v| v.to_string())
        .ok_or(BaselineParseError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert(
            ("p1-panic".to_string(), "crates/a/src/lib.rs".to_string()),
            3,
        );
        counts.insert(("d1-wall-clock".to_string(), "src/lib.rs".to_string()), 1);
        counts.insert(("f1-float-eq".to_string(), "src/x.rs".to_string()), 0);
        let b = Baseline::from_counts(&counts);
        assert_eq!(b.len(), 2, "zero counts are dropped");
        let reparsed = Baseline::parse(&b.to_toml()).unwrap();
        assert_eq!(b, reparsed);
        assert_eq!(reparsed.allowed("p1-panic", "crates/a/src/lib.rs"), 3);
        assert_eq!(reparsed.allowed("p1-panic", "crates/b/src/lib.rs"), 0);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("rule = \"x\"\n").is_err()); // outside table
        assert!(Baseline::parse("[[entry]]\nrule = \"x\"\n").is_err()); // incomplete
        assert!(Baseline::parse("[[entry]]\nbogus = 1\n").is_err());
        assert!(Baseline::parse("[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = x\n").is_err());
        let dup = "[[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 1\n\
                   [[entry]]\nrule = \"r\"\nfile = \"f\"\ncount = 2\n";
        assert!(Baseline::parse(dup).is_err());
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text = "# header\n\n[[entry]]\n# inline note\nrule = \"r\"\nfile = \"f\"\ncount = 2\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed("r", "f"), 2);
        assert!(Baseline::parse("").unwrap().is_empty());
    }
}
