//! Rendering lint results for humans and for machines.
//!
//! The human report groups violations by rule with `file:line:col`
//! spans (clickable in most terminals/editors); the JSON report is a
//! stable machine-readable document the CI gate uploads as an artifact.
//! JSON is emitted by hand — the linter is dependency-free by design.

use crate::rules::registry;
use crate::Outcome;

/// Renders the human-readable report.
pub fn human(outcome: &Outcome) -> String {
    let mut out = String::new();
    if outcome.new_violations.is_empty() {
        out.push_str(&format!(
            "nessa-lint: clean — {} files checked, {} baselined violation(s) remain\n",
            outcome.files_checked, outcome.baselined
        ));
    } else {
        out.push_str(&format!(
            "nessa-lint: {} new violation(s) across {} files checked\n",
            outcome.new_violations.len(),
            outcome.files_checked
        ));
        for rule in registry() {
            let of_rule: Vec<_> = outcome
                .new_violations
                .iter()
                .filter(|v| v.rule == rule.id)
                .collect();
            if of_rule.is_empty() {
                continue;
            }
            out.push_str(&format!("\n{} — {}\n", rule.id, rule.summary));
            for v in of_rule {
                out.push_str(&format!(
                    "  {}:{}:{} ({}) {}\n      {}\n",
                    v.file, v.line, v.column, v.module, v.message, v.snippet
                ));
            }
        }
        out.push_str(
            "\nFix the code, add `// nessa-lint: allow(<rule>)` with a justification,\n\
             or (for legacy debt only) regenerate the baseline with --write-baseline.\n",
        );
    }
    for (rule, file, frozen, seen) in &outcome.stale {
        out.push_str(&format!(
            "note: baseline is stale — {rule} in {file} froze {frozen} but only {seen} remain; \
             run --write-baseline to ratchet down\n"
        ));
    }
    out
}

/// Renders the machine-readable JSON report.
pub fn json(outcome: &Outcome) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_checked\": {},\n  \"baselined\": {},\n",
        outcome.files_checked, outcome.baselined
    ));
    out.push_str(&format!(
        "  \"clean\": {},\n  \"new_violations\": [",
        outcome.new_violations.is_empty()
    ));
    for (i, v) in outcome.new_violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \
             \"module\": {}, \"message\": {}, \"snippet\": {}}}",
            escape(v.rule),
            escape(&v.file),
            v.line,
            v.column,
            escape(&v.module),
            escape(&v.message),
            escape(&v.snippet)
        ));
    }
    if !outcome.new_violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_baseline\": [");
    for (i, (rule, file, frozen, seen)) in outcome.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"frozen\": {frozen}, \"seen\": {seen}}}",
            escape(rule),
            escape(file)
        ));
    }
    if !outcome.stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn outcome_with(news: Vec<Violation>) -> Outcome {
        Outcome {
            files_checked: 3,
            baselined: 1,
            new_violations: news,
            all_violations: Vec::new(),
            stale: vec![(
                "p1-panic".to_string(),
                "crates/a/src/lib.rs".to_string(),
                5,
                4,
            )],
        }
    }

    fn sample() -> Violation {
        Violation {
            rule: "d1-wall-clock",
            file: "crates/nn/src/train.rs".to_string(),
            module: "nessa_nn::train".to_string(),
            line: 10,
            column: 13,
            message: "read the clock through nessa_telemetry::clock".to_string(),
            snippet: "let t = Instant::now();".to_string(),
        }
    }

    #[test]
    fn human_report_lists_spans_and_stale_notes() {
        let text = human(&outcome_with(vec![sample()]));
        assert!(text.contains("crates/nn/src/train.rs:10:13"));
        assert!(text.contains("d1-wall-clock"));
        assert!(text.contains("baseline is stale"));
        let clean = human(&outcome_with(Vec::new()));
        assert!(clean.contains("clean"));
    }

    #[test]
    fn json_report_is_wellformed_and_escaped() {
        let mut v = sample();
        v.snippet = "say \"hi\"\tnow".to_string();
        let text = json(&outcome_with(vec![v]));
        assert!(text.contains("\"clean\": false"));
        assert!(text.contains("say \\\"hi\\\"\\tnow"));
        assert!(text.contains("\"line\": 10"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(escape("plain"), "\"plain\"");
    }
}
