//! The rule registry.
//!
//! Every rule scans the **masked** view of a library file (tests,
//! benches, examples, and binaries are exempt — they are allowed to
//! unwrap, time things, and use ad-hoc names) and yields violations
//! with 1-based line spans. Inline `// nessa-lint: allow(<rule>)`
//! comments suppress individual findings; everything else is matched
//! against the checked-in baseline by the engine.

use crate::lexer::SourceFile;
use crate::workspace::{FileKind, SourceEntry};
use crate::Violation;

/// Telemetry phase names that rule **T1** accepts. Kept in lockstep
/// with `nessa_telemetry::phase::REGISTERED_PHASES` (a cross-crate test
/// asserts the two lists are identical).
pub const REGISTERED_PHASES: &[&str] = &[
    "epoch",
    "scan",
    "select",
    "ship",
    "train",
    "feedback",
    "retry",
    "fallback",
    "overlap.select",
    "overlap.wait",
    "overlap.handoff",
];

/// Telemetry counter names that rule **T1** accepts. Kept in lockstep
/// with `nessa_telemetry::phase::REGISTERED_COUNTERS` (the same
/// cross-crate test asserts equality).
pub const REGISTERED_COUNTERS: &[&str] = &[
    "health.stalls",
    "train.batches",
    "train.samples",
    "fault.injected",
    "retry.attempts",
    "fallback.host",
    "fallback.random",
    "drive.evicted",
    "data.quarantined",
];

/// A lint rule: identifier, what it protects, and where it looks.
pub struct Rule {
    /// Stable rule id used in reports, baselines, and suppressions.
    pub id: &'static str,
    /// One-line rationale shown in reports.
    pub summary: &'static str,
    check: fn(&SourceEntry, &SourceFile, &mut Vec<Violation>),
}

/// All registered rules, in report order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "d1-wall-clock",
            summary: "wall-clock reads outside the telemetry clock module break \
                      sim-time determinism",
            check: check_d1,
        },
        Rule {
            id: "d2-unseeded-rng",
            summary: "entropy-seeded RNG construction breaks bit-reproducible selection",
            check: check_d2,
        },
        Rule {
            id: "d3-hash-iteration",
            summary: "HashMap/HashSet in selection result paths has unstable iteration order",
            check: check_d3,
        },
        Rule {
            id: "p1-panic",
            summary: "library code must return typed errors, not unwrap/expect/panic",
            check: check_p1,
        },
        Rule {
            id: "f1-float-eq",
            summary: "exact float == / != compares noise; use nessa_tensor::approx",
            check: check_f1,
        },
        Rule {
            id: "t1-unregistered-phase",
            summary: "telemetry span/counter names must come from the registered sets",
            check: check_t1,
        },
    ]
}

/// Runs every rule over one lexed file.
pub fn check_file(entry: &SourceEntry, sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if entry.kind != FileKind::Library {
        return out;
    }
    for rule in registry() {
        (rule.check)(entry, sf, &mut out);
    }
    out
}

/// Scans masked lines for a fixed token, filtering test regions and
/// suppressions, and pushes one violation per occurrence.
fn flag_token(
    entry: &SourceEntry,
    sf: &SourceFile,
    rule: &'static str,
    token: &str,
    message: &str,
    out: &mut Vec<Violation>,
) {
    for (i, line) in sf.masked.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        let mut start = 0;
        // Tokens starting with `.` anchor on the dot itself; identifier
        // tokens need a word boundary on the left so e.g. `should_panic`
        // never matches `panic!`.
        let needs_boundary = token
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        while let Some(pos) = line[start..].find(token) {
            let at = start + pos;
            let bounded = !needs_boundary
                || at == 0
                || !line[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if bounded && !sf.is_suppressed(i, rule) {
                out.push(Violation {
                    rule,
                    file: entry.rel.clone(),
                    module: entry.module.clone(),
                    line: i + 1,
                    column: at + 1,
                    message: message.to_string(),
                    snippet: sf.lines[i].trim().to_string(),
                });
            }
            start = at + token.len();
        }
    }
}

// --- D1: wall-clock quarantine -------------------------------------------

/// Files allowed to touch the wall clock: the telemetry clock module
/// (the single sanctioned `Instant::now` site) and the SmartSSD
/// simulator's virtual clock.
const D1_ALLOWED_FILES: &[&str] = &[
    "crates/telemetry/src/clock.rs",
    "crates/smartssd/src/clock.rs",
];

fn check_d1(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    if D1_ALLOWED_FILES.contains(&entry.rel.as_str()) {
        return;
    }
    for token in ["Instant::now", "SystemTime::now"] {
        flag_token(
            entry,
            sf,
            "d1-wall-clock",
            token,
            "read the clock through nessa_telemetry::clock (or the SmartSSD SimClock)",
            out,
        );
    }
}

// --- D2: seeded RNG only -------------------------------------------------

/// The one sanctioned RNG construction site: `nessa_tensor::rng`
/// (xoshiro256++ seeded via SplitMix64).
const D2_ALLOWED_FILES: &[&str] = &["crates/tensor/src/rng.rs"];

fn check_d2(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    if D2_ALLOWED_FILES.contains(&entry.rel.as_str()) {
        return;
    }
    for token in [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "RandomState",
    ] {
        flag_token(
            entry,
            sf,
            "d2-unseeded-rng",
            token,
            "construct RNGs only through the seeded nessa_tensor::rng::Rng64",
            out,
        );
    }
}

// --- D3: no hash collections in selection result paths -------------------

fn check_d3(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    if !(entry.rel.starts_with("crates/select/") || entry.rel.starts_with("crates/core/")) {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        flag_token(
            entry,
            sf,
            "d3-hash-iteration",
            token,
            "use a sorted Vec or dense index table; hash iteration order is unstable",
            out,
        );
    }
}

// --- P1: no panics in library code ---------------------------------------

fn check_p1(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    // `.expect(` anchors on the opening quote of the message so that
    // Result-returning parser methods that happen to be named `expect`
    // (e.g. the telemetry JSON parser's `self.expect('{')?`) never
    // match — `Option::expect`/`Result::expect` always take a message.
    for token in [".unwrap()", ".expect(\"", "panic!"] {
        flag_token(
            entry,
            sf,
            "p1-panic",
            token,
            "return a typed error (SelectError / PipelineError) instead of panicking",
            out,
        );
    }
}

// --- F1: no exact float comparison ---------------------------------------

/// The approved tolerance-comparison helper may use exact `==`.
const F1_ALLOWED_FILES: &[&str] = &["crates/tensor/src/approx.rs"];

fn check_f1(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    if F1_ALLOWED_FILES.contains(&entry.rel.as_str()) {
        return;
    }
    for (i, line) in sf.masked.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        let bytes: Vec<char> = line.chars().collect();
        let mut j = 0;
        while j + 1 < bytes.len() {
            let is_eq = bytes[j] == '=' && bytes[j + 1] == '=';
            let is_ne = bytes[j] == '!' && bytes[j + 1] == '=';
            if !(is_eq || is_ne) {
                j += 1;
                continue;
            }
            // Reject `<=`, `>=`, `===`-like runs and `!=` that is really
            // part of a longer operator.
            let prev = if j > 0 { Some(bytes[j - 1]) } else { None };
            let after = bytes.get(j + 2).copied();
            if is_eq && matches!(prev, Some('<') | Some('>') | Some('=') | Some('!')) {
                j += 2;
                continue;
            }
            if after == Some('=') {
                j += 2;
                continue;
            }
            let window = operand_window(line, j);
            if window_mentions_float(&window) && !sf.is_suppressed(i, "f1-float-eq") {
                out.push(Violation {
                    rule: "f1-float-eq",
                    file: entry.rel.clone(),
                    module: entry.module.clone(),
                    line: i + 1,
                    column: j + 1,
                    message: "use nessa_tensor::approx::approx_eq (or suppress for exact \
                              sentinels)"
                        .to_string(),
                    snippet: sf.lines[i].trim().to_string(),
                });
            }
            j += 2;
        }
    }
}

/// The text around a comparison operator, clipped at expression
/// boundaries (`;`, `{`, `}`, `,`, `&&`, `||`) — enough context to ask
/// "does either operand look like a float?" without dragging in the
/// rest of the statement.
fn operand_window(line: &str, op_at: usize) -> String {
    let chars: Vec<char> = line.chars().collect();
    let boundary = |k: usize| {
        matches!(chars[k], ';' | '{' | '}' | ',')
            || (k + 1 < chars.len()
                && ((chars[k] == '&' && chars[k + 1] == '&')
                    || (chars[k] == '|' && chars[k + 1] == '|')))
    };
    let mut lo = op_at;
    while lo > 0 && !boundary(lo - 1) {
        lo -= 1;
    }
    let mut hi = (op_at + 2).min(chars.len());
    while hi < chars.len() && !boundary(hi) {
        hi += 1;
    }
    chars[lo..hi].iter().collect()
}

/// Float heuristics: a `digit.digit` literal, an explicit `f32`/`f64`
/// type mention, or a float-typed cast in the window.
fn window_mentions_float(window: &str) -> bool {
    let chars: Vec<char> = window.chars().collect();
    for k in 1..chars.len().saturating_sub(1) {
        if chars[k] == '.' && chars[k - 1].is_ascii_digit() && chars[k + 1].is_ascii_digit() {
            return true;
        }
    }
    let mut prev_ident = false;
    for token in ["f32", "f64"] {
        let mut start = 0;
        while let Some(pos) = window[start..].find(token) {
            let at = start + pos;
            let left_ok = at == 0
                || !window[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let right_ok = !window[at + 3..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if left_ok && right_ok {
                prev_ident = true;
            }
            start = at + token.len();
        }
    }
    prev_ident
}

// --- T1: registered telemetry phase names --------------------------------

fn check_t1(entry: &SourceEntry, sf: &SourceFile, out: &mut Vec<Violation>) {
    // (anchor token, allowed vocabulary, registry named in the message)
    let vocabularies: [(&str, &[&str], &str); 3] = [
        (".span(\"", REGISTERED_PHASES, "REGISTERED_PHASES"),
        (".span_child_of(\"", REGISTERED_PHASES, "REGISTERED_PHASES"),
        (".counter(\"", REGISTERED_COUNTERS, "REGISTERED_COUNTERS"),
    ];
    for (i, masked) in sf.masked.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        let raw = &sf.lines[i];
        for (token, allowed, registry) in vocabularies {
            let mut start = 0;
            while let Some(pos) = masked[start..].find(token) {
                let at = start + pos;
                // The literal's body lives in the RAW line at the same
                // offsets (masking is length-preserving).
                let open = at + token.len();
                let name: String = raw.chars().skip(open).take_while(|&c| c != '"').collect();
                if !allowed.contains(&name.as_str())
                    && !sf.is_suppressed(i, "t1-unregistered-phase")
                {
                    out.push(Violation {
                        rule: "t1-unregistered-phase",
                        file: entry.rel.clone(),
                        module: entry.module.clone(),
                        line: i + 1,
                        column: at + 1,
                        message: format!(
                            "name \"{name}\" is not in nessa_telemetry::phase::{registry}"
                        ),
                        snippet: raw.trim().to_string(),
                    });
                }
                start = open;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{classify, module_path, SourceEntry};
    use std::path::PathBuf;

    fn entry(rel: &str) -> SourceEntry {
        SourceEntry {
            path: PathBuf::from(rel),
            rel: rel.to_string(),
            kind: classify(rel),
            module: module_path(rel),
        }
    }

    fn lint(rel: &str, src: &str) -> Vec<Violation> {
        let sf = SourceFile::parse(src);
        check_file(&entry(rel), &sf)
    }

    #[test]
    fn d1_flags_instant_now_outside_clock_module() {
        let v = lint(
            "crates/nn/src/train.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "d1-wall-clock");
        assert_eq!(v[0].line, 1);
        let v = lint("crates/telemetry/src/clock.rs", "Instant::now();\n");
        assert!(v.is_empty());
    }

    #[test]
    fn d1_ignores_comments_strings_and_tests() {
        let src = "\
// Instant::now() would be wrong here
fn f() { log(\"Instant::now\"); }

#[cfg(test)]
mod tests {
    fn t() { let _ = std::time::Instant::now(); }
}
";
        assert!(lint("crates/nn/src/train.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_entropy_rngs() {
        let v = lint("crates/nn/src/init.rs", "let r = thread_rng();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "d2-unseeded-rng");
        assert!(lint("crates/tensor/src/rng.rs", "from_entropy();\n").is_empty());
    }

    #[test]
    fn d3_applies_only_to_select_and_core() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint("crates/select/src/x.rs", src).len(), 1);
        assert_eq!(lint("crates/core/src/x.rs", src).len(), 1);
        assert!(lint("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn p1_flags_unwrap_expect_panic_in_library_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); }\n";
        let v = lint("crates/select/src/x.rs", src);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == "p1-panic"));
        assert!(lint("crates/select/tests/x.rs", src).is_empty());
        assert!(lint("crates/bench/src/bin/x.rs", src).is_empty());
        assert!(lint("benches/x.rs", src).is_empty());
    }

    #[test]
    fn p1_does_not_match_expect_err_or_should_panic() {
        let src = "fn f() { r.expect_err(\"m\"); }\n#[should_panic(expected = \"x\")]\n";
        assert!(lint("crates/select/src/x.rs", src).is_empty());
        // .unwrap_or / .unwrap_or_else are fine too.
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 1); }\n";
        assert!(lint("crates/select/src/x.rs", src).is_empty());
    }

    #[test]
    fn f1_flags_float_comparisons_only() {
        let v = lint("crates/nn/src/x.rs", "if loss == 0.0 { done(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "f1-float-eq");
        let v = lint("crates/nn/src/x.rs", "if c == f32::NEG_INFINITY { x(); }\n");
        assert_eq!(v.len(), 1);
        // Integer comparisons and <=, >= pass.
        assert!(lint("crates/nn/src/x.rs", "if i == 0 { x(); }\n").is_empty());
        assert!(lint("crates/nn/src/x.rs", "if a <= 0.5 { x(); }\n").is_empty());
        // The window clips at `&&`: only the float side trips the rule.
        assert!(lint("crates/nn/src/x.rs", "if i == 0 && f < 0.5 { x(); }\n").is_empty());
    }

    #[test]
    fn f1_respects_suppressions_and_approx_module() {
        let src = "// nessa-lint: allow(f1-float-eq) — exact sentinel\nif c == f32::MAX { x(); }\n";
        assert!(lint("crates/nn/src/x.rs", src).is_empty());
        assert!(lint("crates/tensor/src/approx.rs", "if a == 0.0 {}\n").is_empty());
    }

    #[test]
    fn t1_checks_span_names_against_registry() {
        let v = lint(
            "crates/core/src/x.rs",
            "let s = t.span(\"warmup\").finish();\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "t1-unregistered-phase");
        assert!(v[0].message.contains("warmup"));
        assert!(lint("crates/core/src/x.rs", "t.span(\"epoch\").finish();\n").is_empty());
        // `.spans(` (the accessor) must not anchor the rule.
        assert!(lint("crates/core/src/x.rs", "let all = t.spans();\n").is_empty());
    }

    #[test]
    fn suppression_works_for_token_rules() {
        let src = "x.unwrap(); // nessa-lint: allow(p1-panic) — invariant\n";
        assert!(lint("crates/select/src/x.rs", src).is_empty());
    }

    #[test]
    fn registry_ids_are_unique_and_kebab_case() {
        let rules = registry();
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for id in ids {
            assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }
}
