//! Comment- and string-aware source preparation.
//!
//! Every rule matches against the **masked** view of a file, where the
//! bodies of string literals, character literals, and comments are
//! blanked out (replaced by spaces, newlines preserved). That is what
//! makes the rules immune to the classic grep false positives: a
//! `panic!` mentioned in a doc comment, an `Instant::now` inside a log
//! message, or a `// nessa-lint: allow(...)` *inside a string literal*
//! never reach the pattern matcher.
//!
//! Suppressions are only honoured when they appear in plain `//` line
//! comments — never in doc comments (`///`, `//!`), block comments, or
//! string literals — so generated docs cannot accidentally (or
//! maliciously) disable a rule.

/// Prefix that marks an inline suppression comment.
pub const ALLOW_PREFIX: &str = "nessa-lint: allow(";

/// A lexed source file: raw lines, masked lines, per-line suppressions,
/// and the `#[cfg(test)]` region map.
#[derive(Debug)]
pub struct SourceFile {
    /// Raw source, split into lines (no trailing newlines).
    pub lines: Vec<String>,
    /// Masked source: identical shape, but string/char-literal bodies
    /// and comments are spaces. Delimiters (`"`) survive so patterns
    /// like `.expect("` still anchor correctly.
    pub masked: Vec<String>,
    /// Rule ids allowed on each line via `// nessa-lint: allow(rule)`.
    pub allows: Vec<Vec<String>>,
    /// Whether each line falls inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes a whole file.
    pub fn parse(source: &str) -> SourceFile {
        let (masked_text, comments) = mask(source);
        let lines: Vec<String> = split_lines(source);
        let masked: Vec<String> = split_lines(&masked_text);
        let mut allows = vec![Vec::new(); lines.len()];
        for (line, text) in comments {
            if line < allows.len() {
                parse_allow_list(&text, &mut allows[line]);
            }
        }
        let in_test = test_regions(&masked);
        SourceFile {
            lines,
            masked,
            allows,
            in_test,
        }
    }

    /// Whether a violation of `rule` on `line` (0-based) is suppressed:
    /// the allow may sit on the line itself or on the run of
    /// comment-only lines immediately above it (a blank line ends the
    /// run, keeping suppressions local to what they annotate).
    pub fn is_suppressed(&self, line: usize, rule: &str) -> bool {
        if self.allows[line].iter().any(|r| r == rule) {
            return true;
        }
        let mut i = line;
        while i > 0 {
            i -= 1;
            if self.lines[i].trim().is_empty() {
                return false; // blank line ends the comment run
            }
            if !self.masked[i].trim().is_empty() {
                return false; // a code line ends the comment run
            }
            if self.allows[i].iter().any(|r| r == rule) {
                return true;
            }
        }
        false
    }
}

fn split_lines(text: &str) -> Vec<String> {
    text.split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l).to_string())
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment { doc: bool },
    BlockComment { depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Blanks string/char-literal bodies and comments, preserving length
/// and line structure. String delimiters (`"`) are kept; comment
/// markers are blanked along with their body.
///
/// Returns the masked text plus the body text of every **plain** `//`
/// comment as `(line, text)` — the only place suppressions may live.
/// Collecting them here (rather than re-scanning later) is what keeps
/// a `//` inside a string literal from ever being mistaken for a
/// comment: by the time the scanner sees it, it is in string state.
fn mask(source: &str) -> (String, Vec<(usize, String)>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let start = i;
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    let third = chars.get(i + 2).copied();
                    let doc = third == Some('/') || third == Some('!');
                    state = State::LineComment { doc };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) && !ident_before(&out) {
                    // Raw string: r"..." or r#"..."# (any hash count).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr { hashes };
                        out.extend(std::iter::repeat_n(' ', j - i + 1));
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime. A literal closes within a
                    // few chars: '\n', 'x'; a lifetime ('a, 'static) does
                    // not.
                    if next == Some('\\') {
                        state = State::Char;
                        out.push(' ');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                        out.push(' ');
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        out.push(' ');
                        i += 3;
                    } else {
                        out.push(c); // lifetime; leave in code
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            State::LineComment { doc } => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    if !doc {
                        match comments.last_mut() {
                            Some((l, text)) if *l == line => text.push(c),
                            _ => comments.push((line, c.to_string())),
                        }
                    }
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment { depth } => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment { depth: depth + 1 };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    // A line-continuation escape must keep line structure.
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && (0..hashes).all(|h| chars.get(i + 1 + h) == Some(&'#')) {
                    state = State::Code;
                    out.extend(std::iter::repeat_n(' ', hashes + 1));
                    i += 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
        line += chars[start..i.min(chars.len())]
            .iter()
            .filter(|&&ch| ch == '\n')
            .count();
    }
    (out.into_iter().collect(), comments)
}

/// Whether the masked output so far ends in an identifier character —
/// distinguishes the raw-string prefix in `r"..."` from identifiers
/// that merely end in `r` (`var"` cannot occur, but `for r in` can).
fn ident_before(out: &[char]) -> bool {
    // The current char ('r') is not yet pushed, so the last pushed char
    // is the one *before* it.
    out.last()
        .is_some_and(|&prev| prev.is_alphanumeric() || prev == '_')
}

fn parse_allow_list(comment: &str, out: &mut Vec<String>) {
    if let Some(start) = comment.find(ALLOW_PREFIX) {
        let rest = &comment[start + ALLOW_PREFIX.len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_string());
                }
            }
        }
    }
}

/// Marks every line covered by a `#[cfg(test)]` item (typically
/// `mod tests { ... }`): from the attribute through the matching close
/// brace (or the terminating `;` for brace-less items).
fn test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let text: Vec<char> = masked.join("\n").chars().collect();
    // line_of[k] = which line character k sits on.
    let mut line_of = Vec::with_capacity(text.len());
    let mut line = 0;
    for &c in &text {
        line_of.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + needle.len() <= text.len() {
        if text[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start_line = line_of[i];
        let mut j = i + needle.len();
        // Scan forward to the item: first `{` opens a braced region;
        // a `;` first means a brace-less item (e.g. `#[cfg(test)] use`).
        let mut depth = 0usize;
        let mut end = None;
        while j < text.len() {
            match text[j] {
                '{' => {
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                ';' if depth == 0 => {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end = end.unwrap_or(text.len() - 1);
        let end_line = line_of[end.min(text.len() - 1)];
        for l in in_test.iter_mut().take(end_line + 1).skip(start_line) {
            *l = true;
        }
        i = end + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_comments_but_keeps_code() {
        let sf = SourceFile::parse("let x = 1; // Instant::now() here\n");
        assert!(sf.masked[0].contains("let x = 1;"));
        assert!(!sf.masked[0].contains("Instant"));
    }

    #[test]
    fn masks_string_bodies_but_keeps_quotes() {
        let sf = SourceFile::parse("call(\".unwrap() panic!\");\n");
        assert!(!sf.masked[0].contains("unwrap"));
        assert!(!sf.masked[0].contains("panic"));
        assert!(sf.masked[0].contains("call(\""));
    }

    #[test]
    fn masks_raw_strings() {
        let sf = SourceFile::parse("let s = r#\"Instant::now() .unwrap()\"#;\n");
        assert!(!sf.masked[0].contains("Instant"));
        assert!(!sf.masked[0].contains("unwrap"));
        assert!(sf.masked[0].contains("let s ="));
    }

    #[test]
    fn masks_nested_block_comments() {
        let sf = SourceFile::parse("a /* x /* panic! */ still comment */ b\n");
        assert!(sf.masked[0].contains('a'));
        assert!(sf.masked[0].contains('b'));
        assert!(!sf.masked[0].contains("panic"));
        assert!(!sf.masked[0].contains("still"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let sf = SourceFile::parse("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n");
        // Lifetimes survive; char-literal bodies are blanked, so the
        // quote char inside '"' cannot open a bogus string.
        assert!(sf.masked[0].contains("<'a>"));
        assert!(!sf.masked[0].contains("'x'"));
        assert!(sf.masked[0].contains("let d ="));
    }

    #[test]
    fn allow_in_plain_comment_is_honoured() {
        let sf = SourceFile::parse("x(); // nessa-lint: allow(p1-panic) — reason\n");
        assert_eq!(sf.allows[0], vec!["p1-panic".to_string()]);
        assert!(sf.is_suppressed(0, "p1-panic"));
        assert!(!sf.is_suppressed(0, "d1-wall-clock"));
    }

    #[test]
    fn allow_list_parses_multiple_rules() {
        let sf = SourceFile::parse("// nessa-lint: allow(p1-panic, f1-float-eq)\nx();\n");
        assert!(sf.is_suppressed(1, "p1-panic"));
        assert!(sf.is_suppressed(1, "f1-float-eq"));
    }

    #[test]
    fn allow_inside_string_literal_is_ignored() {
        let sf = SourceFile::parse("let s = \"// nessa-lint: allow(p1-panic)\";\n");
        assert!(sf.allows[0].is_empty());
        assert!(!sf.is_suppressed(0, "p1-panic"));
    }

    #[test]
    fn allow_inside_raw_string_is_ignored() {
        let sf = SourceFile::parse("let s = r\"// nessa-lint: allow(p1-panic)\";\n");
        assert!(sf.allows[0].is_empty());
    }

    #[test]
    fn allow_in_doc_comment_is_ignored() {
        let sf = SourceFile::parse("/// nessa-lint: allow(p1-panic)\nx();\n");
        assert!(sf.allows[0].is_empty());
        assert!(!sf.is_suppressed(1, "p1-panic"));
        let sf = SourceFile::parse("//! nessa-lint: allow(p1-panic)\nx();\n");
        assert!(sf.allows[0].is_empty());
    }

    #[test]
    fn preceding_comment_run_suppresses_with_blank_line_boundary() {
        let src = "\
// nessa-lint: allow(p1-panic) — spans
// two comment lines
x.unwrap();
";
        let sf = SourceFile::parse(src);
        assert!(sf.is_suppressed(2, "p1-panic"));
        let src_with_gap = "\
// nessa-lint: allow(p1-panic)

x.unwrap();
";
        let sf = SourceFile::parse(src_with_gap);
        assert!(!sf.is_suppressed(2, "p1-panic"));
    }

    #[test]
    fn cfg_test_region_covers_module_body() {
        let src = "\
pub fn lib() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}

pub fn lib2() {}
";
        let sf = SourceFile::parse(src);
        assert!(!sf.in_test[0]);
        assert!(sf.in_test[2]); // the attribute line itself
        assert!(sf.in_test[5]); // the unwrap line
        assert!(!sf.in_test[8]);
    }

    #[test]
    fn cfg_test_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn lib() {}\n";
        let sf = SourceFile::parse(src);
        assert!(sf.in_test[1]);
        assert!(!sf.in_test[2]);
    }
}
