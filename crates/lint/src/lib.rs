//! `nessa-lint`: the workspace invariant linter.
//!
//! The NeSSA reproduction leans on invariants an ordinary compiler
//! cannot check: selection must be bit-reproducible under a fixed seed
//! (the trace-diff regression gate depends on it), library code must
//! fail with typed errors rather than panics, and telemetry phases must
//! come from one registered vocabulary so run profiles stay diffable.
//! This crate enforces those invariants statically, with zero
//! dependencies:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `d1-wall-clock` | `Instant::now`/`SystemTime::now` only in the telemetry clock module / SmartSSD `SimClock` |
//! | `d2-unseeded-rng` | RNGs only via the seeded `nessa_tensor::rng::Rng64` |
//! | `d3-hash-iteration` | no `HashMap`/`HashSet` in `crates/select` / `crates/core` |
//! | `p1-panic` | no `.unwrap()` / `.expect(` / `panic!` in library code |
//! | `f1-float-eq` | no exact float `==`/`!=` outside `nessa_tensor::approx` |
//! | `t1-unregistered-phase` | span names from the registered phase set |
//!
//! Matching happens on a masked view of each file ([`lexer`]) so
//! comments and string literals can never trip — or suppress — a rule.
//! Findings are reconciled against a checked-in ratchet
//! ([`baseline`]): the gate fails only on *new* debt. See DESIGN.md
//! §10 for the workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::collections::BTreeMap;
use std::path::Path;

use baseline::Baseline;
use lexer::SourceFile;
use workspace::SourceEntry;

/// One rule finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (e.g. `p1-panic`).
    pub rule: &'static str,
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// Rust module path (e.g. `nessa_select::facility`).
    pub module: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (character offset).
    pub column: usize,
    /// What to do instead.
    pub message: String,
    /// The offending line, trimmed.
    pub snippet: String,
}

/// The result of linting a workspace against a baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// How many files were scanned.
    pub files_checked: usize,
    /// Violations absorbed by the baseline.
    pub baselined: usize,
    /// Violations **beyond** the baseline — these fail the gate. When a
    /// `(rule, file)` count exceeds its frozen ceiling, every violation
    /// in that group is listed (counts cannot tell old from new).
    pub new_violations: Vec<Violation>,
    /// Every violation found, baselined or not.
    pub all_violations: Vec<Violation>,
    /// Baseline entries whose frozen count exceeds what was found:
    /// `(rule, file, frozen, seen)`. Not a failure, but worth
    /// ratcheting down.
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Outcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty()
    }

    /// Observed `(rule, file)` counts — the input to `--write-baseline`.
    pub fn counts(&self) -> BTreeMap<(String, String), usize> {
        let mut counts = BTreeMap::new();
        for v in &self.all_violations {
            *counts
                .entry((v.rule.to_string(), v.file.clone()))
                .or_insert(0) += 1;
        }
        counts
    }
}

/// Lints every workspace source under `root` (no baseline applied:
/// `new_violations == all_violations`).
pub fn lint_workspace(root: &Path) -> Outcome {
    let files = workspace::discover(root);
    let mut all = Vec::new();
    for entry in &files {
        if let Ok(text) = std::fs::read_to_string(&entry.path) {
            all.extend(lint_source(entry, &text));
        }
    }
    Outcome {
        files_checked: files.len(),
        baselined: 0,
        new_violations: all.clone(),
        all_violations: all,
        stale: Vec::new(),
    }
}

/// Lints one already-loaded source file.
pub fn lint_source(entry: &SourceEntry, text: &str) -> Vec<Violation> {
    let sf = SourceFile::parse(text);
    rules::check_file(entry, &sf)
}

/// Lints the workspace and reconciles against `baseline`.
pub fn lint_with_baseline(root: &Path, baseline: &Baseline) -> Outcome {
    let mut outcome = lint_workspace(root);
    let counts = outcome.counts();
    let mut new = Vec::new();
    let mut baselined = 0;
    for ((rule, file), &seen) in &counts {
        let frozen = baseline.allowed(rule, file);
        if seen > frozen {
            new.extend(
                outcome
                    .all_violations
                    .iter()
                    .filter(|v| v.rule == *rule && v.file == *file)
                    .cloned(),
            );
        } else {
            baselined += seen;
        }
    }
    // Baseline entries that reference more debt than exists (or files
    // that no longer violate at all) are stale.
    for (rule, file, frozen) in baseline.iter() {
        let seen = counts
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0);
        if seen < frozen {
            outcome
                .stale
                .push((rule.to_string(), file.to_string(), frozen, seen));
        }
    }
    new.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.column, a.rule).cmp(&(
            b.file.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
    outcome.new_violations = new;
    outcome.baselined = baselined;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use workspace::{classify, module_path};

    fn entry(rel: &str) -> SourceEntry {
        SourceEntry {
            path: rel.into(),
            rel: rel.to_string(),
            kind: classify(rel),
            module: module_path(rel),
        }
    }

    #[test]
    fn lint_source_ties_the_layers_together() {
        let v = lint_source(
            &entry("crates/nn/src/x.rs"),
            "fn f() { t.unwrap(); } // nessa-lint: allow(p1-panic)\nfn g() { u.unwrap(); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].module, "nessa_nn::x");
    }

    #[test]
    fn counts_group_by_rule_and_file() {
        let violations = lint_source(
            &entry("crates/nn/src/x.rs"),
            "fn f() { a.unwrap(); b.unwrap(); let t = std::time::Instant::now(); }\n",
        );
        let outcome = Outcome {
            files_checked: 1,
            baselined: 0,
            new_violations: violations.clone(),
            all_violations: violations,
            stale: Vec::new(),
        };
        let counts = outcome.counts();
        assert_eq!(
            counts[&("p1-panic".to_string(), "crates/nn/src/x.rs".to_string())],
            2
        );
        assert_eq!(
            counts[&(
                "d1-wall-clock".to_string(),
                "crates/nn/src/x.rs".to_string()
            )],
            1
        );
    }
}
