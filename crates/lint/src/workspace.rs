//! Workspace discovery: which `.rs` files get linted, and what kind
//! each one is.
//!
//! The walker visits the workspace's Rust sources in a deterministic
//! (sorted) order and classifies each file so rules can scope
//! themselves: the panic rule, for instance, applies only to
//! [`FileKind::Library`] code. Build products (`target/`), the in-repo
//! devtools stand-ins (`crates/devtools/`), and the linter's own test
//! fixtures (`crates/lint/tests/fixtures/`) are never linted.

use std::fs;
use std::path::{Path, PathBuf};

/// What a source file is for — determines which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code shipped to downstream crates. All rules apply.
    Library,
    /// Integration-test code (`tests/` directories). Exempt.
    Test,
    /// Criterion benchmarks (`benches/`). Exempt.
    Bench,
    /// Examples (`examples/`). Exempt.
    Example,
    /// Binary entry points (`src/bin/`, `src/main.rs`). Exempt.
    Bin,
}

impl FileKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Library => "library",
            FileKind::Test => "test",
            FileKind::Bench => "bench",
            FileKind::Example => "example",
            FileKind::Bin => "bin",
        }
    }
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceEntry {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (stable across
    /// platforms; this is the form used in baselines and reports).
    pub rel: String,
    /// Classification.
    pub kind: FileKind,
    /// Rust module path, e.g. `nessa_select::facility` — used in
    /// reports to attribute a violation to the module a maintainer
    /// would search for, not just a file path.
    pub module: String,
}

/// Directories under the workspace root that contain lintable sources.
const ROOTS: &[&str] = &["crates", "src", "tests", "benches", "examples"];

/// Path prefixes (workspace-relative, `/`-separated) that are skipped.
const SKIP_PREFIXES: &[&str] = &["crates/devtools/", "crates/lint/tests/fixtures/", "target/"];

/// Walks the workspace and returns every lintable `.rs` file, sorted by
/// relative path.
pub fn discover(root: &Path) -> Vec<SourceEntry> {
    let mut files = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files);
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    files
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<SourceEntry>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = relative(&path, root);
        if SKIP_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
        {
            continue;
        }
        if path.is_dir() {
            // Never descend into build products, even nested ones.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let kind = classify(&rel);
            let module = module_path(&rel);
            out.push(SourceEntry {
                path,
                rel,
                kind,
                module,
            });
        }
    }
}

fn relative(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileKind {
    let segments: Vec<&str> = rel.split('/').collect();
    if segments.contains(&"tests") {
        FileKind::Test
    } else if segments.contains(&"benches") {
        FileKind::Bench
    } else if segments.contains(&"examples") {
        FileKind::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("src/main.rs") {
        FileKind::Bin
    } else {
        FileKind::Library
    }
}

/// Derives the Rust module path for a workspace-relative file path:
/// `crates/select/src/facility.rs` → `nessa_select::facility`,
/// `src/lib.rs` → `nessa`, `tests/robustness.rs` → `robustness`.
pub fn module_path(rel: &str) -> String {
    let segments: Vec<&str> = rel.split('/').collect();
    let (crate_name, src_rel) = if segments.first() == Some(&"crates") && segments.len() > 2 {
        (
            format!("nessa_{}", segments[1].replace('-', "_")),
            segments[2..].to_vec(),
        )
    } else {
        ("nessa".to_string(), segments)
    };
    let mut parts: Vec<String> = Vec::new();
    for (i, seg) in src_rel.iter().enumerate() {
        if i == 0 && (*seg == "src" || *seg == "tests" || *seg == "benches" || *seg == "examples") {
            continue;
        }
        let seg = seg.strip_suffix(".rs").unwrap_or(seg);
        if seg == "lib" || seg == "mod" || seg == "main" {
            continue;
        }
        parts.push(seg.replace('-', "_"));
    }
    // Top-level tests/benches/examples files are their own crate roots.
    let is_crate_member = src_rel.first() == Some(&"src");
    if is_crate_member {
        let mut module = crate_name;
        for p in parts {
            module.push_str("::");
            module.push_str(&p);
        }
        module
    } else if parts.is_empty() {
        crate_name
    } else {
        parts.join("::")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_layouts() {
        assert_eq!(classify("crates/select/src/facility.rs"), FileKind::Library);
        assert_eq!(classify("crates/select/tests/props.rs"), FileKind::Test);
        assert_eq!(
            classify("crates/bench/benches/select_greedy.rs"),
            FileKind::Bench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("crates/bench/src/bin/lint.rs"), FileKind::Bin);
        assert_eq!(classify("src/lib.rs"), FileKind::Library);
        assert_eq!(classify("tests/robustness.rs"), FileKind::Test);
    }

    #[test]
    fn module_paths_read_naturally() {
        assert_eq!(
            module_path("crates/select/src/facility.rs"),
            "nessa_select::facility"
        );
        assert_eq!(module_path("crates/select/src/lib.rs"), "nessa_select");
        assert_eq!(module_path("src/lib.rs"), "nessa");
        assert_eq!(module_path("tests/robustness.rs"), "robustness");
        assert_eq!(
            module_path("crates/nn/src/layers/mod.rs"),
            "nessa_nn::layers"
        );
    }

    #[test]
    fn discovers_this_workspace_deterministically() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = discover(root);
        assert!(files.len() > 50, "found only {} files", files.len());
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"crates/select/src/facility.rs"));
        assert!(rels.iter().all(|r| !r.starts_with("crates/devtools/")));
        assert!(rels
            .iter()
            .all(|r| !r.starts_with("crates/lint/tests/fixtures/")));
        let mut sorted = rels.clone();
        sorted.sort_unstable();
        assert_eq!(rels, sorted, "discovery order must be deterministic");
    }
}
