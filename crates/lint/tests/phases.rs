//! Rule T1's phase and counter vocabularies are hardcoded copies (the
//! linter depends on nothing), so this cross-crate test pins them to the
//! authoritative registry in `nessa-telemetry`. If a name is added
//! there, this test fails until the linter's copy is updated in the same
//! change.

#[test]
fn lint_phase_list_matches_telemetry_registry() {
    assert_eq!(
        nessa_lint::rules::REGISTERED_PHASES,
        nessa_telemetry::phase::REGISTERED_PHASES,
        "update nessa_lint::rules::REGISTERED_PHASES alongside the telemetry registry"
    );
}

#[test]
fn lint_counter_list_matches_telemetry_registry() {
    assert_eq!(
        nessa_lint::rules::REGISTERED_COUNTERS,
        nessa_telemetry::phase::REGISTERED_COUNTERS,
        "update nessa_lint::rules::REGISTERED_COUNTERS alongside the telemetry registry"
    );
}

#[test]
fn telemetry_registry_recognises_its_own_phases() {
    for phase in nessa_lint::rules::REGISTERED_PHASES {
        assert!(nessa_telemetry::phase::is_registered(phase));
    }
    assert!(!nessa_telemetry::phase::is_registered("warmup"));
}

#[test]
fn telemetry_registry_recognises_its_own_counters() {
    for counter in nessa_lint::rules::REGISTERED_COUNTERS {
        assert!(nessa_telemetry::phase::is_registered_counter(counter));
    }
    assert!(!nessa_telemetry::phase::is_registered_counter(
        "fault.imagined"
    ));
}

#[test]
fn fault_tolerance_vocabulary_is_covered() {
    // The chaos gate asserts on these exact names; rule T1 only protects
    // them if they are in the registered sets.
    for phase in ["retry", "fallback"] {
        assert!(nessa_telemetry::phase::is_registered(phase), "{phase}");
    }
    for counter in [
        "fault.injected",
        "retry.attempts",
        "fallback.host",
        "fallback.random",
        "drive.evicted",
        "data.quarantined",
    ] {
        assert!(
            nessa_telemetry::phase::is_registered_counter(counter),
            "{counter}"
        );
    }
}
