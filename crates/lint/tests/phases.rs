//! Rule T1's phase vocabulary is a hardcoded copy (the linter depends
//! on nothing), so this cross-crate test pins it to the authoritative
//! registry in `nessa-telemetry`. If a phase is added there, this test
//! fails until the linter's copy is updated in the same change.

#[test]
fn lint_phase_list_matches_telemetry_registry() {
    assert_eq!(
        nessa_lint::rules::REGISTERED_PHASES,
        nessa_telemetry::phase::REGISTERED_PHASES,
        "update nessa_lint::rules::REGISTERED_PHASES alongside the telemetry registry"
    );
}

#[test]
fn telemetry_registry_recognises_its_own_phases() {
    for phase in nessa_lint::rules::REGISTERED_PHASES {
        assert!(nessa_telemetry::phase::is_registered(phase));
    }
    assert!(!nessa_telemetry::phase::is_registered("warmup"));
}
