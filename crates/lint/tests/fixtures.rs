//! Runs the engine over the checked-in fixture files — one known
//! violation (or hazard) per rule — and asserts exact spans.
//!
//! The fixtures live under `tests/fixtures/` which the workspace
//! walker skips, so they never pollute a real lint run.

use std::path::{Path, PathBuf};

use nessa_lint::workspace::{classify, module_path, SourceEntry};
use nessa_lint::{lint_source, Violation};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel` inside the workspace.
fn lint_fixture_as(name: &str, rel: &str) -> Vec<Violation> {
    let entry = SourceEntry {
        path: PathBuf::from(rel),
        rel: rel.to_string(),
        kind: classify(rel),
        module: module_path(rel),
    };
    lint_source(&entry, &fixture(name))
}

#[test]
fn d1_fixture_flags_the_wall_clock_read() {
    let v = lint_fixture_as("d1_wall_clock.rs", "crates/nn/src/elapsed.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("d1-wall-clock", 5));
}

#[test]
fn d2_fixture_flags_the_entropy_rng() {
    let v = lint_fixture_as("d2_unseeded_rng.rs", "crates/nn/src/jitter.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("d2-unseeded-rng", 4));
}

#[test]
fn d3_fixture_flags_hash_collections_in_select_paths_only() {
    let v = lint_fixture_as("d3_hash_iteration.rs", "crates/select/src/weights.rs");
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "d3-hash-iteration"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[1].line, 6);
    // The same file outside select/core is not D3's business.
    let v = lint_fixture_as("d3_hash_iteration.rs", "crates/quant/src/weights.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn p1_fixture_flags_all_three_panic_forms() {
    let v = lint_fixture_as("p1_panic.rs", "crates/quant/src/first.rs");
    assert_eq!(v.len(), 3, "{v:?}");
    let lines: Vec<usize> = v.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![4, 5, 7]);
    assert!(v.iter().all(|v| v.rule == "p1-panic"));
    // Same content under tests/ is exempt.
    let v = lint_fixture_as("p1_panic.rs", "crates/quant/tests/first.rs");
    assert!(v.is_empty());
}

#[test]
fn f1_fixture_flags_only_the_float_comparison() {
    let v = lint_fixture_as("f1_float_eq.rs", "crates/nn/src/conv.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("f1-float-eq", 4));
}

#[test]
fn t1_fixture_flags_only_the_unregistered_phase() {
    let v = lint_fixture_as("t1_phase.rs", "crates/core/src/trace.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("t1-unregistered-phase", 4));
    assert!(v[0].message.contains("warmup"));
}

#[test]
fn hazard_suppression_inside_string_does_not_disarm() {
    let v = lint_fixture_as("hazard_suppression_in_string.rs", "crates/quant/src/log.rs");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("p1-panic", 7));
}

#[test]
fn hazard_suppression_in_doc_comment_does_not_disarm() {
    let v = lint_fixture_as("hazard_suppression_in_doc.rs", "crates/quant/src/doc.rs");
    assert_eq!(v.len(), 2, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), ("p1-panic", 4));
    assert_eq!((v[1].rule, v[1].line), ("f1-float-eq", 9));
}

#[test]
fn hazard_mentions_in_comments_and_strings_are_invisible() {
    let v = lint_fixture_as("hazard_mentions_only.rs", "crates/select/src/clean.rs");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn suppressed_fixture_is_clean() {
    let v = lint_fixture_as("suppressed_ok.rs", "crates/select/src/ok.rs");
    assert!(v.is_empty(), "{v:?}");
}
