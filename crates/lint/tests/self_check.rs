//! The linter's dogfood test: running nessa-lint over the real
//! workspace must match `baseline.toml` **exactly** — no new
//! violations, no stale entries — and the burn-down guarantees must
//! hold (zero frozen debt in `crates/select` and `crates/core`).
//!
//! If this test fails after you edited workspace code, either fix the
//! new violation, add a justified inline suppression, or (legacy debt
//! only) run `cargo run --release --bin lint -- --write-baseline`.

use std::path::Path;

use nessa_lint::baseline::Baseline;
use nessa_lint::{lint_with_baseline, lint_workspace};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    assert!(
        root.join("Cargo.toml").exists(),
        "not a workspace root: {}",
        root.display()
    );
    root
}

fn load_baseline() -> Baseline {
    let path = workspace_root().join("crates/lint/baseline.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Baseline::parse(&text).expect("baseline.toml must parse")
}

#[test]
fn workspace_matches_baseline_exactly() {
    let baseline = load_baseline();
    let outcome = lint_with_baseline(workspace_root(), &baseline);
    assert!(
        outcome.new_violations.is_empty(),
        "new violations beyond baseline:\n{}",
        outcome
            .new_violations
            .iter()
            .map(|v| format!("  {} {}:{} — {}", v.rule, v.file, v.line, v.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "baseline is stale (debt was burned down — ratchet it): {:?}",
        outcome.stale
    );
    // The counts must agree entry for entry, both directions.
    let counts = outcome.counts();
    for (rule, file, frozen) in baseline.iter() {
        let seen = counts
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0);
        assert_eq!(
            seen, frozen,
            "baseline drift for {rule} in {file}: frozen {frozen}, found {seen}"
        );
    }
    for ((rule, file), seen) in &counts {
        assert_eq!(
            *seen,
            baseline.allowed(rule, file),
            "unbaselined count for {rule} in {file}"
        );
    }
}

#[test]
fn burned_down_paths_have_no_frozen_debt() {
    let baseline = load_baseline();
    for (rule, file, count) in baseline.iter() {
        assert!(
            !file.starts_with("crates/select/"),
            "crates/select must stay lint-clean, found {rule} x{count} in {file}"
        );
        assert!(
            file != "crates/core/src/pipeline.rs",
            "the pipeline hot path must stay lint-clean, found {rule} x{count}"
        );
        // The whole of crates/core is clean today; keep it that way.
        assert!(
            !file.starts_with("crates/core/"),
            "crates/core must stay lint-clean, found {rule} x{count} in {file}"
        );
    }
}

#[test]
fn workspace_scan_finds_the_expected_shape() {
    let outcome = lint_workspace(workspace_root());
    assert!(
        outcome.files_checked > 100,
        "only {} files checked — walker regression?",
        outcome.files_checked
    );
    // Determinism of the scan itself: two runs, identical findings.
    let again = lint_workspace(workspace_root());
    assert_eq!(outcome.all_violations, again.all_violations);
}

#[test]
fn seeded_violations_are_caught_with_correct_spans() {
    // Build a miniature workspace in the test tmpdir, seed one D1, one
    // D2, and one P1 violation, and check the gate trips on each with
    // the right file:line.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-ws");
    let src = root.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(
        src.join("lib.rs"),
        "pub mod a;\n\npub fn t() -> f64 {\n    let t0 = std::time::Instant::now();\n    t0.elapsed().as_secs_f64()\n}\n",
    )
    .expect("write lib.rs");
    std::fs::write(
        src.join("a.rs"),
        "pub fn r() -> u64 {\n    let mut rng = thread_rng();\n    rng.gen()\n}\n\npub fn p(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("write a.rs");

    let outcome = lint_with_baseline(&root, &Baseline::default());
    assert!(!outcome.is_clean());
    let spans: Vec<(&str, &str, usize)> = outcome
        .new_violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();
    assert!(spans.contains(&("d1-wall-clock", "crates/demo/src/lib.rs", 4)));
    assert!(spans.contains(&("d2-unseeded-rng", "crates/demo/src/a.rs", 2)));
    assert!(spans.contains(&("p1-panic", "crates/demo/src/a.rs", 7)));
    assert_eq!(spans.len(), 3, "{spans:?}");
}
