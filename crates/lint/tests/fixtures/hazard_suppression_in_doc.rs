/// Doc comments cannot carry suppressions:
/// nessa-lint: allow(p1-panic)
pub fn still_flagged(x: Option<u32>) -> u32 {
    x.unwrap() // violation: line 4 — doc-comment allow is inert
}

//! nessa-lint: allow(f1-float-eq)
pub fn also_flagged(a: f32) -> bool {
    a == 1.0 // violation: line 9 — inner-doc allow is inert
}
