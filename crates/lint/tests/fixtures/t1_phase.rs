// Fixture: one T1 violation (unregistered telemetry phase name).

pub fn trace(t: &Telemetry) {
    t.span("warmup").finish(); // violation: line 4
    t.span("epoch").finish(); // registered: fine
}
