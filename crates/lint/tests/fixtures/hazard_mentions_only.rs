// Hazard fixture: rule tokens appearing only in comments, strings,
// and raw strings must produce ZERO violations.
//
// Instant::now() .unwrap() panic! thread_rng HashMap == 0.0

pub fn clean() -> &'static str {
    let a = "Instant::now() and .unwrap() and panic!";
    let b = r#".expect("msg") SystemTime::now thread_rng()"#;
    /* HashMap<usize, f32> and loss == 0.0 in a block comment */
    if a.len() > b.len() {
        a
    } else {
        b
    }
}
