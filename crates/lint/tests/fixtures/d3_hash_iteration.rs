// Fixture: one D3 violation (hash collection in a selection path).
// Only trips when linted under a crates/select or crates/core path.

use std::collections::HashMap; // violation: line 4

pub fn weights(indices: &[usize]) -> HashMap<usize, f32> {
    // (line 6 has a second HashMap mention: also flagged)
    indices.iter().map(|&i| (i, 1.0)).collect()
}
