// Fixture: one D1 violation (wall-clock read in library code).
// Linted with a synthetic path by tests/fixtures.rs — never compiled.

pub fn elapsed_secs(since: std::time::Instant) -> f64 {
    let now = std::time::Instant::now(); // violation: line 5
    now.duration_since(since).as_secs_f64()
}
