// Fixture: properly suppressed violations produce no findings.

pub fn sentinel(c: f32) -> bool {
    // nessa-lint: allow(f1-float-eq) — exact sentinel comparison is
    // intentional here; NEG_INFINITY marks "already selected".
    c == f32::NEG_INFINITY
}

pub fn invariant(x: Option<u32>) -> u32 {
    x.unwrap() // nessa-lint: allow(p1-panic) — filled two lines up
}
