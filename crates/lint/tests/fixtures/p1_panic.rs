// Fixture: three P1 violations (unwrap, expect, panic!).

pub fn first(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap(); // violation: line 4
    let tail = xs.last().expect("non-empty"); // violation: line 5
    if head > tail {
        panic!("unsorted"); // violation: line 7
    }
    *head
}
