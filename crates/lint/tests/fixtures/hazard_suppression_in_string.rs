// Hazard fixture: a suppression *inside a string literal* must not
// disarm the rule for the real violation on the same line.

pub fn log_and_crash(x: Option<u32>) -> u32 {
    let msg = "// nessa-lint: allow(p1-panic)";
    println!("{msg}");
    x.unwrap() // violation: line 7 — the string above is not a comment
}
