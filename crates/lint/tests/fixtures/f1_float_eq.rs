// Fixture: one F1 violation (exact float equality).

pub fn converged(loss: f32) -> bool {
    loss == 0.0 // violation: line 4
}

pub fn integer_compare_is_fine(i: usize) -> bool {
    i == 0
}
