// Fixture: one D2 violation (entropy-seeded RNG construction).

pub fn jitter() -> u64 {
    let mut rng = thread_rng(); // violation: line 4
    rng.next_u64()
}
