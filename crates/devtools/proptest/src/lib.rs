//! An offline, dependency-free subset of the [proptest] property-testing
//! API, providing exactly the surface this workspace's test suites use:
//!
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros,
//! * [`Strategy`] with [`Strategy::prop_map`],
//! * integer / float range strategies (`0usize..128`, `-3.0f32..3.0`),
//! * tuple strategies, [`arbitrary::any`], [`strategy::Just`], and
//!   [`collection::vec`].
//!
//! The container image has no crates-io mirror, so the real crate cannot
//! be fetched; this stand-in keeps the property suites runnable and is
//! API-compatible for the subset above (swap the path dependency back to
//! the registry crate to regain shrinking and failure persistence —
//! neither affects whether a property holds).
//!
//! Cases are generated from a fixed per-test seed (derived from the test
//! function's name), so failures reproduce deterministically. There is no
//! shrinking: the failing inputs are reported as generated.
//!
//! [proptest]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Number of cases each `proptest!` test executes.
pub const DEFAULT_CASES: usize = 96;

/// The `prop::` module alias exposed by [`prelude`], mirroring the real
/// crate's `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block becomes a normal `#[test]` that draws [`DEFAULT_CASES`] input
/// tuples from its strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::DEFAULT_CASES {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __inputs = format!(
                        concat!("case {} of ", stringify!($name), ": ", $( stringify!($arg), " = {:?} " ),+),
                        __case, $( &$arg ),+
                    );
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = __result {
                        eprintln!("proptest failure at {__inputs}");
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f32..5.0, b in any::<u64>()) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..5.0).contains(&x));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_size(xs in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn map_and_tuples_compose(v in (1usize..4, 0i32..3).prop_map(|(a, b)| a as i32 + b)) {
            prop_assert!((1..6).contains(&v));
        }

        #[test]
        fn just_yields_constant(v in Just(7u8)) {
            prop_assert_eq!(v, 7);
            prop_assert_ne!(v, 8);
        }
    }

    #[test]
    fn same_test_name_replays_same_cases() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
