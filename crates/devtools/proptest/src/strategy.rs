//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy yielding one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )+
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

// `impl Strategy` return positions in test helpers need boxed-free
// composition; references delegate so `&strat` also works.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
