//! The deterministic case generator behind `proptest!`.

/// A SplitMix64-based RNG seeded from the test name, so every run of a
/// given test replays the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for a named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next uniform `u64` (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires n > 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
