//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
