//! An offline, dependency-free subset of the [criterion] benchmarking
//! API. The container image has no crates-io mirror, so the real crate
//! cannot be fetched; this stand-in keeps `cargo bench` functional with
//! the same bench sources (swap the path dependency back to the registry
//! crate to regain statistical analysis and HTML reports).
//!
//! Covered surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples (default 30) of auto-calibrated iteration
//! batches; the mean, minimum, and maximum per-iteration times are
//! printed. No statistics beyond that — this harness exists to keep
//! benches compiling and giving usable relative numbers offline.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warm-up budget per benchmark.
const WARMUP: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 30, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            _parent: self,
            sample_size: 30,
        }
    }
}

/// A group of related benchmarks (prefix + shared sample size).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("  {name}"), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("  {id}"), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (purely cosmetic in this harness).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Calls `f` repeatedly, recording per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and calibrate the batch size so one sample lasts
        // roughly SAMPLE_TARGET.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        self.iters_per_sample = ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.samples.len(),
        b.iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Groups benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_input_and_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    #[test]
    fn id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 128).to_string(), "f/128");
    }
}
