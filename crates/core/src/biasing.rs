//! Subset biasing (paper §3.2.2).
//!
//! "We record losses of the current training examples from the most recent
//! five epochs, mark the samples with small values, and drop the marked
//! samples from the training set every twenty epochs." The tracker keeps a
//! bounded per-sample loss history and maintains the **active pool** —
//! the candidate indices future subsets are selected from.

use std::collections::VecDeque;

/// Per-sample loss history and the active candidate pool.
#[derive(Debug, Clone)]
pub struct LossTracker {
    window: usize,
    drop_every: usize,
    drop_fraction: f32,
    min_pool: usize,
    histories: Vec<VecDeque<f32>>,
    active: Vec<usize>,
    epochs_seen: usize,
    total_dropped: usize,
}

impl LossTracker {
    /// Creates a tracker over `n` samples.
    ///
    /// * `window` — epochs of loss history per sample (paper: 5),
    /// * `drop_every` — epochs between pool prunings (paper: 20),
    /// * `drop_fraction` — fraction of the pool marked per pruning,
    /// * `min_pool` — the pool never shrinks below this many samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `drop_every` is zero, or `drop_fraction` is
    /// outside `[0, 1)`.
    pub fn new(
        n: usize,
        window: usize,
        drop_every: usize,
        drop_fraction: f32,
        min_pool: usize,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(drop_every > 0, "drop_every must be positive");
        assert!(
            (0.0..1.0).contains(&drop_fraction),
            "drop_fraction must be in [0, 1)"
        );
        Self {
            window,
            drop_every,
            drop_fraction,
            min_pool,
            histories: vec![VecDeque::with_capacity(window); n],
            active: (0..n).collect(),
            epochs_seen: 0,
            total_dropped: 0,
        }
    }

    /// The current active pool (sorted ascending).
    pub fn active_pool(&self) -> &[usize] {
        &self.active
    }

    /// Samples dropped so far.
    pub fn dropped(&self) -> usize {
        self.total_dropped
    }

    /// Records the losses observed for some samples this epoch (typically
    /// the trained subset), then — every `drop_every` epochs — prunes the
    /// lowest-loss samples from the active pool.
    ///
    /// Returns the number of samples dropped at this step (0 on most
    /// epochs).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or any index is out of
    /// bounds.
    pub fn record_epoch(&mut self, indices: &[usize], losses: &[f32]) -> usize {
        assert_eq!(indices.len(), losses.len(), "index/loss length mismatch");
        for (&i, &l) in indices.iter().zip(losses.iter()) {
            let h = &mut self.histories[i];
            if h.len() == self.window {
                h.pop_front();
            }
            h.push_back(l);
        }
        self.epochs_seen += 1;
        if self.epochs_seen.is_multiple_of(self.drop_every) {
            self.prune()
        } else {
            0
        }
    }

    /// Mean recent loss of a sample (`None` when it has no history yet).
    pub fn recent_loss(&self, i: usize) -> Option<f32> {
        let h = &self.histories[i];
        if h.is_empty() {
            None
        } else {
            Some(h.iter().sum::<f32>() / h.len() as f32)
        }
    }

    fn prune(&mut self) -> usize {
        let budget = self.active.len().saturating_sub(self.min_pool);
        let want = (self.active.len() as f32 * self.drop_fraction).floor() as usize;
        let to_drop = want.min(budget);
        if to_drop == 0 {
            return 0;
        }
        // Rank active samples with history by mean recent loss; samples
        // without history are never dropped (they have not been trained
        // on recently, so nothing says they are learned).
        let mut scored: Vec<(usize, f32)> = self
            .active
            .iter()
            .filter_map(|&i| self.recent_loss(i).map(|l| (i, l)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // Sorted membership vector instead of a HashSet: deterministic
        // and hash-free (nessa-lint rule D3).
        let mut victims: Vec<usize> = scored.iter().take(to_drop).map(|&(i, _)| i).collect();
        victims.sort_unstable();
        victims.dedup();
        let dropped = victims.len();
        self.active.retain(|i| victims.binary_search(i).is_err());
        self.total_dropped += dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_starts_full() {
        let t = LossTracker::new(10, 5, 20, 0.1, 2);
        assert_eq!(t.active_pool(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn window_bounds_history() {
        let mut t = LossTracker::new(3, 2, 100, 0.5, 0);
        for e in 0..5 {
            t.record_epoch(&[0], &[e as f32]);
        }
        // Window of 2 keeps the last two losses: 3, 4.
        assert!((t.recent_loss(0).unwrap() - 3.5).abs() < 1e-6);
        assert_eq!(t.recent_loss(1), None);
    }

    #[test]
    fn drops_low_loss_samples_on_schedule() {
        let mut t = LossTracker::new(10, 5, 4, 0.2, 0);
        let idx: Vec<usize> = (0..10).collect();
        // Sample i has loss i: samples 0 and 1 are "learned".
        let losses: Vec<f32> = (0..10).map(|i| i as f32).collect();
        for epoch in 0..4 {
            let dropped = t.record_epoch(&idx, &losses);
            if epoch < 3 {
                assert_eq!(dropped, 0);
            } else {
                assert_eq!(dropped, 2);
            }
        }
        assert!(!t.active_pool().contains(&0));
        assert!(!t.active_pool().contains(&1));
        assert!(t.active_pool().contains(&9));
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn min_pool_is_respected() {
        let mut t = LossTracker::new(10, 5, 1, 0.9, 8);
        let idx: Vec<usize> = (0..10).collect();
        let losses = vec![0.1f32; 10];
        for _ in 0..5 {
            t.record_epoch(&idx, &losses);
        }
        assert_eq!(t.active_pool().len(), 8);
    }

    #[test]
    fn unseen_samples_are_never_dropped() {
        let mut t = LossTracker::new(6, 5, 1, 0.5, 0);
        // Only samples 0..3 are ever trained on; 3..6 have no history.
        let idx = [0usize, 1, 2];
        let losses = [0.0f32, 0.0, 0.0];
        t.record_epoch(&idx, &losses);
        for i in 3..6 {
            assert!(t.active_pool().contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_inputs() {
        let mut t = LossTracker::new(3, 5, 20, 0.1, 0);
        t.record_epoch(&[0, 1], &[0.5]);
    }
}
