//! The NeSSA near-storage training pipeline (paper §3, Figure 3).
//!
//! The device path can fail (see [`nessa_smartssd::fault`]); every
//! storage phase runs under the degradation ladder of [`crate::retry`]:
//! transient faults are retried with sim-clock backoff, dead drives are
//! evicted and the shards rebalance, a dead kernel path degrades to a
//! staged host read + host-side selection, and if even that is out the
//! round falls back to seeded random selection. Every rung is surfaced
//! through the [`HealthMonitor`] fault counters.
//!
//! # Overlapped pipelining
//!
//! With [`NessaConfig::overlap`] the pipeline runs the paper's
//! double-buffered schedule: while the GPU trains epoch *e* on subset
//! S\_e, a worker thread drives the SmartSSD through the selection round
//! for S\_{e+1} (scan → kernel → ship) using the quantized weights fed
//! back after epoch *e−1* — one epoch stale (§3.2.1). The two sides
//! serialize only at the epoch boundary, where the main thread joins the
//! worker (`overlap.wait`) and broadcasts fresh feedback
//! (`overlap.handoff`). Epoch 0 selects S\_0 synchronously (the prologue
//! round); [`NessaConfig::max_staleness`]` == 0` pins every round back to
//! that synchronous path.
//!
//! Determinism is preserved by construction: one RNG stream per epoch's
//! round is split off the master seed before anything else draws, so the
//! worker's randomness never races the trainer's, and the device sees
//! the same op order (round *k* is always the *k*-th scan/select/ship)
//! regardless of thread scheduling. Simulated time composes as
//! `sync + max(select_side, train) + handoff` per epoch (recorded in
//! [`OverlapRecord`]); wall-clock overlap is measured from the real
//! concurrent span intervals by `nessa-trace`.

use crate::biasing::LossTracker;
use crate::config::NessaConfig;
use crate::error::PipelineError;
use crate::health::HealthMonitor;
use crate::proxy::gradient_proxies;
use crate::report::{EpochRecord, OverlapRecord, RunReport};
use crate::retry::RetryPolicy;
use crate::sizing::SubsetSizer;
use crate::trainer::{evaluate, train_epoch_metered, TrainMetrics};
use nessa_data::Dataset;
use nessa_nn::cost::{epoch_time, DeviceSpec, LoaderSpec};
use nessa_nn::models::Network;
use nessa_nn::optim::{MultiStepLr, Sgd, SgdConfig};
use nessa_quant::QuantizedModel;
use nessa_select::craig::{select_per_class_factored, CraigOptions};
use nessa_select::{random, SelectError, SelectMetrics, Selection};
use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::{ClusterError, DeviceError, SmartSsdConfig, SsdCluster};
use nessa_telemetry::{DeviceEvent, Telemetry};
use nessa_tensor::rng::Rng64;

/// Runs one cluster phase under the retry policy. Offline drives are
/// evicted on the spot (the shard layout rebalances; no retry budget is
/// consumed — eviction is repair, not retry); transient faults charge a
/// deterministic backoff to every surviving drive's simulated clock and
/// try again. Anything else — and an emptied cluster — surfaces to the
/// caller.
fn recover<T>(
    cluster: &mut SsdCluster,
    retry: &RetryPolicy,
    health: &HealthMonitor,
    telemetry: &Telemetry,
    epoch: usize,
    mut op: impl FnMut(&mut SsdCluster) -> Result<T, ClusterError>,
) -> Result<T, ClusterError> {
    let mut attempts = 1u32;
    loop {
        match op(cluster) {
            Ok(v) => return Ok(v),
            Err(e) if matches!(e.error, DeviceError::Offline) => {
                if cluster.evict_drive(e.drive) {
                    health.note_drive_evicted(cluster.len());
                }
                if cluster.is_empty() {
                    return Err(e);
                }
            }
            Err(e) if e.error.is_transient() && attempts < retry.max_attempts.max(1) => {
                let backoff = retry.backoff_secs(attempts - 1);
                let mut span = telemetry
                    .span("retry")
                    .with_attr("epoch", epoch)
                    .with_attr("attempt", attempts)
                    .with_attr("drive", e.drive);
                span.add_sim_secs(backoff);
                cluster.stall_all(backoff);
                health.note_retry();
                attempts += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Shared, read-only context one selection round needs besides the
/// device and the selector network. Everything here is thread-shareable
/// so the overlapped path can run a round on a worker thread while the
/// main thread trains.
struct RoundCtx<'a> {
    cfg: &'a NessaConfig,
    retry: &'a RetryPolicy,
    health: &'a HealthMonitor,
    telemetry: &'a Telemetry,
    select_metrics: &'a SelectMetrics,
    train: &'a Dataset,
}

/// What one selection round produced: the chosen subset plus the
/// simulated seconds it charged (kernel vs. I/O split).
struct RoundOutcome {
    selection: Selection,
    select_secs: f64,
    io_secs: f64,
}

/// One full selection round for the subset first used at `epoch`:
/// scan the candidate pool flash → FPGA, quarantine corrupt records,
/// run the quantized forward + facility-location kernel (with the full
/// degradation ladder), and ship the subset to the GPU.
///
/// The round draws only from `rng`; the caller decides whether that is
/// the run's master stream (sequential mode) or the epoch's pre-split
/// stream (overlap mode).
fn selection_round(
    ctx: &RoundCtx<'_>,
    device: &mut SsdCluster,
    selector: &mut Network,
    epoch: usize,
    mut pool: Vec<usize>,
    fraction: f32,
    rng: &mut Rng64,
) -> Result<RoundOutcome, PipelineError> {
    let cfg = ctx.cfg;
    let mut select_secs = 0.0;
    let mut io_secs = 0.0;
    let record_bytes = ctx.train.bytes_per_sample() as u64;
    // Set when the P2P/kernel path is out and the pool was staged to the
    // host instead; selection math then runs host-side and the ship
    // phase is free.
    let mut on_host = false;
    // (1) Stream the candidate pool from flash to the FPGA.
    let scanned = {
        let mut scan = ctx
            .telemetry
            .span("scan")
            .with_attr("epoch", epoch)
            .with_attr("records", pool.len());
        let r = recover(device, ctx.retry, ctx.health, ctx.telemetry, epoch, |c| {
            c.parallel_scan(pool.len() as u64, record_bytes)
        });
        if let Ok(secs) = &r {
            scan.add_sim_secs(*secs);
        }
        r
    };
    match scanned {
        Ok(secs) => io_secs += secs,
        Err(_) => {
            if device.is_empty() {
                return Err(PipelineError::AllDrivesLost {
                    evicted: device.evicted(),
                });
            }
            // P2P path out beyond recovery: degrade to the conventional
            // staged read through the host.
            on_host = true;
            ctx.health.note_fallback_host();
            let mut fb = ctx
                .telemetry
                .span("fallback")
                .with_attr("epoch", epoch)
                .with_attr("rung", "host");
            match recover(device, ctx.retry, ctx.health, ctx.telemetry, epoch, |c| {
                c.conventional_read_to_host(pool.len() as u64, record_bytes)
            }) {
                Ok(secs) => {
                    fb.add_sim_secs(secs);
                    io_secs += secs;
                }
                Err(e) => {
                    // No path left to the data at all.
                    return Err(if device.is_empty() {
                        PipelineError::AllDrivesLost {
                            evicted: device.evicted(),
                        }
                    } else {
                        e.into()
                    });
                }
            }
        }
    }
    // Corrupt records detected during the scan cannot join the candidate
    // pool: count them and drop that many (chosen from the round's RNG
    // stream; the simulation does not track which physical records a
    // plan corrupted), keeping at least one.
    let bad = device.take_quarantined();
    if bad > 0 {
        ctx.health.note_quarantined(bad);
        let drop_n = (bad as usize).min(pool.len().saturating_sub(1));
        if drop_n > 0 {
            let mut keep = vec![true; pool.len()];
            for i in rng.sample_indices(pool.len(), drop_n) {
                keep[i] = false;
            }
            pool = pool
                .iter()
                .zip(&keep)
                .filter_map(|(&i, &k)| k.then_some(i))
                .collect();
        }
    }
    // (2) Quantized forward pass → last-layer gradient proxies
    // (outer-product space, compared via the factored distance so
    // nothing of size classes × features is materialized).
    let mut select_span = ctx
        .telemetry
        .span("select")
        .with_attr("epoch", epoch)
        .with_attr("pool", pool.len());
    let proxies = gradient_proxies(selector, ctx.train, &pool, cfg.batch_size);
    let feature_dim = proxies.features.dim(1);
    let pool_labels: Vec<usize> = pool.iter().map(|&i| ctx.train.label(i)).collect();
    let chunk = cfg.partitioning.then(|| cfg.partition_chunk(fraction));
    let opts = CraigOptions {
        variant: cfg.greedy,
        partition_chunk: chunk,
        threads: cfg.threads,
        metrics: Some(ctx.select_metrics.clone()),
    };
    // Charge the kernel's simulated time.
    // The kernel compares outer-product gradients through the
    // ‖a‖²‖b‖² − 2(a·a')(b·b') factorization, so its per-pair cost
    // scales with classes + feature_dim, not the product.
    let profile = KernelProfile {
        samples: pool.len() as u64,
        forward_macs_per_sample: selector.flops_per_sample() / 2,
        proxy_dim: ctx.train.classes() + feature_dim,
        chunk: chunk.unwrap_or_else(|| {
            // Without partitioning the kernel tiles at the largest class
            // size.
            pool_labels
                .iter()
                .fold(vec![0usize; ctx.train.classes()], |mut acc, &y| {
                    acc[y] += 1;
                    acc
                })
                .into_iter()
                .max()
                .unwrap_or(1)
        }),
        k_per_chunk: cfg.batch_size,
    };
    let mut kernel_secs = 0.0;
    // Set when even the staged host read is out: the pool is still
    // resident on the FPGA from the scan, so the round degrades to
    // seeded random picks shipped the normal way.
    let mut force_random = false;
    if !on_host {
        match recover(device, ctx.retry, ctx.health, ctx.telemetry, epoch, |c| {
            c.parallel_select(&profile)
        }) {
            Ok(secs) => kernel_secs = secs,
            Err(e) => {
                if device.is_empty() {
                    return Err(PipelineError::AllDrivesLost {
                        evicted: device.evicted(),
                    });
                }
                if !e.error.is_transient() {
                    // A chunk that does not fit is a config problem, not
                    // a fault to degrade around.
                    return Err(e.into());
                }
                // Kernel path out beyond recovery: stage the pool to the
                // host and select there.
                ctx.health.note_fallback_host();
                let mut fb = ctx
                    .telemetry
                    .span("fallback")
                    .with_attr("epoch", epoch)
                    .with_attr("rung", "host");
                match recover(device, ctx.retry, ctx.health, ctx.telemetry, epoch, |c| {
                    c.conventional_read_to_host(pool.len() as u64, record_bytes)
                }) {
                    Ok(secs) => {
                        on_host = true;
                        fb.add_sim_secs(secs);
                        io_secs += secs;
                    }
                    Err(_) => {
                        if device.is_empty() {
                            return Err(PipelineError::AllDrivesLost {
                                evicted: device.evicted(),
                            });
                        }
                        force_random = true;
                    }
                }
            }
        }
    }
    // (3) The selection math: facility location when any compute path is
    // available (device and host produce the same picks — the simulation
    // models time, not arithmetic), seeded random picks as the last
    // rung.
    let maybe = if force_random {
        None
    } else {
        match select_per_class_factored(
            &proxies.residuals,
            &proxies.features,
            &pool_labels,
            ctx.train.classes(),
            fraction,
            &opts,
            rng,
        ) {
            Ok(local) => Some(local),
            // An internal invariant breach is a selector bug; degrade
            // the round rather than lose the run.
            Err(SelectError::Internal(_)) => None,
            Err(e) => return Err(e.into()),
        }
    };
    let local = match maybe {
        Some(mut local) => {
            // Temper the medoid weights (see NessaConfig::weight_temper).
            for w in &mut local.weights {
                *w = w.powf(cfg.weight_temper);
            }
            local
        }
        None => {
            ctx.health.note_fallback_random();
            let mut fb = ctx
                .telemetry
                .span("fallback")
                .with_attr("epoch", epoch)
                .with_attr("rung", "random");
            let sel =
                random::select_per_class_checked(&pool_labels, ctx.train.classes(), fraction, rng)?;
            fb.set_attr("subset", sel.len());
            sel
        }
    };
    let selection = local.into_global(&pool);
    select_span.add_sim_secs(kernel_secs);
    select_span.set_attr("subset", selection.len());
    select_span.finish();
    select_secs += kernel_secs;
    // (4) Ship the subset to the GPU. When the round already staged the
    // pool to the host, the subset is there — no further transfer.
    {
        let mut ship = ctx
            .telemetry
            .span("ship")
            .with_attr("epoch", epoch)
            .with_attr("records", selection.len());
        if !on_host {
            match recover(device, ctx.retry, ctx.health, ctx.telemetry, epoch, |c| {
                c.gather_selections(selection.len() as u64, record_bytes)
            }) {
                Ok(secs) => {
                    ship.add_sim_secs(secs);
                    io_secs += secs;
                }
                Err(e) => {
                    return Err(if device.is_empty() {
                        PipelineError::AllDrivesLost {
                            evicted: device.evicted(),
                        }
                    } else {
                        e.into()
                    });
                }
            }
        }
    }
    Ok(RoundOutcome {
        selection,
        select_secs,
        io_secs,
    })
}

/// The assembled SmartSSD+GPU training loop.
///
/// The pipeline owns the **target model** (trained on the GPU side), the
/// **selector model** (the structurally-identical network whose weights
/// live on the FPGA as int8), the simulated [`SsdCluster`]
/// ([`NessaConfig::drives`] drives; one by default), and the train / test
/// datasets.
///
/// Each epoch follows the paper's five steps: P2P-read the candidate pool
/// to the FPGA, run the selection kernel (quantized forward → gradient
/// proxies → per-class, chunk-partitioned facility location), ship the
/// subset to the GPU, train, and feed quantized weights back. Subset
/// biasing prunes the pool every [`NessaConfig::biasing_drop_every`]
/// epochs; dynamic sizing shrinks the subset fraction when the loss
/// plateaus. With [`NessaConfig::overlap`] the selection round for the
/// *next* epoch runs concurrently with training (see the module docs).
pub struct NessaPipeline {
    config: NessaConfig,
    target: Network,
    selector: Network,
    train: Dataset,
    test: Dataset,
    device: SsdCluster,
    telemetry: Telemetry,
    history: Vec<(usize, Vec<usize>)>,
}

impl NessaPipeline {
    /// Creates a pipeline.
    ///
    /// `target` and `selector` must be structurally identical networks
    /// (the selector is the FPGA-side copy refreshed by the feedback
    /// loop).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different parameter structures or
    /// the datasets disagree on feature dimension / class count.
    pub fn new(
        config: NessaConfig,
        mut target: Network,
        mut selector: Network,
        train: Dataset,
        test: Dataset,
    ) -> Self {
        let t_shapes: Vec<_> = target
            .export_weights()
            .iter()
            .map(|w| w.shape().dims().to_vec())
            .collect();
        let s_shapes: Vec<_> = selector
            .export_weights()
            .iter()
            .map(|w| w.shape().dims().to_vec())
            .collect();
        assert_eq!(
            t_shapes, s_shapes,
            "target and selector must share structure"
        );
        assert_eq!(train.dim(), test.dim(), "train/test feature dims differ");
        assert_eq!(train.classes(), test.classes(), "train/test classes differ");
        let telemetry = Telemetry::new(&config.telemetry);
        let mut device = SsdCluster::new(config.drives.max(1), SmartSsdConfig::default());
        for (drive, plan) in &config.fault_plans {
            device.inject_faults(*drive, plan.clone());
        }
        Self {
            config,
            target,
            selector,
            train,
            test,
            device,
            telemetry,
            history: Vec::new(),
        }
    }

    /// Runs the full training loop and returns the report.
    ///
    /// Dispatches to the sequential schedule (the byte-identical
    /// reference) or the overlapped schedule when
    /// [`NessaConfig::overlap`] is set.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Select`] if the selection kernel rejects its
    /// inputs, [`PipelineError::Kernel`] if a selection chunk exceeds the
    /// FPGA's on-chip memory (enable partitioning or shrink the chunk),
    /// [`PipelineError::Drive`] for a device fault the degradation ladder
    /// could not absorb, and [`PipelineError::AllDrivesLost`] once every
    /// drive has been evicted.
    pub fn run(&mut self) -> Result<RunReport, PipelineError> {
        self.history.clear();
        if self.config.overlap {
            self.run_overlapped()
        } else {
            self.run_sequential()
        }
    }

    /// The paper's baseline schedule: select, then train, every epoch on
    /// one thread. This path is the determinism reference — its RNG draw
    /// order and its report bytes must never change.
    fn run_sequential(&mut self) -> Result<RunReport, PipelineError> {
        let cfg = self.config.clone();
        let n = self.train.len();
        let mut rng = Rng64::new(cfg.seed);
        let mut opt = Sgd::new(SgdConfig::default());
        let schedule = MultiStepLr::paper_schedule(cfg.epochs).with_base_lr(cfg.base_lr);
        let mut tracker = LossTracker::new(
            n,
            cfg.biasing_window,
            cfg.biasing_drop_every,
            cfg.biasing_drop_fraction,
            ((n as f32) * cfg.biasing_min_pool) as usize,
        );
        let mut sizer = SubsetSizer::new(
            cfg.subset_fraction,
            cfg.sizing_threshold,
            cfg.sizing_factor,
            cfg.sizing_min_fraction.min(cfg.subset_fraction),
        );
        // Initialize the FPGA's selector with a quantized snapshot of the
        // (randomly initialized) target, as the system would at deployment.
        QuantizedModel::from_network(&mut self.target).apply_to(&mut self.selector);
        let mut selection = Selection::default();
        let mut report = RunReport {
            name: "nessa".into(),
            train_size: n,
            ..RunReport::default()
        };
        let select_metrics = SelectMetrics::from_telemetry(&self.telemetry);
        let train_metrics = TrainMetrics::from_telemetry(&self.telemetry);
        let mut health = HealthMonitor::new(&self.telemetry, cfg.epochs, cfg.stall_budget_secs);
        health.set_drives_alive(self.device.len());
        // Backoff stays inside the stall budget so a retrying pipeline
        // never looks wedged to the heartbeat.
        let retry = cfg.retry.bounded_by(cfg.stall_budget_secs);
        let mut fraction = cfg.subset_fraction;
        for epoch in 0..cfg.epochs {
            let lr = schedule.lr_at(epoch);
            let mut epoch_span = self.telemetry.span("epoch").with_attr("epoch", epoch);
            let mut select_secs = 0.0;
            let mut io_secs = 0.0;
            if epoch % cfg.select_every == 0 || selection.is_empty() {
                let pool: Vec<usize> = if cfg.subset_biasing {
                    tracker.active_pool().to_vec()
                } else {
                    (0..n).collect()
                };
                let out = selection_round(
                    &RoundCtx {
                        cfg: &cfg,
                        retry: &retry,
                        health: &health,
                        telemetry: &self.telemetry,
                        select_metrics: &select_metrics,
                        train: &self.train,
                    },
                    &mut self.device,
                    &mut self.selector,
                    epoch,
                    pool,
                    fraction,
                    &mut rng,
                )?;
                selection = out.selection;
                select_secs += out.select_secs;
                io_secs += out.io_secs;
                self.history.push((epoch, selection.indices.clone()));
            }
            // Train the target model on the subset.
            let outcome = {
                let _train_span = self
                    .telemetry
                    .span("train")
                    .with_attr("epoch", epoch)
                    .with_attr("subset", selection.len());
                train_epoch_metered(
                    &mut self.target,
                    &mut opt,
                    &self.train,
                    &selection.indices,
                    &selection.weights,
                    cfg.batch_size,
                    lr,
                    &mut rng,
                    Some(&train_metrics),
                )
            };
            // Feedback: quantize weights, broadcast to every live drive,
            // refresh the selector.
            if cfg.feedback {
                let mut feedback = self.telemetry.span("feedback").with_attr("epoch", epoch);
                let snap = QuantizedModel::from_network(&mut self.target);
                feedback.set_attr("bytes", snap.payload_bytes());
                let payload = snap.payload_bytes() as u64;
                match recover(
                    &mut self.device,
                    &retry,
                    &health,
                    &self.telemetry,
                    epoch,
                    |c| c.broadcast_feedback(payload),
                ) {
                    Ok(secs) => {
                        feedback.add_sim_secs(secs);
                        io_secs += secs;
                    }
                    Err(e) => {
                        return Err(if self.device.is_empty() {
                            PipelineError::AllDrivesLost {
                                evicted: self.device.evicted(),
                            }
                        } else {
                            e.into()
                        });
                    }
                }
                snap.apply_to(&mut self.selector);
            }
            // Subset biasing: record subset losses; prune on schedule.
            if cfg.subset_biasing {
                tracker.record_epoch(&selection.indices, &outcome.per_sample_losses);
                // Selection indices may have been pruned from the pool; the
                // next selection round re-selects from the surviving pool.
            }
            if cfg.dynamic_sizing {
                fraction = sizer.observe(outcome.mean_loss);
            }
            let test_acc = evaluate(&mut self.target, &self.test, cfg.batch_size);
            epoch_span.add_sim_secs(select_secs + io_secs);
            epoch_span.set_attr("train_loss", outcome.mean_loss);
            epoch_span.set_attr("test_acc", test_acc);
            epoch_span.finish();
            // Heartbeat + progress gauges: the epoch span just closed, so a
            // healthy loop always passes the stall check here; the gauges
            // give any observer (timeline, JSONL tail) throughput and ETA.
            health.epoch_completed(selection.len());
            health.check_stall();
            report.epochs.push(EpochRecord {
                epoch,
                lr,
                subset_size: selection.len(),
                pool_size: if cfg.subset_biasing {
                    tracker.active_pool().len()
                } else {
                    n
                },
                train_loss: outcome.mean_loss,
                test_acc,
                select_secs,
                io_secs,
                overlap: None,
            });
        }
        self.finish_run(&mut report, &health);
        Ok(report)
    }

    /// The overlapped schedule (module docs): epoch 0 selects S_0
    /// synchronously, then every epoch *e* trains on S_e while a worker
    /// thread selects S_{e+1} on the device with one-epoch-stale
    /// feedback, joining at the boundary before the handoff broadcast.
    fn run_overlapped(&mut self) -> Result<RunReport, PipelineError> {
        let cfg = self.config.clone();
        let n = self.train.len();
        let mut master = Rng64::new(cfg.seed);
        // Pre-split one selection stream per epoch *before* any other
        // draw: the worker's randomness is fixed at run start, so the
        // subsets it picks cannot depend on how the two threads
        // interleave (or on the trainer's draws from the master).
        let mut select_streams: Vec<Rng64> = (0..cfg.epochs).map(|_| master.split()).collect();
        let mut opt = Sgd::new(SgdConfig::default());
        let schedule = MultiStepLr::paper_schedule(cfg.epochs).with_base_lr(cfg.base_lr);
        let mut tracker = LossTracker::new(
            n,
            cfg.biasing_window,
            cfg.biasing_drop_every,
            cfg.biasing_drop_fraction,
            ((n as f32) * cfg.biasing_min_pool) as usize,
        );
        let mut sizer = SubsetSizer::new(
            cfg.subset_fraction,
            cfg.sizing_threshold,
            cfg.sizing_factor,
            cfg.sizing_min_fraction.min(cfg.subset_fraction),
        );
        QuantizedModel::from_network(&mut self.target).apply_to(&mut self.selector);
        let mut selection = Selection::default();
        let mut report = RunReport {
            name: "nessa".into(),
            train_size: n,
            ..RunReport::default()
        };
        let select_metrics = SelectMetrics::from_telemetry(&self.telemetry);
        let train_metrics = TrainMetrics::from_telemetry(&self.telemetry);
        let mut health = HealthMonitor::new(&self.telemetry, cfg.epochs, cfg.stall_budget_secs);
        health.set_drives_alive(self.device.len());
        let retry = cfg.retry.bounded_by(cfg.stall_budget_secs);
        let mut fraction = cfg.subset_fraction;
        // Forward + backward ≈ 3× the forward cost; feeds the
        // deterministic GPU-side cost model for the overlap ledger.
        let train_flops = 3 * self.target.flops_per_sample();
        let gpu = DeviceSpec::v100();
        let loader = LoaderSpec::smartssd_p2p();
        // The round selected concurrently during the previous epoch,
        // waiting to be consumed.
        let mut pending: Option<RoundOutcome> = None;
        // Staleness (in epochs) of the feedback behind the subset
        // currently in `selection`.
        let mut cur_staleness = 0usize;
        for epoch in 0..cfg.epochs {
            let lr = schedule.lr_at(epoch);
            let mut epoch_span = self.telemetry.span("epoch").with_attr("epoch", epoch);
            let mut select_secs = 0.0;
            let mut io_secs = 0.0;
            let mut orec = OverlapRecord::default();
            if epoch % cfg.select_every == 0 || selection.is_empty() {
                match pending.take() {
                    // Double-buffered hand-off: the subset was selected
                    // during the previous epoch (its cost is on that
                    // epoch's ledger) with feedback one epoch stale.
                    Some(out) => {
                        selection = out.selection;
                        cur_staleness = 1;
                    }
                    // Synchronous round: the epoch-0 prologue, and every
                    // round when max_staleness == 0 forbids pipelining.
                    None => {
                        let pool: Vec<usize> = if cfg.subset_biasing {
                            tracker.active_pool().to_vec()
                        } else {
                            (0..n).collect()
                        };
                        let out = selection_round(
                            &RoundCtx {
                                cfg: &cfg,
                                retry: &retry,
                                health: &health,
                                telemetry: &self.telemetry,
                                select_metrics: &select_metrics,
                                train: &self.train,
                            },
                            &mut self.device,
                            &mut self.selector,
                            epoch,
                            pool,
                            fraction,
                            &mut select_streams[epoch],
                        )?;
                        orec.sync_secs = out.select_secs + out.io_secs;
                        select_secs += out.select_secs;
                        io_secs += out.io_secs;
                        selection = out.selection;
                        cur_staleness = 0;
                        self.history.push((epoch, selection.indices.clone()));
                    }
                }
            }
            orec.staleness = cur_staleness;
            orec.train_secs = epoch_time(
                &gpu,
                &loader,
                selection.len() as u64,
                train_flops,
                // The subset is already GPU-resident (the ship phase
                // carried it); the training loader streams no bytes.
                0,
            )
            .compute_s;
            let next = epoch + 1;
            let spawn = cfg.max_staleness >= 1 && next < cfg.epochs && next % cfg.select_every == 0;
            let outcome;
            if spawn {
                // Snapshot the pool and fraction *now* — the state left
                // by epoch e−1. The concurrent round therefore sees
                // biasing prunes and sizing updates one epoch stale,
                // exactly like the weights it selects with.
                let pool: Vec<usize> = if cfg.subset_biasing {
                    tracker.active_pool().to_vec()
                } else {
                    (0..n).collect()
                };
                let frac = fraction;
                let parent = epoch_span.id();
                let stream = &mut select_streams[next];
                let ctx = RoundCtx {
                    cfg: &cfg,
                    retry: &retry,
                    health: &health,
                    telemetry: &self.telemetry,
                    select_metrics: &select_metrics,
                    train: &self.train,
                };
                let device = &mut self.device;
                let selector = &mut self.selector;
                let target = &mut self.target;
                let (trained, joined) = std::thread::scope(|s| {
                    let worker = s.spawn(move || {
                        // Parent the wrapper to the epoch span explicitly:
                        // the worker thread has no open spans of its own,
                        // and the round's scan/select/ship spans then nest
                        // under this wrapper naturally.
                        let mut wrap = ctx
                            .telemetry
                            .span_child_of("overlap.select", parent)
                            .with_attr("epoch", epoch)
                            .with_attr("for_epoch", next);
                        let r = selection_round(&ctx, device, selector, next, pool, frac, stream);
                        if let Ok(out) = &r {
                            wrap.add_sim_secs(out.select_secs + out.io_secs);
                            wrap.set_attr("subset", out.selection.len());
                        }
                        r
                    });
                    let trained = {
                        let _train_span = self
                            .telemetry
                            .span("train")
                            .with_attr("epoch", epoch)
                            .with_attr("subset", selection.len());
                        train_epoch_metered(
                            target,
                            &mut opt,
                            &self.train,
                            &selection.indices,
                            &selection.weights,
                            cfg.batch_size,
                            lr,
                            &mut master,
                            Some(&train_metrics),
                        )
                    };
                    let joined = {
                        let _wait = self
                            .telemetry
                            .span("overlap.wait")
                            .with_attr("epoch", epoch);
                        worker.join()
                    };
                    (trained, joined)
                });
                outcome = trained;
                let round = match joined {
                    Ok(r) => r,
                    Err(_) => {
                        Err(SelectError::Internal("overlapped selection worker panicked").into())
                    }
                }?;
                orec.select_side_secs = round.select_secs + round.io_secs;
                select_secs += round.select_secs;
                io_secs += round.io_secs;
                self.history.push((next, round.selection.indices.clone()));
                // Device time hidden under concurrent training, on the
                // simulated clock.
                self.device
                    .note_overlap_hidden(orec.select_side_secs.min(orec.train_secs));
                pending = Some(round);
            } else {
                outcome = {
                    let _train_span = self
                        .telemetry
                        .span("train")
                        .with_attr("epoch", epoch)
                        .with_attr("subset", selection.len());
                    train_epoch_metered(
                        &mut self.target,
                        &mut opt,
                        &self.train,
                        &selection.indices,
                        &selection.weights,
                        cfg.batch_size,
                        lr,
                        &mut master,
                        Some(&train_metrics),
                    )
                };
            }
            // The deterministic hand-off: quantize this epoch's weights,
            // broadcast to every live drive (the device is idle again —
            // the worker joined above), refresh the selector for the
            // round that spawns next epoch.
            if cfg.feedback {
                let mut handoff = self
                    .telemetry
                    .span("overlap.handoff")
                    .with_attr("epoch", epoch);
                let snap = QuantizedModel::from_network(&mut self.target);
                handoff.set_attr("bytes", snap.payload_bytes());
                let payload = snap.payload_bytes() as u64;
                match recover(
                    &mut self.device,
                    &retry,
                    &health,
                    &self.telemetry,
                    epoch,
                    |c| c.broadcast_feedback(payload),
                ) {
                    Ok(secs) => {
                        handoff.add_sim_secs(secs);
                        io_secs += secs;
                        orec.handoff_secs = secs;
                    }
                    Err(e) => {
                        return Err(if self.device.is_empty() {
                            PipelineError::AllDrivesLost {
                                evicted: self.device.evicted(),
                            }
                        } else {
                            e.into()
                        });
                    }
                }
                snap.apply_to(&mut self.selector);
            }
            if cfg.subset_biasing {
                tracker.record_epoch(&selection.indices, &outcome.per_sample_losses);
            }
            if cfg.dynamic_sizing {
                fraction = sizer.observe(outcome.mean_loss);
            }
            let test_acc = evaluate(&mut self.target, &self.test, cfg.batch_size);
            // Simulated epoch cost under overlap: the synchronous
            // prologue, then the slower of the two concurrent sides,
            // then the serializing hand-off.
            epoch_span.add_sim_secs(
                orec.sync_secs + orec.select_side_secs.max(orec.train_secs) + orec.handoff_secs,
            );
            epoch_span.set_attr("train_loss", outcome.mean_loss);
            epoch_span.set_attr("test_acc", test_acc);
            epoch_span.finish();
            health.epoch_completed(selection.len());
            health.check_stall();
            report.epochs.push(EpochRecord {
                epoch,
                lr,
                subset_size: selection.len(),
                pool_size: if cfg.subset_biasing {
                    tracker.active_pool().len()
                } else {
                    n
                },
                train_loss: outcome.mean_loss,
                test_acc,
                select_secs,
                io_secs,
                overlap: Some(orec),
            });
        }
        self.finish_run(&mut report, &health);
        Ok(report)
    }

    /// Shared run epilogue: traffic/energy roll-ups, fault totals, and
    /// the device-trace bridge into the unified telemetry stream.
    fn finish_run(&mut self, report: &mut RunReport, health: &HealthMonitor) {
        report.traffic = self.device.traffic();
        report.device_energy_j = self.device.energy_joules();
        health.note_faults_injected(self.device.faults_injected());
        health.set_drives_alive(self.device.len());
        // Bridge every drive's phase trace (retired ones included) and
        // roll-up counters into the unified stream, then flush the sinks
        // for this run.
        if self.telemetry.is_enabled() {
            for d in self
                .device
                .drives()
                .iter()
                .chain(self.device.retired_drives())
            {
                for ev in d.trace().events() {
                    self.telemetry.record_device_event(DeviceEvent {
                        phase: ev.phase.label().to_string(),
                        start_s: ev.start_s,
                        duration_s: ev.duration_s,
                        bytes: ev.bytes,
                    });
                }
            }
            let traffic = report.traffic;
            self.telemetry
                .gauge("device.ssd_to_fpga_bytes")
                .set(traffic.ssd_to_fpga as f64);
            self.telemetry
                .gauge("device.fpga_to_host_bytes")
                .set(traffic.fpga_to_host as f64);
            self.telemetry
                .gauge("device.host_to_fpga_bytes")
                .set(traffic.host_to_fpga as f64);
            self.telemetry
                .gauge("device.energy_j")
                .set(report.device_energy_j);
            self.telemetry
                .gauge("device.sim_secs")
                .set(report.device_secs());
            if self.device.hidden_secs() > 0.0 {
                self.telemetry
                    .gauge("device.hidden_secs")
                    .set(self.device.hidden_secs());
            }
            self.telemetry.flush();
        }
    }

    /// The trained target network (for inspection after [`run`]).
    ///
    /// [`run`]: NessaPipeline::run
    pub fn target_mut(&mut self) -> &mut Network {
        &mut self.target
    }

    /// The simulated drive cluster (traffic/energy counters, eviction
    /// state, per-drive traces).
    pub fn device(&self) -> &SsdCluster {
        &self.device
    }

    /// Every selection round the last [`run`] performed, in round order:
    /// `(epoch the subset is first used for, selected global indices)`.
    /// Epochs that reuse the previous subset (`select_every > 1`) do not
    /// appear. Lets tests compare overlapped and sequential schedules
    /// subset-by-subset.
    ///
    /// [`run`]: NessaPipeline::run
    pub fn selection_history(&self) -> &[(usize, Vec<usize>)] {
        &self.history
    }

    /// The run's telemetry stream (disabled unless
    /// [`NessaConfig::telemetry`] enables a mode).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_data::SynthConfig;
    use nessa_nn::models::mlp;

    fn small_setup(cfg: &NessaConfig) -> NessaPipeline {
        let synth = SynthConfig {
            train: 300,
            test: 120,
            dim: 8,
            classes: 3,
            cluster_std: 0.6,
            class_sep: 3.5,
            ..SynthConfig::default()
        };
        let (train, test) = synth.generate();
        let mut rng = Rng64::new(cfg.seed);
        let target = mlp(&[8, 24, 3], &mut rng);
        let selector = mlp(&[8, 24, 3], &mut rng);
        NessaPipeline::new(cfg.clone(), target, selector, train, test)
    }

    #[test]
    fn pipeline_trains_to_reasonable_accuracy() {
        let cfg = NessaConfig::new(0.3, 15).with_batch_size(32).with_seed(0);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        assert_eq!(report.epochs.len(), 15);
        assert!(
            report.final_accuracy() > 0.75,
            "accuracy {}",
            report.final_accuracy()
        );
        // Subset stays near the requested fraction.
        let pct = report.mean_subset_pct();
        assert!((25.0..40.0).contains(&pct), "subset {pct}%");
    }

    #[test]
    fn traffic_shows_near_storage_benefit() {
        let cfg = NessaConfig::new(0.2, 5).with_batch_size(32).with_seed(1);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let t = report.traffic;
        assert!(t.ssd_to_fpga > 0, "flash reads must be accounted");
        assert!(t.fpga_to_host > 0, "subset transfers must be accounted");
        assert!(t.host_to_fpga > 0, "feedback must be accounted");
        // The subset crossing the interconnect is much smaller than what
        // stayed on-board.
        assert!(t.fpga_to_host < t.ssd_to_fpga / 2);
        assert!(report.device_energy_j > 0.0);
    }

    #[test]
    fn subset_biasing_shrinks_pool() {
        let mut cfg = NessaConfig::new(0.3, 9).with_batch_size(32).with_seed(2);
        cfg.biasing_drop_every = 3;
        cfg.biasing_drop_fraction = 0.2;
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let first_pool = report.epochs.first().unwrap().pool_size;
        let last_pool = report.epochs.last().unwrap().pool_size;
        assert!(last_pool < first_pool, "{last_pool} !< {first_pool}");
    }

    #[test]
    fn dynamic_sizing_reduces_subset() {
        let mut cfg = NessaConfig::new(0.5, 12)
            .with_batch_size(32)
            .with_dynamic_sizing(true)
            .with_seed(3);
        cfg.sizing_threshold = 0.5; // aggressive: shrink on <50 % reduction
        cfg.sizing_factor = 0.8;
        cfg.sizing_min_fraction = 0.1;
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let first = report.epochs.first().unwrap().subset_size;
        let last = report.epochs.last().unwrap().subset_size;
        assert!(last < first, "{last} !< {first}");
    }

    #[test]
    fn health_gauges_published_during_run() {
        use nessa_telemetry::TelemetrySettings;
        let cfg = NessaConfig::new(0.3, 3)
            .with_batch_size(32)
            .with_telemetry(TelemetrySettings::memory())
            .with_seed(4);
        let mut p = small_setup(&cfg);
        p.run().unwrap();
        let snap = p.telemetry().metrics_snapshot();
        let gauges: std::collections::BTreeMap<_, _> = snap.gauges.into_iter().collect();
        assert_eq!(gauges["health.epochs_done"], 3.0);
        assert!(gauges["health.epoch_secs"] > 0.0);
        assert!(gauges["health.samples_per_sec"] > 0.0);
        // The run is over: nothing remains, so the ETA gauge reads zero.
        assert_eq!(gauges["health.eta_secs"], 0.0);
        // The loop closes a span every epoch, so the default 30 s budget
        // never trips.
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters["health.stalls"], 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NessaConfig::new(0.3, 4).with_batch_size(32).with_seed(9);
        let a = small_setup(&cfg).run().unwrap();
        let b = small_setup(&cfg).run().unwrap();
        assert_eq!(a.accuracy_curve(), b.accuracy_curve());
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn overlapped_run_is_deterministic_and_records_ledger() {
        let cfg = NessaConfig::new(0.3, 5)
            .with_batch_size(32)
            .with_seed(9)
            .with_overlap(true);
        let a = small_setup(&cfg).run().unwrap();
        let b = small_setup(&cfg).run().unwrap();
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        // Epoch 0 is the synchronous prologue; later epochs consume the
        // double-buffered round.
        let first = a.epochs[0].overlap.as_ref().unwrap();
        assert!(first.sync_secs > 0.0, "prologue must be synchronous");
        assert_eq!(first.staleness, 0);
        for rec in &a.epochs[1..] {
            let o = rec.overlap.as_ref().unwrap();
            assert_eq!(o.staleness, 1, "epoch {}", rec.epoch);
            assert_eq!(o.sync_secs, 0.0, "epoch {}", rec.epoch);
        }
        // Every epoch but the last spawns a concurrent round.
        for rec in &a.epochs[..a.epochs.len() - 1] {
            let o = rec.overlap.as_ref().unwrap();
            assert!(o.select_side_secs > 0.0, "epoch {}", rec.epoch);
        }
        assert_eq!(
            a.epochs
                .last()
                .unwrap()
                .overlap
                .as_ref()
                .unwrap()
                .select_side_secs,
            0.0,
            "nothing to select after the final epoch"
        );
    }

    #[test]
    fn zero_staleness_pins_synchronous_rounds() {
        let cfg = NessaConfig::new(0.3, 4)
            .with_batch_size(32)
            .with_seed(11)
            .with_overlap(true)
            .with_max_staleness(0);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        for rec in &report.epochs {
            let o = rec.overlap.as_ref().unwrap();
            assert_eq!(o.staleness, 0, "epoch {}", rec.epoch);
            assert!(o.sync_secs > 0.0, "epoch {}", rec.epoch);
            assert_eq!(o.select_side_secs, 0.0, "epoch {}", rec.epoch);
        }
        assert_eq!(p.device().hidden_secs(), 0.0);
    }

    #[test]
    fn overlap_hides_device_seconds() {
        let cfg = NessaConfig::new(0.3, 5)
            .with_batch_size(32)
            .with_seed(12)
            .with_overlap(true);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let hidden = p.device().hidden_secs();
        assert!(hidden > 0.0, "pipelined rounds must hide device time");
        assert!(hidden <= p.device().elapsed_secs() + 1e-12);
        // The hidden portion never exceeds what the rounds cost.
        let side: f64 = report
            .epochs
            .iter()
            .filter_map(|r| r.overlap.as_ref())
            .map(|o| o.select_side_secs)
            .sum();
        assert!(hidden <= side + 1e-12);
    }

    #[test]
    fn selection_history_records_every_round() {
        let cfg = NessaConfig::new(0.3, 4).with_batch_size(32).with_seed(13);
        let mut p = small_setup(&cfg);
        p.run().unwrap();
        let hist = p.selection_history();
        assert_eq!(hist.len(), 4);
        for (i, (epoch, sel)) in hist.iter().enumerate() {
            assert_eq!(*epoch, i);
            assert!(!sel.is_empty());
        }
        // Overlapped mode covers the same rounds, in the same order.
        let mut q = small_setup(&cfg.clone().with_overlap(true));
        q.run().unwrap();
        let epochs: Vec<usize> = q.selection_history().iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "share structure")]
    fn rejects_mismatched_selector() {
        let cfg = NessaConfig::new(0.3, 2);
        let synth = SynthConfig {
            train: 50,
            test: 20,
            dim: 8,
            classes: 3,
            ..SynthConfig::default()
        };
        let (train, test) = synth.generate();
        let mut rng = Rng64::new(0);
        let target = mlp(&[8, 24, 3], &mut rng);
        let selector = mlp(&[8, 16, 3], &mut rng);
        let _ = NessaPipeline::new(cfg, target, selector, train, test);
    }
}
