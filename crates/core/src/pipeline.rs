//! The NeSSA near-storage training pipeline (paper §3, Figure 3).
//!
//! The device path can fail (see [`nessa_smartssd::fault`]); every
//! storage phase runs under the degradation ladder of [`crate::retry`]:
//! transient faults are retried with sim-clock backoff, dead drives are
//! evicted and the shards rebalance, a dead kernel path degrades to a
//! staged host read + host-side selection, and if even that is out the
//! round falls back to seeded random selection. Every rung is surfaced
//! through the [`HealthMonitor`] fault counters.

use crate::biasing::LossTracker;
use crate::config::NessaConfig;
use crate::error::PipelineError;
use crate::health::HealthMonitor;
use crate::proxy::gradient_proxies;
use crate::report::{EpochRecord, RunReport};
use crate::retry::RetryPolicy;
use crate::sizing::SubsetSizer;
use crate::trainer::{evaluate, train_epoch_metered, TrainMetrics};
use nessa_data::Dataset;
use nessa_nn::models::Network;
use nessa_nn::optim::{MultiStepLr, Sgd, SgdConfig};
use nessa_quant::QuantizedModel;
use nessa_select::craig::{select_per_class_factored, CraigOptions};
use nessa_select::{random, SelectError, SelectMetrics, Selection};
use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::{ClusterError, DeviceError, SmartSsdConfig, SsdCluster};
use nessa_telemetry::{DeviceEvent, Telemetry};
use nessa_tensor::rng::Rng64;

/// Runs one cluster phase under the retry policy. Offline drives are
/// evicted on the spot (the shard layout rebalances; no retry budget is
/// consumed — eviction is repair, not retry); transient faults charge a
/// deterministic backoff to every surviving drive's simulated clock and
/// try again. Anything else — and an emptied cluster — surfaces to the
/// caller.
fn recover<T>(
    cluster: &mut SsdCluster,
    retry: &RetryPolicy,
    health: &HealthMonitor,
    telemetry: &Telemetry,
    epoch: usize,
    mut op: impl FnMut(&mut SsdCluster) -> Result<T, ClusterError>,
) -> Result<T, ClusterError> {
    let mut attempts = 1u32;
    loop {
        match op(cluster) {
            Ok(v) => return Ok(v),
            Err(e) if matches!(e.error, DeviceError::Offline) => {
                if cluster.evict_drive(e.drive) {
                    health.note_drive_evicted(cluster.len());
                }
                if cluster.is_empty() {
                    return Err(e);
                }
            }
            Err(e) if e.error.is_transient() && attempts < retry.max_attempts.max(1) => {
                let backoff = retry.backoff_secs(attempts - 1);
                let mut span = telemetry
                    .span("retry")
                    .with_attr("epoch", epoch)
                    .with_attr("attempt", attempts)
                    .with_attr("drive", e.drive);
                span.add_sim_secs(backoff);
                cluster.stall_all(backoff);
                health.note_retry();
                attempts += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The assembled SmartSSD+GPU training loop.
///
/// The pipeline owns the **target model** (trained on the GPU side), the
/// **selector model** (the structurally-identical network whose weights
/// live on the FPGA as int8), the simulated [`SsdCluster`]
/// ([`NessaConfig::drives`] drives; one by default), and the train / test
/// datasets.
///
/// Each epoch follows the paper's five steps: P2P-read the candidate pool
/// to the FPGA, run the selection kernel (quantized forward → gradient
/// proxies → per-class, chunk-partitioned facility location), ship the
/// subset to the GPU, train, and feed quantized weights back. Subset
/// biasing prunes the pool every [`NessaConfig::biasing_drop_every`]
/// epochs; dynamic sizing shrinks the subset fraction when the loss
/// plateaus.
pub struct NessaPipeline {
    config: NessaConfig,
    target: Network,
    selector: Network,
    train: Dataset,
    test: Dataset,
    device: SsdCluster,
    telemetry: Telemetry,
}

impl NessaPipeline {
    /// Creates a pipeline.
    ///
    /// `target` and `selector` must be structurally identical networks
    /// (the selector is the FPGA-side copy refreshed by the feedback
    /// loop).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different parameter structures or
    /// the datasets disagree on feature dimension / class count.
    pub fn new(
        config: NessaConfig,
        mut target: Network,
        mut selector: Network,
        train: Dataset,
        test: Dataset,
    ) -> Self {
        let t_shapes: Vec<_> = target
            .export_weights()
            .iter()
            .map(|w| w.shape().dims().to_vec())
            .collect();
        let s_shapes: Vec<_> = selector
            .export_weights()
            .iter()
            .map(|w| w.shape().dims().to_vec())
            .collect();
        assert_eq!(
            t_shapes, s_shapes,
            "target and selector must share structure"
        );
        assert_eq!(train.dim(), test.dim(), "train/test feature dims differ");
        assert_eq!(train.classes(), test.classes(), "train/test classes differ");
        let telemetry = Telemetry::new(&config.telemetry);
        let mut device = SsdCluster::new(config.drives.max(1), SmartSsdConfig::default());
        for (drive, plan) in &config.fault_plans {
            device.inject_faults(*drive, plan.clone());
        }
        Self {
            config,
            target,
            selector,
            train,
            test,
            device,
            telemetry,
        }
    }

    /// Runs the full training loop and returns the report.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Select`] if the selection kernel rejects its
    /// inputs, [`PipelineError::Kernel`] if a selection chunk exceeds the
    /// FPGA's on-chip memory (enable partitioning or shrink the chunk),
    /// [`PipelineError::Drive`] for a device fault the degradation ladder
    /// could not absorb, and [`PipelineError::AllDrivesLost`] once every
    /// drive has been evicted.
    pub fn run(&mut self) -> Result<RunReport, PipelineError> {
        let cfg = self.config.clone();
        let n = self.train.len();
        let mut rng = Rng64::new(cfg.seed);
        let mut opt = Sgd::new(SgdConfig::default());
        let schedule = MultiStepLr::paper_schedule(cfg.epochs);
        let mut tracker = LossTracker::new(
            n,
            cfg.biasing_window,
            cfg.biasing_drop_every,
            cfg.biasing_drop_fraction,
            ((n as f32) * cfg.biasing_min_pool) as usize,
        );
        let mut sizer = SubsetSizer::new(
            cfg.subset_fraction,
            cfg.sizing_threshold,
            cfg.sizing_factor,
            cfg.sizing_min_fraction.min(cfg.subset_fraction),
        );
        // Initialize the FPGA's selector with a quantized snapshot of the
        // (randomly initialized) target, as the system would at deployment.
        QuantizedModel::from_network(&mut self.target).apply_to(&mut self.selector);
        let mut selection = Selection::default();
        let mut report = RunReport {
            name: "nessa".into(),
            train_size: n,
            ..RunReport::default()
        };
        let select_metrics = SelectMetrics::from_telemetry(&self.telemetry);
        let train_metrics = TrainMetrics::from_telemetry(&self.telemetry);
        let mut health = HealthMonitor::new(&self.telemetry, cfg.epochs, cfg.stall_budget_secs);
        health.set_drives_alive(self.device.len());
        // Backoff stays inside the stall budget so a retrying pipeline
        // never looks wedged to the heartbeat.
        let retry = cfg.retry.bounded_by(cfg.stall_budget_secs);
        let mut fraction = cfg.subset_fraction;
        for epoch in 0..cfg.epochs {
            let lr = schedule.lr_at(epoch);
            let mut epoch_span = self.telemetry.span("epoch").with_attr("epoch", epoch);
            let mut select_secs = 0.0;
            let mut io_secs = 0.0;
            if epoch % cfg.select_every == 0 || selection.is_empty() {
                let mut pool: Vec<usize> = if cfg.subset_biasing {
                    tracker.active_pool().to_vec()
                } else {
                    (0..n).collect()
                };
                let record_bytes = self.train.bytes_per_sample() as u64;
                // Set when the P2P/kernel path is out and the pool was
                // staged to the host instead; selection math then runs
                // host-side and the ship phase is free.
                let mut on_host = false;
                // (1) Stream the candidate pool from flash to the FPGA.
                let scanned = {
                    let mut scan = self
                        .telemetry
                        .span("scan")
                        .with_attr("epoch", epoch)
                        .with_attr("records", pool.len());
                    let r = recover(
                        &mut self.device,
                        &retry,
                        &health,
                        &self.telemetry,
                        epoch,
                        |c| c.parallel_scan(pool.len() as u64, record_bytes),
                    );
                    if let Ok(secs) = &r {
                        scan.add_sim_secs(*secs);
                    }
                    r
                };
                match scanned {
                    Ok(secs) => io_secs += secs,
                    Err(_) => {
                        if self.device.is_empty() {
                            return Err(PipelineError::AllDrivesLost {
                                evicted: self.device.evicted(),
                            });
                        }
                        // P2P path out beyond recovery: degrade to the
                        // conventional staged read through the host.
                        on_host = true;
                        health.note_fallback_host();
                        let mut fb = self
                            .telemetry
                            .span("fallback")
                            .with_attr("epoch", epoch)
                            .with_attr("rung", "host");
                        match recover(
                            &mut self.device,
                            &retry,
                            &health,
                            &self.telemetry,
                            epoch,
                            |c| c.conventional_read_to_host(pool.len() as u64, record_bytes),
                        ) {
                            Ok(secs) => {
                                fb.add_sim_secs(secs);
                                io_secs += secs;
                            }
                            Err(e) => {
                                // No path left to the data at all.
                                return Err(if self.device.is_empty() {
                                    PipelineError::AllDrivesLost {
                                        evicted: self.device.evicted(),
                                    }
                                } else {
                                    e.into()
                                });
                            }
                        }
                    }
                }
                // Corrupt records detected during the scan cannot join the
                // candidate pool: count them and drop that many (chosen
                // from the run seed; the simulation does not track which
                // physical records a plan corrupted), keeping at least one.
                let bad = self.device.take_quarantined();
                if bad > 0 {
                    health.note_quarantined(bad);
                    let drop_n = (bad as usize).min(pool.len().saturating_sub(1));
                    if drop_n > 0 {
                        let mut keep = vec![true; pool.len()];
                        for i in rng.sample_indices(pool.len(), drop_n) {
                            keep[i] = false;
                        }
                        pool = pool
                            .iter()
                            .zip(&keep)
                            .filter_map(|(&i, &k)| k.then_some(i))
                            .collect();
                    }
                }
                // (2) Quantized forward pass → last-layer gradient proxies
                // (outer-product space, compared via the factored distance
                // so nothing of size classes × features is materialized).
                let mut select_span = self
                    .telemetry
                    .span("select")
                    .with_attr("epoch", epoch)
                    .with_attr("pool", pool.len());
                let proxies =
                    gradient_proxies(&mut self.selector, &self.train, &pool, cfg.batch_size);
                let feature_dim = proxies.features.dim(1);
                let pool_labels: Vec<usize> = pool.iter().map(|&i| self.train.label(i)).collect();
                let chunk = cfg.partitioning.then(|| cfg.partition_chunk(fraction));
                let opts = CraigOptions {
                    variant: cfg.greedy,
                    partition_chunk: chunk,
                    threads: cfg.threads,
                    metrics: Some(select_metrics.clone()),
                };
                // Charge the kernel's simulated time.
                // The kernel compares outer-product gradients through the
                // ‖a‖²‖b‖² − 2(a·a')(b·b') factorization, so its per-pair
                // cost scales with classes + feature_dim, not the product.
                let profile = KernelProfile {
                    samples: pool.len() as u64,
                    forward_macs_per_sample: self.selector.flops_per_sample() / 2,
                    proxy_dim: self.train.classes() + feature_dim,
                    chunk: chunk.unwrap_or_else(|| {
                        // Without partitioning the kernel tiles at the
                        // largest class size.
                        pool_labels
                            .iter()
                            .fold(vec![0usize; self.train.classes()], |mut acc, &y| {
                                acc[y] += 1;
                                acc
                            })
                            .into_iter()
                            .max()
                            .unwrap_or(1)
                    }),
                    k_per_chunk: cfg.batch_size,
                };
                let mut kernel_secs = 0.0;
                // Set when even the staged host read is out: the pool is
                // still resident on the FPGA from the scan, so the round
                // degrades to seeded random picks shipped the normal way.
                let mut force_random = false;
                if !on_host {
                    match recover(
                        &mut self.device,
                        &retry,
                        &health,
                        &self.telemetry,
                        epoch,
                        |c| c.parallel_select(&profile),
                    ) {
                        Ok(secs) => kernel_secs = secs,
                        Err(e) => {
                            if self.device.is_empty() {
                                return Err(PipelineError::AllDrivesLost {
                                    evicted: self.device.evicted(),
                                });
                            }
                            if !e.error.is_transient() {
                                // A chunk that does not fit is a config
                                // problem, not a fault to degrade around.
                                return Err(e.into());
                            }
                            // Kernel path out beyond recovery: stage the
                            // pool to the host and select there.
                            health.note_fallback_host();
                            let mut fb = self
                                .telemetry
                                .span("fallback")
                                .with_attr("epoch", epoch)
                                .with_attr("rung", "host");
                            match recover(
                                &mut self.device,
                                &retry,
                                &health,
                                &self.telemetry,
                                epoch,
                                |c| c.conventional_read_to_host(pool.len() as u64, record_bytes),
                            ) {
                                Ok(secs) => {
                                    on_host = true;
                                    fb.add_sim_secs(secs);
                                    io_secs += secs;
                                }
                                Err(_) => {
                                    if self.device.is_empty() {
                                        return Err(PipelineError::AllDrivesLost {
                                            evicted: self.device.evicted(),
                                        });
                                    }
                                    force_random = true;
                                }
                            }
                        }
                    }
                }
                // (3) The selection math: facility location when any
                // compute path is available (device and host produce the
                // same picks — the simulation models time, not arithmetic),
                // seeded random picks as the last rung.
                let maybe = if force_random {
                    None
                } else {
                    match select_per_class_factored(
                        &proxies.residuals,
                        &proxies.features,
                        &pool_labels,
                        self.train.classes(),
                        fraction,
                        &opts,
                        &mut rng,
                    ) {
                        Ok(local) => Some(local),
                        // An internal invariant breach is a selector bug;
                        // degrade the round rather than lose the run.
                        Err(SelectError::Internal(_)) => None,
                        Err(e) => return Err(e.into()),
                    }
                };
                let local = match maybe {
                    Some(mut local) => {
                        // Temper the medoid weights (see
                        // NessaConfig::weight_temper).
                        for w in &mut local.weights {
                            *w = w.powf(cfg.weight_temper);
                        }
                        local
                    }
                    None => {
                        health.note_fallback_random();
                        let mut fb = self
                            .telemetry
                            .span("fallback")
                            .with_attr("epoch", epoch)
                            .with_attr("rung", "random");
                        let sel = random::select_per_class_checked(
                            &pool_labels,
                            self.train.classes(),
                            fraction,
                            &mut rng,
                        )?;
                        fb.set_attr("subset", sel.len());
                        sel
                    }
                };
                selection = local.into_global(&pool);
                select_span.add_sim_secs(kernel_secs);
                select_span.set_attr("subset", selection.len());
                select_span.finish();
                select_secs += kernel_secs;
                // (4) Ship the subset to the GPU. When the round already
                // staged the pool to the host, the subset is there — no
                // further transfer.
                {
                    let mut ship = self
                        .telemetry
                        .span("ship")
                        .with_attr("epoch", epoch)
                        .with_attr("records", selection.len());
                    if !on_host {
                        match recover(
                            &mut self.device,
                            &retry,
                            &health,
                            &self.telemetry,
                            epoch,
                            |c| c.gather_selections(selection.len() as u64, record_bytes),
                        ) {
                            Ok(secs) => {
                                ship.add_sim_secs(secs);
                                io_secs += secs;
                            }
                            Err(e) => {
                                return Err(if self.device.is_empty() {
                                    PipelineError::AllDrivesLost {
                                        evicted: self.device.evicted(),
                                    }
                                } else {
                                    e.into()
                                });
                            }
                        }
                    }
                }
            }
            // (4) Train the target model on the subset.
            let outcome = {
                let _train_span = self
                    .telemetry
                    .span("train")
                    .with_attr("epoch", epoch)
                    .with_attr("subset", selection.len());
                train_epoch_metered(
                    &mut self.target,
                    &mut opt,
                    &self.train,
                    &selection.indices,
                    &selection.weights,
                    cfg.batch_size,
                    lr,
                    &mut rng,
                    Some(&train_metrics),
                )
            };
            // Feedback: quantize weights, broadcast to every live drive,
            // refresh the selector.
            if cfg.feedback {
                let mut feedback = self.telemetry.span("feedback").with_attr("epoch", epoch);
                let snap = QuantizedModel::from_network(&mut self.target);
                feedback.set_attr("bytes", snap.payload_bytes());
                let payload = snap.payload_bytes() as u64;
                match recover(
                    &mut self.device,
                    &retry,
                    &health,
                    &self.telemetry,
                    epoch,
                    |c| c.broadcast_feedback(payload),
                ) {
                    Ok(secs) => {
                        feedback.add_sim_secs(secs);
                        io_secs += secs;
                    }
                    Err(e) => {
                        return Err(if self.device.is_empty() {
                            PipelineError::AllDrivesLost {
                                evicted: self.device.evicted(),
                            }
                        } else {
                            e.into()
                        });
                    }
                }
                snap.apply_to(&mut self.selector);
            }
            // Subset biasing: record subset losses; prune on schedule.
            if cfg.subset_biasing {
                tracker.record_epoch(&selection.indices, &outcome.per_sample_losses);
                // Selection indices may have been pruned from the pool; the
                // next selection round re-selects from the surviving pool.
            }
            if cfg.dynamic_sizing {
                fraction = sizer.observe(outcome.mean_loss);
            }
            let test_acc = evaluate(&mut self.target, &self.test, cfg.batch_size);
            epoch_span.add_sim_secs(select_secs + io_secs);
            epoch_span.set_attr("train_loss", outcome.mean_loss);
            epoch_span.set_attr("test_acc", test_acc);
            epoch_span.finish();
            // Heartbeat + progress gauges: the epoch span just closed, so a
            // healthy loop always passes the stall check here; the gauges
            // give any observer (timeline, JSONL tail) throughput and ETA.
            health.epoch_completed(selection.len());
            health.check_stall();
            report.epochs.push(EpochRecord {
                epoch,
                lr,
                subset_size: selection.len(),
                pool_size: if cfg.subset_biasing {
                    tracker.active_pool().len()
                } else {
                    n
                },
                train_loss: outcome.mean_loss,
                test_acc,
                select_secs,
                io_secs,
            });
        }
        report.traffic = self.device.traffic();
        report.device_energy_j = self.device.energy_joules();
        health.note_faults_injected(self.device.faults_injected());
        health.set_drives_alive(self.device.len());
        // Bridge every drive's phase trace (retired ones included) and
        // roll-up counters into the unified stream, then flush the sinks
        // for this run.
        if self.telemetry.is_enabled() {
            for d in self
                .device
                .drives()
                .iter()
                .chain(self.device.retired_drives())
            {
                for ev in d.trace().events() {
                    self.telemetry.record_device_event(DeviceEvent {
                        phase: ev.phase.label().to_string(),
                        start_s: ev.start_s,
                        duration_s: ev.duration_s,
                        bytes: ev.bytes,
                    });
                }
            }
            let traffic = report.traffic;
            self.telemetry
                .gauge("device.ssd_to_fpga_bytes")
                .set(traffic.ssd_to_fpga as f64);
            self.telemetry
                .gauge("device.fpga_to_host_bytes")
                .set(traffic.fpga_to_host as f64);
            self.telemetry
                .gauge("device.host_to_fpga_bytes")
                .set(traffic.host_to_fpga as f64);
            self.telemetry
                .gauge("device.energy_j")
                .set(report.device_energy_j);
            self.telemetry
                .gauge("device.sim_secs")
                .set(report.device_secs());
            self.telemetry.flush();
        }
        Ok(report)
    }

    /// The trained target network (for inspection after [`run`]).
    ///
    /// [`run`]: NessaPipeline::run
    pub fn target_mut(&mut self) -> &mut Network {
        &mut self.target
    }

    /// The simulated drive cluster (traffic/energy counters, eviction
    /// state, per-drive traces).
    pub fn device(&self) -> &SsdCluster {
        &self.device
    }

    /// The run's telemetry stream (disabled unless
    /// [`NessaConfig::telemetry`] enables a mode).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_data::SynthConfig;
    use nessa_nn::models::mlp;

    fn small_setup(cfg: &NessaConfig) -> NessaPipeline {
        let synth = SynthConfig {
            train: 300,
            test: 120,
            dim: 8,
            classes: 3,
            cluster_std: 0.6,
            class_sep: 3.5,
            ..SynthConfig::default()
        };
        let (train, test) = synth.generate();
        let mut rng = Rng64::new(cfg.seed);
        let target = mlp(&[8, 24, 3], &mut rng);
        let selector = mlp(&[8, 24, 3], &mut rng);
        NessaPipeline::new(cfg.clone(), target, selector, train, test)
    }

    #[test]
    fn pipeline_trains_to_reasonable_accuracy() {
        let cfg = NessaConfig::new(0.3, 15).with_batch_size(32).with_seed(0);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        assert_eq!(report.epochs.len(), 15);
        assert!(
            report.final_accuracy() > 0.75,
            "accuracy {}",
            report.final_accuracy()
        );
        // Subset stays near the requested fraction.
        let pct = report.mean_subset_pct();
        assert!((25.0..40.0).contains(&pct), "subset {pct}%");
    }

    #[test]
    fn traffic_shows_near_storage_benefit() {
        let cfg = NessaConfig::new(0.2, 5).with_batch_size(32).with_seed(1);
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let t = report.traffic;
        assert!(t.ssd_to_fpga > 0, "flash reads must be accounted");
        assert!(t.fpga_to_host > 0, "subset transfers must be accounted");
        assert!(t.host_to_fpga > 0, "feedback must be accounted");
        // The subset crossing the interconnect is much smaller than what
        // stayed on-board.
        assert!(t.fpga_to_host < t.ssd_to_fpga / 2);
        assert!(report.device_energy_j > 0.0);
    }

    #[test]
    fn subset_biasing_shrinks_pool() {
        let mut cfg = NessaConfig::new(0.3, 9).with_batch_size(32).with_seed(2);
        cfg.biasing_drop_every = 3;
        cfg.biasing_drop_fraction = 0.2;
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let first_pool = report.epochs.first().unwrap().pool_size;
        let last_pool = report.epochs.last().unwrap().pool_size;
        assert!(last_pool < first_pool, "{last_pool} !< {first_pool}");
    }

    #[test]
    fn dynamic_sizing_reduces_subset() {
        let mut cfg = NessaConfig::new(0.5, 12)
            .with_batch_size(32)
            .with_dynamic_sizing(true)
            .with_seed(3);
        cfg.sizing_threshold = 0.5; // aggressive: shrink on <50 % reduction
        cfg.sizing_factor = 0.8;
        cfg.sizing_min_fraction = 0.1;
        let mut p = small_setup(&cfg);
        let report = p.run().unwrap();
        let first = report.epochs.first().unwrap().subset_size;
        let last = report.epochs.last().unwrap().subset_size;
        assert!(last < first, "{last} !< {first}");
    }

    #[test]
    fn health_gauges_published_during_run() {
        use nessa_telemetry::TelemetrySettings;
        let cfg = NessaConfig::new(0.3, 3)
            .with_batch_size(32)
            .with_telemetry(TelemetrySettings::memory())
            .with_seed(4);
        let mut p = small_setup(&cfg);
        p.run().unwrap();
        let snap = p.telemetry().metrics_snapshot();
        let gauges: std::collections::BTreeMap<_, _> = snap.gauges.into_iter().collect();
        assert_eq!(gauges["health.epochs_done"], 3.0);
        assert!(gauges["health.epoch_secs"] > 0.0);
        assert!(gauges["health.samples_per_sec"] > 0.0);
        // The run is over: nothing remains, so the ETA gauge reads zero.
        assert_eq!(gauges["health.eta_secs"], 0.0);
        // The loop closes a span every epoch, so the default 30 s budget
        // never trips.
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters["health.stalls"], 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NessaConfig::new(0.3, 4).with_batch_size(32).with_seed(9);
        let a = small_setup(&cfg).run().unwrap();
        let b = small_setup(&cfg).run().unwrap();
        assert_eq!(a.accuracy_curve(), b.accuracy_curve());
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    #[should_panic(expected = "share structure")]
    fn rejects_mismatched_selector() {
        let cfg = NessaConfig::new(0.3, 2);
        let synth = SynthConfig {
            train: 50,
            test: 20,
            dim: 8,
            classes: 3,
            ..SynthConfig::default()
        };
        let (train, test) = synth.generate();
        let mut rng = Rng64::new(0);
        let target = mlp(&[8, 24, 3], &mut rng);
        let selector = mlp(&[8, 16, 3], &mut rng);
        let _ = NessaPipeline::new(cfg, target, selector, train, test);
    }
}
