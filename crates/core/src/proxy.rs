//! Gradient-proxy computation.
//!
//! CRAIG-style selection needs per-sample gradients, but full gradients are
//! as expensive as training. The standard proxy — used by the paper via
//! \[20\] — is the **last-layer gradient**: for softmax cross-entropy the
//! gradient of the loss with respect to the classifier head's weights is
//! the outer product `(softmax(logits) − one-hot) ⊗ features`, obtainable
//! from a forward pass alone. On NeSSA's FPGA that forward pass runs with
//! the quantized selector model.
//!
//! The outer product never needs to be materialized to compare two
//! samples: `‖a_i b_iᵀ − a_j b_jᵀ‖² = ‖a_i‖²‖b_i‖² + ‖a_j‖²‖b_j‖² −
//! 2 (a_i·a_j)(b_i·b_j)`, so the FPGA kernel's cost per pair is
//! `O(classes + feature_dim)` — the low-operational-intensity property of
//! paper §2.2. At reproduction scale we *do* materialize it
//! ([`GradientProxies::flatten_outer`]) so the selection crate's dense
//! kernels apply unchanged.

use nessa_data::Dataset;
use nessa_nn::models::Network;
use nessa_tensor::ops::softmax_rows;
use nessa_tensor::Tensor;

/// Per-sample last-layer gradient factors: softmax residuals
/// `(p − y)` and penultimate features.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientProxies {
    /// `n × classes` softmax residuals.
    pub residuals: Tensor,
    /// `n × feature_dim` penultimate activations.
    pub features: Tensor,
}

impl GradientProxies {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.residuals.dim(0)
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the flattened outer products: row `i` is
    /// `vec(residual_i ⊗ feature_i)` of length `classes × feature_dim`.
    /// Euclidean distances over these rows equal the last-layer gradient
    /// distances CRAIG's facility location consumes.
    pub fn flatten_outer(&self) -> Tensor {
        let (n, c) = (self.residuals.dim(0), self.residuals.dim(1));
        let f = self.features.dim(1);
        let mut out = Tensor::zeros(&[n, c * f]);
        for i in 0..n {
            let res = self.residuals.row(i);
            let feat = self.features.row(i);
            let row = out.row_mut(i);
            for (ci, &r) in res.iter().enumerate() {
                // nessa-lint: allow(f1-float-eq) — exact-zero skip is a
                // pure optimization; any nonzero residual takes the slow
                // path and computes the same product.
                if r == 0.0 {
                    continue;
                }
                let dst = &mut row[ci * f..(ci + 1) * f];
                for (d, &x) in dst.iter_mut().zip(feat.iter()) {
                    *d = r * x;
                }
            }
        }
        out
    }

    /// Per-sample last-layer gradient norms
    /// (`‖residual‖ · ‖feature‖`), without materializing the outer
    /// product. Large norms mark hard, informative samples.
    pub fn gradient_norms(&self) -> Vec<f32> {
        (0..self.len())
            .map(|i| {
                let r: f32 = self.residuals.row(i).iter().map(|v| v * v).sum();
                let f: f32 = self.features.row(i).iter().map(|v| v * v).sum();
                (r * f).sqrt()
            })
            .collect()
    }
}

/// Computes last-layer gradient proxies for the given samples.
///
/// Runs `selector` in eval mode over `dataset[indices]` in batches of
/// `batch_size` and returns the residual/feature factors, one row per
/// index.
///
/// # Panics
///
/// Panics if any index is out of bounds or `batch_size == 0`.
pub fn gradient_proxies(
    selector: &mut Network,
    dataset: &Dataset,
    indices: &[usize],
    batch_size: usize,
) -> GradientProxies {
    assert!(batch_size > 0, "batch size must be positive");
    let classes = dataset.classes();
    let mut residuals = Tensor::zeros(&[indices.len(), classes]);
    let mut features: Option<Tensor> = None;
    let mut row = 0;
    for chunk in indices.chunks(batch_size) {
        let (x, y) = dataset.batch(chunk);
        let (feats, logits) = selector.forward_with_features(&x, false);
        let probs = softmax_rows(&logits);
        let fdim = feats.dim(1);
        let features = features.get_or_insert_with(|| Tensor::zeros(&[indices.len(), fdim]));
        for (b, &label) in y.iter().enumerate() {
            let dst = residuals.row_mut(row);
            dst.copy_from_slice(probs.row(b));
            dst[label] -= 1.0;
            features.row_mut(row).copy_from_slice(feats.row(b));
            row += 1;
        }
    }
    GradientProxies {
        residuals,
        features: features.unwrap_or_else(|| Tensor::zeros(&[0, 0])),
    }
}

/// Penultimate-layer embeddings for the given samples (the space the
/// K-Centers baseline of Sener & Savarese selects in).
///
/// # Panics
///
/// Panics if any index is out of bounds or `batch_size == 0`.
pub fn embeddings(
    model: &mut Network,
    dataset: &Dataset,
    indices: &[usize],
    batch_size: usize,
) -> Tensor {
    assert!(batch_size > 0, "batch size must be positive");
    let mut out: Option<Tensor> = None;
    let mut row = 0;
    for chunk in indices.chunks(batch_size) {
        let (x, _) = dataset.batch(chunk);
        let (feats, _) = model.forward_with_features(&x, false);
        let fdim = feats.dim(1);
        let out = out.get_or_insert_with(|| Tensor::zeros(&[indices.len(), fdim]));
        for b in 0..chunk.len() {
            out.row_mut(row).copy_from_slice(feats.row(b));
            row += 1;
        }
    }
    out.unwrap_or_else(|| Tensor::zeros(&[0, 0]))
}

/// Per-sample losses under the current model, in the order of `indices`
/// (cross-entropy, eval mode). Used by subset biasing to find learned
/// samples without a backward pass.
///
/// # Panics
///
/// Panics if any index is out of bounds or `batch_size == 0`.
pub fn sample_losses(
    model: &mut Network,
    dataset: &Dataset,
    indices: &[usize],
    batch_size: usize,
) -> Vec<f32> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut out = Vec::with_capacity(indices.len());
    for chunk in indices.chunks(batch_size) {
        let (x, y) = dataset.batch(chunk);
        let logits = model.forward(&x, false);
        let loss = nessa_nn::loss::softmax_cross_entropy(&logits, &y);
        out.extend(loss.per_sample);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_data::SynthConfig;
    use nessa_nn::models::mlp;
    use nessa_tensor::linalg::sq_dist;
    use nessa_tensor::rng::Rng64;

    fn setup() -> (Network, Dataset) {
        let mut rng = Rng64::new(0);
        let cfg = SynthConfig {
            train: 60,
            test: 10,
            dim: 8,
            classes: 3,
            ..SynthConfig::default()
        };
        let (train, _) = cfg.generate();
        let net = mlp(&[8, 16, 3], &mut rng);
        (net, train)
    }

    #[test]
    fn proxies_have_expected_shapes() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..20).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 7);
        assert_eq!(p.residuals.shape().dims(), &[20, 3]);
        assert_eq!(p.features.shape().dims(), &[20, 16]);
        assert_eq!(p.len(), 20);
        assert!(!p.is_empty());
    }

    #[test]
    fn residual_rows_sum_to_zero() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..20).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 20);
        for i in 0..20 {
            let s: f32 = p.residuals.row(i).iter().sum();
            assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn flatten_outer_matches_direct_outer_product() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..5).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 2);
        let flat = p.flatten_outer();
        assert_eq!(flat.shape().dims(), &[5, 3 * 16]);
        for i in 0..5 {
            for c in 0..3 {
                for f in 0..16 {
                    let expected = p.residuals.at(&[i, c]) * p.features.at(&[i, f]);
                    assert!((flat.at(&[i, c * 16 + f]) - expected).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn outer_distance_factorization_identity() {
        // ‖a_i⊗b_i − a_j⊗b_j‖² = ‖a_i‖²‖b_i‖² + ‖a_j‖²‖b_j‖²
        //                         − 2 (a_i·a_j)(b_i·b_j)
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..6).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 3);
        let flat = p.flatten_outer();
        for i in 0..6 {
            for j in 0..6 {
                let direct = sq_dist(flat.row(i), flat.row(j));
                let ai: f32 = p.residuals.row(i).iter().map(|v| v * v).sum();
                let aj: f32 = p.residuals.row(j).iter().map(|v| v * v).sum();
                let bi: f32 = p.features.row(i).iter().map(|v| v * v).sum();
                let bj: f32 = p.features.row(j).iter().map(|v| v * v).sum();
                let aa: f32 = p
                    .residuals
                    .row(i)
                    .iter()
                    .zip(p.residuals.row(j))
                    .map(|(&x, &y)| x * y)
                    .sum();
                let bb: f32 = p
                    .features
                    .row(i)
                    .iter()
                    .zip(p.features.row(j))
                    .map(|(&x, &y)| x * y)
                    .sum();
                let factored = ai * bi + aj * bj - 2.0 * aa * bb;
                assert!(
                    (direct - factored).abs() < 1e-3 * (1.0 + direct.abs()),
                    "({i},{j}): {direct} vs {factored}"
                );
            }
        }
    }

    #[test]
    fn gradient_norms_match_flattened_norms() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..8).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 4);
        let flat = p.flatten_outer();
        for (i, &n) in p.gradient_norms().iter().enumerate() {
            let direct: f32 = flat.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - direct).abs() < 1e-4, "{n} vs {direct}");
        }
    }

    #[test]
    fn batch_size_does_not_change_result() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..30).collect();
        let a = gradient_proxies(&mut net, &data, &idx, 30).flatten_outer();
        let b = gradient_proxies(&mut net, &data, &idx, 4).flatten_outer();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn embeddings_match_proxy_features() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..10).collect();
        let p = gradient_proxies(&mut net, &data, &idx, 5);
        let e = embeddings(&mut net, &data, &idx, 3);
        assert_eq!(e.as_slice(), p.features.as_slice());
    }

    #[test]
    fn losses_align_with_indices() {
        let (mut net, data) = setup();
        let all: Vec<usize> = (0..10).collect();
        let losses = sample_losses(&mut net, &data, &all, 3);
        assert_eq!(losses.len(), 10);
        let rev: Vec<usize> = all.iter().rev().copied().collect();
        let rev_losses = sample_losses(&mut net, &data, &rev, 3);
        for i in 0..10 {
            assert!((losses[i] - rev_losses[9 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn losses_are_positive() {
        let (mut net, data) = setup();
        let idx: Vec<usize> = (0..15).collect();
        let losses = sample_losses(&mut net, &data, &idx, 5);
        // Cross-entropy is non-negative; an untrained net can be confidently
        // right on individual samples, where f32 rounds the loss to zero.
        assert!(losses.iter().all(|&l| l >= 0.0 && l.is_finite()));
        assert!(losses.iter().any(|&l| l > 0.0));
    }
}
