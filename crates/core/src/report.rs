//! Run reports: per-epoch records plus device-level summaries.

use nessa_smartssd::TrafficStats;
use std::fmt;

/// Overlapped-pipelining bookkeeping for one epoch (present only when
/// [`crate::NessaConfig::overlap`] is on).
///
/// Under overlap the epoch's device work (the selection round for the
/// *next* epoch) runs concurrently with GPU training, so the epoch's cost
/// is not a sum: it is
/// `sync_secs + max(select_side_secs, train_secs) + handoff_secs`.
/// Every field lives on the simulated clock — `train_secs` comes from the
/// deterministic GPU cost model (`nessa_nn::cost::epoch_time`), never the
/// host wall clock — so overlapped runs stay byte-reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OverlapRecord {
    /// Selection seconds paid synchronously *before* training could start
    /// (the epoch-0 prologue round, or a round forced synchronous by
    /// `max_staleness = 0`).
    pub sync_secs: f64,
    /// Device seconds of the selection round overlapped with this epoch's
    /// training (scan + kernel + subset shipment for epoch *e + 1*).
    pub select_side_secs: f64,
    /// Deterministic GPU seconds for this epoch's training, from the cost
    /// model.
    pub train_secs: f64,
    /// Hand-off seconds serializing the two sides at the epoch boundary
    /// (quantized-weight feedback broadcast).
    pub handoff_secs: f64,
    /// Feedback age (in epochs) used by the selection round overlapped
    /// with this epoch: 1 for a pipelined round, 0 for a synchronous one.
    pub staleness: usize,
}

/// One epoch's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Learning rate used.
    pub lr: f32,
    /// Samples trained on this epoch.
    pub subset_size: usize,
    /// Active candidate-pool size (after subset biasing).
    pub pool_size: usize,
    /// Weighted mean training loss.
    pub train_loss: f32,
    /// Test accuracy (fraction in `[0, 1]`).
    pub test_acc: f32,
    /// Simulated seconds the selection kernel ran this epoch.
    pub select_secs: f64,
    /// Simulated seconds of data movement this epoch (flash reads, subset
    /// transfer, feedback).
    pub io_secs: f64,
    /// Overlapped-pipelining bookkeeping; `None` for the sequential loop
    /// (keeping its JSONL byte-identical to earlier releases).
    pub overlap: Option<OverlapRecord>,
}

impl EpochRecord {
    /// Total simulated seconds for the epoch: selection + I/O for the
    /// sequential loop, `sync + max(select_side, train) + handoff` when
    /// the epoch ran overlapped.
    pub fn total_secs(&self) -> f64 {
        match &self.overlap {
            Some(o) => o.sync_secs + o.select_side_secs.max(o.train_secs) + o.handoff_secs,
            None => self.select_secs + self.io_secs,
        }
    }
}

/// A full training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Policy/run label (e.g. `"nessa"`, `"goal"`, `"craig"`).
    pub name: String,
    /// Per-epoch records, in order.
    pub epochs: Vec<EpochRecord>,
    /// Device traffic at the end of the run (zero for CPU-only policies).
    pub traffic: TrafficStats,
    /// Simulated device energy in joules (zero for CPU-only policies).
    pub device_energy_j: f64,
    /// Training-set size the run started from.
    pub train_size: usize,
}

impl RunReport {
    /// Final-epoch test accuracy (`0.0` for an empty run).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map(|e| e.test_acc).unwrap_or(0.0)
    }

    /// Best test accuracy across epochs.
    pub fn best_accuracy(&self) -> f32 {
        self.epochs.iter().map(|e| e.test_acc).fold(0.0, f32::max)
    }

    /// Mean subset size as a percentage of the training set.
    pub fn mean_subset_pct(&self) -> f32 {
        if self.epochs.is_empty() || self.train_size == 0 {
            return 0.0;
        }
        let mean: f64 = self
            .epochs
            .iter()
            .map(|e| e.subset_size as f64)
            .sum::<f64>()
            / self.epochs.len() as f64;
        (100.0 * mean / self.train_size as f64) as f32
    }

    /// Final subset size as a percentage of the training set.
    pub fn final_subset_pct(&self) -> f32 {
        match (self.epochs.last(), self.train_size) {
            (Some(e), n) if n > 0 => 100.0 * e.subset_size as f32 / n as f32,
            _ => 0.0,
        }
    }

    /// Test-accuracy series over epochs (the Figure 5 curve).
    pub fn accuracy_curve(&self) -> Vec<f32> {
        self.epochs.iter().map(|e| e.test_acc).collect()
    }

    /// First epoch reaching `target` test accuracy, if any (convergence
    /// speed, §4.3).
    pub fn epochs_to_accuracy(&self, target: f32) -> Option<usize> {
        self.epochs
            .iter()
            .find(|e| e.test_acc >= target)
            .map(|e| e.epoch)
    }

    /// Total simulated selection + I/O seconds across the run.
    pub fn device_secs(&self) -> f64 {
        self.epochs.iter().map(|e| e.select_secs + e.io_secs).sum()
    }

    /// JSONL rendering: one `{"type":"epoch",...}` object per epoch
    /// followed by one `{"type":"run",...}` summary line. Numbers use
    /// shortest-round-trip formatting, so the simulated timings re-parse
    /// exactly.
    pub fn to_jsonl(&self) -> String {
        use nessa_telemetry::json::JsonObject;
        let mut out = String::new();
        for e in &self.epochs {
            let mut obj = JsonObject::new()
                .str_field("type", "epoch")
                .u64_field("epoch", e.epoch as u64)
                .f64_field("lr", e.lr as f64)
                .u64_field("subset_size", e.subset_size as u64)
                .u64_field("pool_size", e.pool_size as u64)
                .f64_field("train_loss", e.train_loss as f64)
                .f64_field("test_acc", e.test_acc as f64)
                .f64_field("select_s", e.select_secs)
                .f64_field("io_s", e.io_secs)
                .f64_field("total_s", e.total_secs());
            // Overlap fields are appended only when the epoch ran under
            // the overlapped scheduler, so sequential output stays
            // byte-identical across releases.
            if let Some(o) = &e.overlap {
                obj = obj
                    .f64_field("sync_s", o.sync_secs)
                    .f64_field("select_side_s", o.select_side_secs)
                    .f64_field("train_s", o.train_secs)
                    .f64_field("handoff_s", o.handoff_secs)
                    .u64_field("staleness", o.staleness as u64);
            }
            out.push_str(&obj.finish());
            out.push('\n');
        }
        out.push_str(
            &JsonObject::new()
                .str_field("type", "run")
                .str_field("name", &self.name)
                .u64_field("train_size", self.train_size as u64)
                .u64_field("epochs", self.epochs.len() as u64)
                .f64_field("final_acc", self.final_accuracy() as f64)
                .f64_field("best_acc", self.best_accuracy() as f64)
                .f64_field("mean_subset_pct", self.mean_subset_pct() as f64)
                .f64_field("device_secs", self.device_secs())
                .f64_field("device_energy_j", self.device_energy_j)
                .u64_field("ssd_to_fpga_bytes", self.traffic.ssd_to_fpga)
                .u64_field("fpga_to_host_bytes", self.traffic.fpga_to_host)
                .u64_field("host_to_fpga_bytes", self.traffic.host_to_fpga)
                .finish(),
        );
        out.push('\n');
        out
    }

    /// CSV rendering (`epoch,lr,subset,pool,loss,acc,select_s,io_s`).
    pub fn to_csv(&self) -> String {
        let mut s =
            String::from("epoch,lr,subset_size,pool_size,train_loss,test_acc,select_s,io_s\n");
        for e in &self.epochs {
            s.push_str(&format!(
                "{},{},{},{},{:.6},{:.4},{:.6},{:.6}\n",
                e.epoch,
                e.lr,
                e.subset_size,
                e.pool_size,
                e.train_loss,
                e.test_acc,
                e.select_secs,
                e.io_secs
            ));
        }
        s
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} epochs, final acc {:.2}%, best {:.2}%, mean subset {:.1}%",
            self.name,
            self.epochs.len(),
            100.0 * self.final_accuracy(),
            100.0 * self.best_accuracy(),
            self.mean_subset_pct()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            name: "test".into(),
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    lr: 0.1,
                    subset_size: 30,
                    pool_size: 100,
                    train_loss: 2.0,
                    test_acc: 0.4,
                    select_secs: 0.1,
                    io_secs: 0.2,
                    overlap: None,
                },
                EpochRecord {
                    epoch: 1,
                    lr: 0.1,
                    subset_size: 20,
                    pool_size: 90,
                    train_loss: 1.0,
                    test_acc: 0.7,
                    select_secs: 0.1,
                    io_secs: 0.2,
                    overlap: None,
                },
            ],
            traffic: TrafficStats::default(),
            device_energy_j: 1.5,
            train_size: 100,
        }
    }

    #[test]
    fn accuracy_accessors() {
        let r = sample_report();
        assert_eq!(r.final_accuracy(), 0.7);
        assert_eq!(r.best_accuracy(), 0.7);
        assert_eq!(r.accuracy_curve(), vec![0.4, 0.7]);
        assert_eq!(r.epochs_to_accuracy(0.5), Some(1));
        assert_eq!(r.epochs_to_accuracy(0.9), None);
    }

    #[test]
    fn subset_percentages() {
        let r = sample_report();
        assert!((r.mean_subset_pct() - 25.0).abs() < 1e-4);
        assert!((r.final_subset_pct() - 20.0).abs() < 1e-4);
    }

    #[test]
    fn device_seconds_sum() {
        let r = sample_report();
        assert!((r.device_secs() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_report().to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("epoch,"));
    }

    #[test]
    fn epoch_total_secs_sums_phases() {
        let r = sample_report();
        assert!((r.epochs[0].total_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn jsonl_has_epoch_and_run_lines() {
        use nessa_telemetry::{extract_num_field, extract_str_field};
        let jsonl = sample_report().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(
            extract_str_field(lines[0], "type").as_deref(),
            Some("epoch")
        );
        // Shortest-round-trip formatting preserves the exact f64 sum.
        assert_eq!(extract_num_field(lines[0], "total_s"), Some(0.1 + 0.2));
        let run = lines[2];
        assert_eq!(extract_str_field(run, "type").as_deref(), Some("run"));
        assert_eq!(extract_str_field(run, "name").as_deref(), Some("test"));
        let device_secs = extract_num_field(run, "device_secs").unwrap();
        assert!((device_secs - 0.6).abs() < 1e-12, "{device_secs}");
    }

    #[test]
    fn overlapped_epoch_total_is_max_plus_handoff() {
        let mut r = sample_report();
        r.epochs[1].overlap = Some(OverlapRecord {
            sync_secs: 0.05,
            select_side_secs: 0.3,
            train_secs: 0.7,
            handoff_secs: 0.02,
            staleness: 1,
        });
        // Training dominates: total = 0.05 + max(0.3, 0.7) + 0.02.
        assert!((r.epochs[1].total_secs() - 0.77).abs() < 1e-12);
        // Selection dominates once it outruns training.
        r.epochs[1].overlap.as_mut().unwrap().select_side_secs = 0.9;
        assert!((r.epochs[1].total_secs() - 0.97).abs() < 1e-12);
        // The sequential epoch is untouched.
        assert!((r.epochs[0].total_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn jsonl_overlap_fields_only_when_present() {
        use nessa_telemetry::extract_num_field;
        let plain = sample_report().to_jsonl();
        assert!(
            !plain.contains("select_side_s"),
            "sequential lines stay as-is"
        );
        let mut r = sample_report();
        r.epochs[0].overlap = Some(OverlapRecord {
            sync_secs: 0.0,
            select_side_secs: 0.25,
            train_secs: 0.5,
            handoff_secs: 0.01,
            staleness: 1,
        });
        let jsonl = r.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert_eq!(extract_num_field(first, "select_side_s"), Some(0.25));
        assert_eq!(extract_num_field(first, "train_s"), Some(0.5));
        assert_eq!(extract_num_field(first, "handoff_s"), Some(0.01));
        assert_eq!(extract_num_field(first, "staleness"), Some(1.0));
        assert_eq!(extract_num_field(first, "total_s"), Some(0.51));
        let second = jsonl.lines().nth(1).unwrap();
        assert!(!second.contains("select_side_s"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport::default();
        assert_eq!(r.final_accuracy(), 0.0);
        assert_eq!(r.mean_subset_pct(), 0.0);
        assert_eq!(r.final_subset_pct(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(format!("{}", sample_report()).contains("test"));
    }
}
