//! Dynamic subset sizing (paper contribution 4).
//!
//! "Dynamically reduce the subset size based on loss reduction rate during
//! the training process to ensure that we train on the least required data
//! samples." The controller watches the epoch-mean training loss; when the
//! relative reduction falls below a threshold — the model is coasting —
//! the subset fraction shrinks multiplicatively, never below a floor, and
//! never shrinks twice in a row without an intervening observation.

/// Subset-fraction controller driven by the loss-reduction rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetSizer {
    fraction: f32,
    threshold: f32,
    factor: f32,
    min_fraction: f32,
    last_loss: Option<f32>,
    shrink_count: usize,
}

impl SubsetSizer {
    /// Creates a controller.
    ///
    /// * `initial` — starting subset fraction,
    /// * `threshold` — relative loss reduction below which to shrink,
    /// * `factor` — multiplicative shrink in `(0, 1)`,
    /// * `min_fraction` — floor for the fraction.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    pub fn new(initial: f32, threshold: f32, factor: f32, min_fraction: f32) -> Self {
        assert!(
            initial > 0.0 && initial <= 1.0,
            "initial fraction out of range"
        );
        assert!(threshold >= 0.0, "threshold must be non-negative");
        assert!(factor > 0.0 && factor < 1.0, "factor must be in (0, 1)");
        assert!(
            min_fraction > 0.0 && min_fraction <= initial,
            "min_fraction must be in (0, initial]"
        );
        Self {
            fraction: initial,
            threshold,
            factor,
            min_fraction,
            last_loss: None,
            shrink_count: 0,
        }
    }

    /// The current subset fraction.
    pub fn fraction(&self) -> f32 {
        self.fraction
    }

    /// How many times the subset has shrunk.
    pub fn shrink_count(&self) -> usize {
        self.shrink_count
    }

    /// Feeds this epoch's mean training loss; returns the (possibly
    /// reduced) fraction to use next epoch.
    ///
    /// A shrink happens when the loss is still improving slowly — i.e. the
    /// relative reduction is non-negative but below the threshold. A loss
    /// *increase* (e.g. right after an LR change or a pool pruning) resets
    /// the reference without shrinking.
    pub fn observe(&mut self, mean_loss: f32) -> f32 {
        const CONVERGED: f32 = 1e-6;
        if let Some(prev) = self.last_loss {
            let plateau = if prev <= CONVERGED {
                // Loss already ~zero: the definitive plateau.
                mean_loss <= CONVERGED
            } else {
                let reduction = (prev - mean_loss) / prev;
                (0.0..self.threshold).contains(&reduction)
            };
            if plateau && self.fraction > self.min_fraction {
                self.fraction = (self.fraction * self.factor).max(self.min_fraction);
                self.shrink_count += 1;
            }
        }
        self.last_loss = Some(mean_loss);
        self.fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_progress_keeps_fraction() {
        let mut s = SubsetSizer::new(0.3, 0.01, 0.9, 0.05);
        // Loss halves every epoch: no shrink.
        for loss in [2.0, 1.0, 0.5, 0.25] {
            s.observe(loss);
        }
        assert_eq!(s.fraction(), 0.3);
        assert_eq!(s.shrink_count(), 0);
    }

    #[test]
    fn plateau_shrinks_fraction() {
        let mut s = SubsetSizer::new(0.3, 0.01, 0.9, 0.05);
        s.observe(1.0);
        s.observe(0.999); // 0.1 % reduction < 1 % threshold
        assert!((s.fraction() - 0.27).abs() < 1e-6);
        assert_eq!(s.shrink_count(), 1);
    }

    #[test]
    fn loss_increase_does_not_shrink() {
        let mut s = SubsetSizer::new(0.3, 0.01, 0.9, 0.05);
        s.observe(1.0);
        s.observe(1.5);
        assert_eq!(s.fraction(), 0.3);
    }

    #[test]
    fn respects_floor() {
        let mut s = SubsetSizer::new(0.1, 0.5, 0.5, 0.08);
        s.observe(1.0);
        for _ in 0..10 {
            s.observe(1.0); // permanent plateau
        }
        assert!((s.fraction() - 0.08).abs() < 1e-6);
    }

    #[test]
    fn converged_loss_counts_as_plateau() {
        let mut s = SubsetSizer::new(0.4, 0.01, 0.5, 0.05);
        s.observe(0.0);
        s.observe(0.0);
        assert_eq!(s.shrink_count(), 1);
        assert!((s.fraction() - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn rejects_bad_factor() {
        let _ = SubsetSizer::new(0.3, 0.01, 1.0, 0.05);
    }
}
