//! Live pipeline health: heartbeat/stall detection and progress gauges.
//!
//! The telemetry stream already records *what happened*; this module
//! watches it *while it happens*. [`HealthMonitor`] rides on the span
//! heartbeat ([`Telemetry::idle_secs`] — seconds since the last span
//! closed) to flag a wedged pipeline, and publishes per-epoch throughput
//! and an ETA through the ordinary metrics registry, so every sink
//! (timeline, JSONL, in-memory snapshot) sees them with no extra plumbing:
//!
//! * `health.epoch_secs` — wall seconds of the most recent epoch,
//! * `health.samples_per_sec` — training throughput of that epoch,
//! * `health.epochs_done` — completed epochs,
//! * `health.eta_secs` — mean epoch time × remaining epochs,
//! * `health.stalls` — times the heartbeat exceeded the stall budget.
//!
//! The monitor also owns the fault-tolerance counters the degradation
//! ladder reports into (all registered at construction, so a fault-free
//! run publishes them as explicit zeros):
//!
//! * `fault.injected` — faults the armed `FaultPlan`s fired,
//! * `retry.attempts` — device retries after a transient error,
//! * `fallback.host` — selection rounds degraded to the host path,
//! * `fallback.random` — selection rounds degraded to random picks,
//! * `drive.evicted` — drives evicted after a dropout,
//! * `data.quarantined` — corrupt records dropped from the pool,
//!
//! plus a `health.drives_alive` gauge.
//!
//! On a disabled telemetry handle everything degrades to a no-op (the
//! gauges feed unregistered metrics and [`HealthMonitor::check_stall`]
//! reports a healthy pipeline).

use nessa_telemetry::clock::{self, Instant};
use nessa_telemetry::{Counter, Gauge, Telemetry};

/// What the stall check concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthStatus {
    /// A span closed within the stall budget (or telemetry is disabled,
    /// in which case there is no heartbeat to judge).
    Healthy,
    /// No span has closed for longer than the budget.
    Stalled {
        /// Seconds since the last span closed.
        idle_secs: f64,
        /// The configured budget that was exceeded.
        budget_secs: f64,
    },
}

impl HealthStatus {
    /// Whether the pipeline is past its stall budget.
    pub fn is_stalled(&self) -> bool {
        matches!(self, HealthStatus::Stalled { .. })
    }
}

/// Epoch-granular progress and heartbeat watcher for one run.
pub struct HealthMonitor {
    telemetry: Telemetry,
    stall_budget_secs: f64,
    total_epochs: usize,
    epochs_done: usize,
    started: Instant,
    last_epoch_end: Instant,
    epoch_secs: Gauge,
    samples_per_sec: Gauge,
    epochs_done_gauge: Gauge,
    eta_secs: Gauge,
    stalls: Counter,
    drives_alive: Gauge,
    faults_injected: Counter,
    retry_attempts: Counter,
    fallback_host: Counter,
    fallback_random: Counter,
    drives_evicted: Counter,
    quarantined: Counter,
}

impl HealthMonitor {
    /// Creates a monitor for a run of `total_epochs` epochs with the given
    /// stall budget (seconds without a span close before the pipeline is
    /// considered wedged).
    pub fn new(telemetry: &Telemetry, total_epochs: usize, stall_budget_secs: f64) -> Self {
        let now = clock::now();
        HealthMonitor {
            telemetry: telemetry.clone(),
            stall_budget_secs,
            total_epochs,
            epochs_done: 0,
            started: now,
            last_epoch_end: now,
            epoch_secs: telemetry.gauge("health.epoch_secs"),
            samples_per_sec: telemetry.gauge("health.samples_per_sec"),
            epochs_done_gauge: telemetry.gauge("health.epochs_done"),
            eta_secs: telemetry.gauge("health.eta_secs"),
            stalls: telemetry.counter("health.stalls"),
            drives_alive: telemetry.gauge("health.drives_alive"),
            faults_injected: telemetry.counter("fault.injected"),
            retry_attempts: telemetry.counter("retry.attempts"),
            fallback_host: telemetry.counter("fallback.host"),
            fallback_random: telemetry.counter("fallback.random"),
            drives_evicted: telemetry.counter("drive.evicted"),
            quarantined: telemetry.counter("data.quarantined"),
        }
    }

    /// Records one device retry after a transient fault.
    pub fn note_retry(&self) {
        self.retry_attempts.inc();
    }

    /// Records one selection round degraded to the host path.
    pub fn note_fallback_host(&self) {
        self.fallback_host.inc();
    }

    /// Records one selection round degraded to random picks.
    pub fn note_fallback_random(&self) {
        self.fallback_random.inc();
    }

    /// Records a drive eviction and refreshes the live-drive gauge.
    pub fn note_drive_evicted(&self, drives_alive: usize) {
        self.drives_evicted.inc();
        self.drives_alive.set(drives_alive as f64);
    }

    /// Publishes the current live-drive count.
    pub fn set_drives_alive(&self, drives: usize) {
        self.drives_alive.set(drives as f64);
    }

    /// Records `records` corrupt records quarantined out of the pool.
    pub fn note_quarantined(&self, records: u64) {
        if records > 0 {
            self.quarantined.add(records);
        }
    }

    /// Records faults fired by the armed plans since the last report.
    pub fn note_faults_injected(&self, faults: u64) {
        if faults > 0 {
            self.faults_injected.add(faults);
        }
    }

    /// Records one completed epoch that trained on `samples` samples and
    /// refreshes every gauge. Returns the epoch's wall seconds.
    pub fn epoch_completed(&mut self, samples: usize) -> f64 {
        let now = clock::now();
        let epoch_secs = now.duration_since(self.last_epoch_end).as_secs_f64();
        self.last_epoch_end = now;
        self.epochs_done += 1;
        self.epoch_secs.set(epoch_secs);
        if epoch_secs > 0.0 {
            self.samples_per_sec.set(samples as f64 / epoch_secs);
        }
        self.epochs_done_gauge.set(self.epochs_done as f64);
        self.eta_secs.set(self.eta_secs_now());
        epoch_secs
    }

    /// Number of epochs recorded so far.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Remaining-time estimate: mean epoch wall time so far times the
    /// epochs still to run. `None` before the first epoch completes.
    pub fn eta_secs(&self) -> Option<f64> {
        (self.epochs_done > 0).then(|| self.eta_secs_now())
    }

    fn eta_secs_now(&self) -> f64 {
        if self.epochs_done == 0 {
            return 0.0;
        }
        let mean = self.started.elapsed().as_secs_f64() / self.epochs_done as f64;
        mean * self.total_epochs.saturating_sub(self.epochs_done) as f64
    }

    /// Judges the heartbeat: has any span closed within the stall budget?
    /// Increments the `health.stalls` counter on each stalled verdict.
    /// Meant to be polled from outside the hot loop (another thread, or
    /// between epochs for single-threaded runs).
    pub fn check_stall(&self) -> HealthStatus {
        match self.telemetry.idle_secs() {
            Some(idle) if idle > self.stall_budget_secs => {
                self.stalls.inc();
                HealthStatus::Stalled {
                    idle_secs: idle,
                    budget_secs: self.stall_budget_secs,
                }
            }
            _ => HealthStatus::Healthy,
        }
    }

    /// The configured stall budget in seconds.
    pub fn stall_budget_secs(&self) -> f64 {
        self.stall_budget_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_telemetry::TelemetrySettings;

    #[test]
    fn gauges_track_epoch_progress() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        let mut m = HealthMonitor::new(&t, 4, 30.0);
        assert_eq!(m.epochs_done(), 0);
        assert!(m.eta_secs().is_none());
        let secs = m.epoch_completed(300);
        assert!(secs >= 0.0);
        m.epoch_completed(300);
        assert_eq!(m.epochs_done(), 2);
        assert!(m.eta_secs().unwrap() >= 0.0);
        let snap = t.metrics_snapshot();
        let gauges: std::collections::BTreeMap<_, _> = snap.gauges.into_iter().collect();
        assert_eq!(gauges["health.epochs_done"], 2.0);
        assert!(gauges.contains_key("health.epoch_secs"));
        assert!(gauges.contains_key("health.samples_per_sec"));
        assert!(gauges.contains_key("health.eta_secs"));
    }

    #[test]
    fn stall_detection_follows_heartbeat() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        let m = HealthMonitor::new(&t, 1, 0.0);
        // Zero budget: any idle time at all counts as a stall, and no span
        // has closed yet.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let status = m.check_stall();
        assert!(status.is_stalled());
        if let HealthStatus::Stalled {
            idle_secs,
            budget_secs,
        } = status
        {
            assert!(idle_secs > 0.0);
            assert_eq!(budget_secs, 0.0);
        }
        let snap = t.metrics_snapshot();
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters["health.stalls"], 1);
        // A generous budget with a fresh heartbeat reports healthy.
        let m2 = HealthMonitor::new(&t, 1, 3600.0);
        t.span("epoch").finish();
        assert_eq!(m2.check_stall(), HealthStatus::Healthy);
    }

    #[test]
    fn fault_counters_register_at_zero_and_accumulate() {
        let t = Telemetry::new(&TelemetrySettings::memory());
        let m = HealthMonitor::new(&t, 2, 30.0);
        let zeros: std::collections::BTreeMap<_, _> =
            t.metrics_snapshot().counters.into_iter().collect();
        for name in [
            "fault.injected",
            "retry.attempts",
            "fallback.host",
            "fallback.random",
            "drive.evicted",
            "data.quarantined",
        ] {
            assert_eq!(zeros[name], 0, "{name} must register as explicit zero");
        }
        m.note_retry();
        m.note_retry();
        m.note_fallback_host();
        m.note_fallback_random();
        m.note_drive_evicted(3);
        m.note_quarantined(5);
        m.note_quarantined(0);
        m.note_faults_injected(7);
        let snap = t.metrics_snapshot();
        let counters: std::collections::BTreeMap<_, _> = snap.counters.into_iter().collect();
        assert_eq!(counters["retry.attempts"], 2);
        assert_eq!(counters["fallback.host"], 1);
        assert_eq!(counters["fallback.random"], 1);
        assert_eq!(counters["drive.evicted"], 1);
        assert_eq!(counters["data.quarantined"], 5);
        assert_eq!(counters["fault.injected"], 7);
        let gauges: std::collections::BTreeMap<_, _> = snap.gauges.into_iter().collect();
        assert_eq!(gauges["health.drives_alive"], 3.0);
    }

    #[test]
    fn disabled_telemetry_is_always_healthy() {
        let t = Telemetry::disabled();
        let mut m = HealthMonitor::new(&t, 2, 0.0);
        m.epoch_completed(10);
        assert_eq!(m.check_stall(), HealthStatus::Healthy);
        assert_eq!(m.epochs_done(), 1);
    }
}
