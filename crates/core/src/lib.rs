//! NeSSA: near-storage data selection for accelerated ML training.
//!
//! This crate assembles the substrates (`nessa-nn`, `nessa-select`,
//! `nessa-quant`, `nessa-smartssd`, `nessa-data`) into the training
//! paradigm of paper §3:
//!
//! 1. stream the candidate pool from flash to the on-board FPGA (P2P),
//! 2. compute gradient proxies with the **quantized selector model** and
//!    select a facility-location coreset (per class, chunk-partitioned to
//!    fit the FPGA's 4.32 MB on-chip memory),
//! 3. ship only the subset to the GPU and train on it (weighted loss),
//! 4. quantize the updated weights, feed them back to the FPGA, and update
//!    the candidate pool (subset biasing) and subset size (dynamic sizing),
//! 5. repeat for all epochs.
//!
//! The same runner also executes the paper's comparison policies — full-
//! data training, CPU CRAIG, CPU K-Centers, and random selection — so the
//! accuracy tables and convergence figures come from one code path.
//!
//! Entry points:
//!
//! * [`pipeline::NessaPipeline`] — the near-storage training loop,
//! * [`policy::run_policy`] — any [`policy::Policy`] on any dataset,
//! * [`timing`] — paper-scale epoch-time composition (Figure 4, §4.3–4.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biasing;
pub mod config;
pub mod error;
pub mod health;
pub mod pipeline;
pub mod policy;
pub mod proxy;
pub mod report;
pub mod retry;
pub mod sizing;
pub mod timing;
pub mod trainer;

pub use config::NessaConfig;
pub use error::PipelineError;
pub use health::{HealthMonitor, HealthStatus};
pub use pipeline::NessaPipeline;
pub use policy::{run_policy, Policy};
pub use report::{EpochRecord, OverlapRecord, RunReport};
pub use retry::{degrade, Degraded, RetryPolicy, Rung};
