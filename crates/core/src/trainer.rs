//! Shared training-loop machinery: one weighted epoch, evaluation.

use nessa_data::loader::BatchPlan;
use nessa_data::Dataset;
use nessa_nn::loss::weighted_softmax_cross_entropy;
use nessa_nn::metrics::accuracy;
use nessa_nn::models::Network;
use nessa_nn::optim::Sgd;
use nessa_telemetry::{Counter, Histogram, Telemetry};
use nessa_tensor::rng::Rng64;

/// Telemetry handles updated by the training loop, batch by batch.
#[derive(Debug, Clone, Default)]
pub struct TrainMetrics {
    /// Optimizer steps taken (one per mini-batch).
    pub batches: Counter,
    /// Samples consumed (weighted-subset samples, counted with
    /// multiplicity across epochs).
    pub samples: Counter,
    /// Distribution of per-batch weighted mean losses.
    pub batch_loss: Histogram,
}

impl TrainMetrics {
    /// Handles registered under the `train.*` names in `telemetry`'s
    /// metrics registry (detached no-op handles when telemetry is
    /// disabled).
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        Self {
            batches: telemetry.counter("train.batches"),
            samples: telemetry.counter("train.samples"),
            batch_loss: telemetry.histogram("train.batch_loss"),
        }
    }
}

/// Result of one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// Weighted mean training loss over the epoch.
    pub mean_loss: f32,
    /// Per-sample losses, aligned with the `indices` passed in.
    pub per_sample_losses: Vec<f32>,
}

/// Trains `net` for one epoch on `dataset[indices]` with per-sample
/// `weights` (CRAIG medoid weights; pass all-ones for unweighted).
///
/// Batches are shuffled with `rng`. Gradients are zeroed before each batch;
/// `opt` is stepped once per batch at learning rate `lr`.
///
/// # Panics
///
/// Panics if `indices` and `weights` lengths differ, `indices` is empty,
/// or `batch_size == 0`.
#[allow(clippy::too_many_arguments)] // one call site per policy; a struct would obscure the paper's step list
pub fn train_epoch(
    net: &mut Network,
    opt: &mut Sgd,
    dataset: &Dataset,
    indices: &[usize],
    weights: &[f32],
    batch_size: usize,
    lr: f32,
    rng: &mut Rng64,
) -> EpochOutcome {
    train_epoch_metered(
        net, opt, dataset, indices, weights, batch_size, lr, rng, None,
    )
}

/// [`train_epoch`] with optional per-batch instrumentation: each
/// mini-batch counts toward `batches`/`samples` and observes its weighted
/// mean loss in the `batch_loss` histogram.
#[allow(clippy::too_many_arguments)] // see train_epoch
pub fn train_epoch_metered(
    net: &mut Network,
    opt: &mut Sgd,
    dataset: &Dataset,
    indices: &[usize],
    weights: &[f32],
    batch_size: usize,
    lr: f32,
    rng: &mut Rng64,
    metrics: Option<&TrainMetrics>,
) -> EpochOutcome {
    assert_eq!(indices.len(), weights.len(), "index/weight length mismatch");
    assert!(!indices.is_empty(), "cannot train on an empty subset");
    assert!(batch_size > 0, "batch size must be positive");
    let plan = BatchPlan::new(indices.len(), batch_size);
    let mut per_sample = vec![0.0f32; indices.len()];
    let mut loss_sum = 0.0f64;
    let mut weight_sum = 0.0f64;
    for positions in plan.epoch(rng) {
        let batch_idx: Vec<usize> = positions.iter().map(|&p| indices[p]).collect();
        let batch_w: Vec<f32> = positions.iter().map(|&p| weights[p]).collect();
        let (x, y) = dataset.batch(&batch_idx);
        net.zero_grad();
        let logits = net.forward(&x, true);
        let out = weighted_softmax_cross_entropy(&logits, &y, &batch_w);
        net.backward(&out.grad_logits);
        opt.step(net, lr);
        for (&p, &l) in positions.iter().zip(out.per_sample.iter()) {
            per_sample[p] = l;
        }
        let bw: f64 = batch_w.iter().map(|&w| w as f64).sum();
        loss_sum += out.mean_loss as f64 * bw;
        weight_sum += bw;
        if let Some(m) = metrics {
            m.batches.inc();
            m.samples.add(batch_idx.len() as u64);
            m.batch_loss.observe(out.mean_loss as f64);
        }
    }
    EpochOutcome {
        mean_loss: (loss_sum / weight_sum.max(1e-12)) as f32,
        per_sample_losses: per_sample,
    }
}

/// Test-set accuracy (eval-mode forward, batched).
///
/// # Panics
///
/// Panics if `batch_size == 0`.
pub fn evaluate(net: &mut Network, dataset: &Dataset, batch_size: usize) -> f32 {
    assert!(batch_size > 0, "batch size must be positive");
    let mut preds = Vec::with_capacity(dataset.len());
    let all: Vec<usize> = (0..dataset.len()).collect();
    for chunk in all.chunks(batch_size) {
        let (x, _) = dataset.batch(chunk);
        preds.extend(net.predict(&x));
    }
    accuracy(&preds, dataset.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_data::SynthConfig;
    use nessa_nn::models::mlp;
    use nessa_nn::optim::SgdConfig;

    fn easy_dataset() -> (Dataset, Dataset) {
        SynthConfig {
            train: 200,
            test: 80,
            dim: 8,
            classes: 4,
            cluster_std: 0.5,
            class_sep: 4.0,
            hard_fraction: 0.0,
            ..SynthConfig::default()
        }
        .generate()
    }

    #[test]
    fn training_reduces_loss_and_lifts_accuracy() {
        let (train, test) = easy_dataset();
        let mut rng = Rng64::new(0);
        let mut net = mlp(&[8, 24, 4], &mut rng);
        let mut opt = Sgd::new(SgdConfig::default());
        let all: Vec<usize> = (0..train.len()).collect();
        let ones = vec![1.0f32; all.len()];
        let acc0 = evaluate(&mut net, &test, 32);
        let first = train_epoch(&mut net, &mut opt, &train, &all, &ones, 32, 0.05, &mut rng);
        let mut last = first.clone();
        for _ in 0..15 {
            last = train_epoch(&mut net, &mut opt, &train, &all, &ones, 32, 0.05, &mut rng);
        }
        let acc = evaluate(&mut net, &test, 32);
        assert!(
            last.mean_loss < first.mean_loss,
            "{} !< {}",
            last.mean_loss,
            first.mean_loss
        );
        assert!(acc > acc0.max(0.8), "accuracy {acc} (baseline {acc0})");
    }

    #[test]
    fn per_sample_losses_align_with_indices() {
        let (train, _) = easy_dataset();
        let mut rng = Rng64::new(1);
        let mut net = mlp(&[8, 8, 4], &mut rng);
        let mut opt = Sgd::new(SgdConfig::default());
        let idx = vec![3usize, 17, 42];
        let w = vec![1.0f32; 3];
        let out = train_epoch(&mut net, &mut opt, &train, &idx, &w, 2, 0.01, &mut rng);
        assert_eq!(out.per_sample_losses.len(), 3);
        assert!(out.per_sample_losses.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn subset_training_only_touches_subset() {
        // Training on class-0 samples only should leave class-0 accuracy
        // far ahead of the others.
        let (train, test) = easy_dataset();
        let mut rng = Rng64::new(2);
        let mut net = mlp(&[8, 16, 4], &mut rng);
        let mut opt = Sgd::new(SgdConfig::default());
        let class0: Vec<usize> = train.indices_by_class()[0].clone();
        let w = vec![1.0f32; class0.len()];
        for _ in 0..10 {
            train_epoch(&mut net, &mut opt, &train, &class0, &w, 16, 0.05, &mut rng);
        }
        let preds: Vec<usize> = {
            let all: Vec<usize> = (0..test.len()).collect();
            let (x, _) = test.batch(&all);
            net.predict(&x)
        };
        // Every prediction collapses to class 0.
        assert!(preds.iter().all(|&p| p == 0));
    }

    #[test]
    fn metered_epoch_counts_batches_and_samples() {
        let (train, _) = easy_dataset();
        let mut rng = Rng64::new(4);
        let mut net = mlp(&[8, 8, 4], &mut rng);
        let mut opt = Sgd::new(SgdConfig::default());
        let idx: Vec<usize> = (0..50).collect();
        let w = vec![1.0f32; 50];
        let metrics = TrainMetrics::default();
        let out = train_epoch_metered(
            &mut net,
            &mut opt,
            &train,
            &idx,
            &w,
            16,
            0.05,
            &mut rng,
            Some(&metrics),
        );
        // 50 samples at batch 16 → 4 optimizer steps (last batch partial).
        assert_eq!(metrics.batches.get(), 4);
        assert_eq!(metrics.samples.get(), 50);
        assert_eq!(metrics.batch_loss.count(), 4);
        assert!(out.mean_loss > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty subset")]
    fn rejects_empty_subset() {
        let (train, _) = easy_dataset();
        let mut rng = Rng64::new(3);
        let mut net = mlp(&[8, 8, 4], &mut rng);
        let mut opt = Sgd::new(SgdConfig::default());
        let _ = train_epoch(&mut net, &mut opt, &train, &[], &[], 4, 0.1, &mut rng);
    }
}
