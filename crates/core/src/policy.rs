//! Unified policy runner: NeSSA and every baseline the paper compares
//! against, through one code path so accuracy comparisons are fair.

use crate::config::NessaConfig;
use crate::error::PipelineError;
use crate::pipeline::NessaPipeline;
use crate::proxy::{embeddings, gradient_proxies};
use crate::report::{EpochRecord, RunReport};
use crate::trainer::{evaluate, train_epoch};
use nessa_data::Dataset;
use nessa_nn::models::Network;
use nessa_nn::optim::{MultiStepLr, Sgd, SgdConfig};
use nessa_select::craig::{select_per_class_factored, CraigOptions};
use nessa_select::facility::GreedyVariant;
use nessa_select::{kcenters, random, Selection};
use nessa_tensor::rng::Rng64;

/// A training policy from the paper's evaluation.
///
/// `Nessa` carries the full [`NessaConfig`] inline; a `Policy` is built
/// once per run and never stored in bulk, so the size skew between
/// variants costs nothing in practice and boxing would only add noise
/// at every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// "Goal": train on the full dataset.
    Goal,
    /// NeSSA with the given configuration (near-storage pipeline).
    Nessa(NessaConfig),
    /// CPU CRAIG (Mirzasoleiman et al. '20): per-class facility location on
    /// f32 gradient proxies, re-selected every epoch; no feedback
    /// quantization, no biasing, no partitioning.
    Craig {
        /// Subset fraction.
        fraction: f32,
    },
    /// CPU K-Centers (Sener & Savarese '17): farthest-first traversal on
    /// gradient proxies, unit weights.
    KCenters {
        /// Subset fraction.
        fraction: f32,
    },
    /// Uniform random subset, re-drawn every epoch.
    Random {
        /// Subset fraction.
        fraction: f32,
    },
}

impl Policy {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Goal => "goal",
            Policy::Nessa(_) => "nessa",
            Policy::Craig { .. } => "craig",
            Policy::KCenters { .. } => "kcenters",
            Policy::Random { .. } => "random",
        }
    }
}

/// Runs `policy` for `epochs` epochs with the paper's optimizer settings.
///
/// `make_model` builds a fresh network (called once for the trainee and,
/// for NeSSA, once more for the selector); it receives a seeded RNG so
/// runs are reproducible.
///
/// # Errors
///
/// Propagates [`PipelineError`] when selection rejects its inputs or a
/// kernel profile does not fit the simulated FPGA.
pub fn run_policy(
    policy: &Policy,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    batch_size: usize,
    seed: u64,
    make_model: &dyn Fn(&mut Rng64) -> Network,
) -> Result<RunReport, PipelineError> {
    match policy {
        Policy::Nessa(cfg) => {
            let mut cfg = cfg.clone();
            cfg.epochs = epochs;
            cfg.batch_size = batch_size;
            cfg.seed = seed;
            let mut init_rng = Rng64::new(seed);
            let target = make_model(&mut init_rng);
            let selector = make_model(&mut init_rng);
            let mut pipeline =
                NessaPipeline::new(cfg, target, selector, train.clone(), test.clone());
            pipeline.run()
        }
        _ => run_cpu_policy(policy, train, test, epochs, batch_size, seed, make_model),
    }
}

fn run_cpu_policy(
    policy: &Policy,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    batch_size: usize,
    seed: u64,
    make_model: &dyn Fn(&mut Rng64) -> Network,
) -> Result<RunReport, PipelineError> {
    let n = train.len();
    let mut init_rng = Rng64::new(seed);
    let mut net = make_model(&mut init_rng);
    let mut rng = Rng64::new(seed ^ 0x9e3779b97f4a7c15);
    let mut opt = Sgd::new(SgdConfig::default());
    let schedule = MultiStepLr::paper_schedule(epochs);
    let all: Vec<usize> = (0..n).collect();
    let mut report = RunReport {
        name: policy.label().into(),
        train_size: n,
        ..RunReport::default()
    };
    for epoch in 0..epochs {
        let lr = schedule.lr_at(epoch);
        let selection = match policy {
            Policy::Goal => Selection::new(all.clone(), vec![1.0; n]),
            Policy::Craig { fraction } => {
                let proxies = gradient_proxies(&mut net, train, &all, batch_size);
                select_per_class_factored(
                    &proxies.residuals,
                    &proxies.features,
                    train.labels(),
                    train.classes(),
                    *fraction,
                    &CraigOptions {
                        variant: GreedyVariant::Lazy,
                        partition_chunk: None,
                        threads: 1,
                        metrics: None,
                    },
                    &mut rng,
                )?
            }
            Policy::KCenters { fraction } => {
                // Sener & Savarese select in the penultimate embedding
                // space, not the gradient space.
                let embeds = embeddings(&mut net, train, &all, batch_size);
                let mut sel = kcenters::select_per_class(
                    &embeds,
                    train.labels(),
                    train.classes(),
                    *fraction,
                    &mut rng,
                );
                // Sener & Savarese train the subset unweighted.
                sel.weights = vec![1.0; sel.len()];
                sel
            }
            Policy::Random { fraction } => {
                random::select_per_class(train.labels(), train.classes(), *fraction, &mut rng)
            }
            Policy::Nessa(_) => unreachable!("handled by run_policy"),
        };
        let outcome = train_epoch(
            &mut net,
            &mut opt,
            train,
            &selection.indices,
            &selection.weights,
            batch_size,
            lr,
            &mut rng,
        );
        let test_acc = evaluate(&mut net, test, batch_size);
        report.epochs.push(EpochRecord {
            epoch,
            lr,
            subset_size: selection.len(),
            pool_size: n,
            train_loss: outcome.mean_loss,
            test_acc,
            select_secs: 0.0,
            io_secs: 0.0,
            overlap: None,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nessa_data::SynthConfig;
    use nessa_nn::models::mlp;

    fn data() -> (Dataset, Dataset) {
        SynthConfig {
            train: 300,
            test: 120,
            dim: 8,
            classes: 3,
            cluster_std: 0.7,
            class_sep: 3.2,
            ..SynthConfig::default()
        }
        .generate()
    }

    fn model(rng: &mut Rng64) -> Network {
        mlp(&[8, 24, 3], rng)
    }

    #[test]
    fn goal_trains_on_everything() {
        let (train, test) = data();
        let r = run_policy(&Policy::Goal, &train, &test, 8, 32, 0, &model).unwrap();
        assert_eq!(r.epochs[0].subset_size, 300);
        assert!(r.final_accuracy() > 0.8, "goal acc {}", r.final_accuracy());
    }

    #[test]
    fn craig_matches_goal_within_margin_at_30pct() {
        let (train, test) = data();
        let goal = run_policy(&Policy::Goal, &train, &test, 10, 32, 0, &model).unwrap();
        let craig = run_policy(
            &Policy::Craig { fraction: 0.3 },
            &train,
            &test,
            10,
            32,
            0,
            &model,
        )
        .unwrap();
        assert_eq!(craig.epochs[0].subset_size, 90);
        assert!(
            craig.final_accuracy() > goal.final_accuracy() - 0.12,
            "craig {} vs goal {}",
            craig.final_accuracy(),
            goal.final_accuracy()
        );
    }

    #[test]
    fn all_policies_produce_reports() {
        let (train, test) = data();
        for policy in [
            Policy::Goal,
            Policy::Nessa(NessaConfig::new(0.3, 3)),
            Policy::Craig { fraction: 0.3 },
            Policy::KCenters { fraction: 0.3 },
            Policy::Random { fraction: 0.3 },
        ] {
            let r = run_policy(&policy, &train, &test, 3, 32, 1, &model).unwrap();
            assert_eq!(r.epochs.len(), 3, "{}", policy.label());
            assert_eq!(r.name, policy.label());
            assert!(r.final_accuracy() > 0.25, "{} too weak", policy.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Policy::Goal.label(), "goal");
        assert_eq!(Policy::Nessa(NessaConfig::new(0.1, 1)).label(), "nessa");
        assert_eq!(Policy::Craig { fraction: 0.1 }.label(), "craig");
        assert_eq!(Policy::KCenters { fraction: 0.1 }.label(), "kcenters");
        assert_eq!(Policy::Random { fraction: 0.1 }.label(), "random");
    }

    #[test]
    fn deterministic_under_seed() {
        let (train, test) = data();
        let a = run_policy(
            &Policy::Craig { fraction: 0.2 },
            &train,
            &test,
            3,
            32,
            5,
            &model,
        )
        .unwrap();
        let b = run_policy(
            &Policy::Craig { fraction: 0.2 },
            &train,
            &test,
            3,
            32,
            5,
            &model,
        )
        .unwrap();
        assert_eq!(a.accuracy_curve(), b.accuracy_curve());
    }
}
