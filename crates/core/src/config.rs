//! Pipeline configuration.

use crate::retry::RetryPolicy;
use nessa_select::facility::GreedyVariant;
use nessa_smartssd::FaultPlan;
use nessa_telemetry::TelemetrySettings;

/// Configuration of a NeSSA training run.
///
/// Defaults encode the paper's hyper-parameters (§4.1: batch 128, LR 0.1
/// ÷5 at 60/120/160 of 200 epochs, weight decay 5e-4, Nesterov 0.9) and
/// optimization settings (§3.2: 5-epoch loss window, drop every 20
/// epochs). Construct with [`NessaConfig::new`] and override fields with
/// the builder methods.
///
/// ```
/// use nessa_core::NessaConfig;
///
/// let cfg = NessaConfig::new(0.3, 40)
///     .with_subset_biasing(true)
///     .with_partitioning(true)
///     .with_seed(7);
/// assert_eq!(cfg.subset_fraction, 0.3);
/// assert_eq!(cfg.epochs, 40);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NessaConfig {
    /// Fraction of the (active) training pool selected each epoch.
    pub subset_fraction: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (paper: 128).
    pub batch_size: usize,
    /// Base learning rate for the paper's multi-step schedule (paper:
    /// 0.1; the decay shape — ÷5 at 30 %/60 %/80 % of the run — is
    /// fixed). Models far from the paper's ResNet scale may need a
    /// smaller starting point.
    pub base_lr: f32,
    /// Re-select the subset every this many epochs (1 = every epoch).
    pub select_every: usize,
    /// Quantized-weight feedback (§3.2.1). When off, the selector model
    /// keeps its initial weights (no feedback loop).
    pub feedback: bool,
    /// Subset biasing (§3.2.2): drop learned samples from the pool.
    pub subset_biasing: bool,
    /// Loss-history window for biasing (paper: most recent 5 epochs).
    pub biasing_window: usize,
    /// Drop marked samples every this many epochs (paper: 20).
    pub biasing_drop_every: usize,
    /// Fraction of the pool dropped at each biasing step.
    pub biasing_drop_fraction: f32,
    /// Never shrink the pool below this fraction of the original set.
    pub biasing_min_pool: f32,
    /// Dataset partitioning (§3.2.3): chunk classes so similarity tiles
    /// fit the FPGA's on-chip memory.
    pub partitioning: bool,
    /// Dynamic subset sizing (contribution 4): shrink the subset when the
    /// loss-reduction rate flattens.
    pub dynamic_sizing: bool,
    /// Relative per-epoch loss reduction below which the subset shrinks.
    pub sizing_threshold: f32,
    /// Multiplicative shrink factor for the subset fraction.
    pub sizing_factor: f32,
    /// Floor for the subset fraction under dynamic sizing.
    pub sizing_min_fraction: f32,
    /// Exponent applied to the CRAIG medoid weights before training
    /// (`w ← w^γ`). `1.0` uses raw cluster sizes as in CRAIG; smaller
    /// values temper the extreme weight concentration that destabilizes
    /// SGD on small subsets of highly-redundant data. NeSSA defaults to
    /// `0.5`; the ablation bench sweeps this.
    pub weight_temper: f32,
    /// Greedy maximizer used on the (simulated) FPGA.
    pub greedy: GreedyVariant,
    /// Worker threads for per-class selection.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Telemetry collection for the run (spans, metrics, sinks). Defaults
    /// to off; see [`TelemetrySettings::from_env`] for the
    /// `NESSA_TELEMETRY` environment control.
    pub telemetry: TelemetrySettings,
    /// Stall budget for the live health monitor: seconds without any span
    /// closing before the pipeline counts as wedged (see
    /// [`crate::health::HealthMonitor`]).
    pub stall_budget_secs: f64,
    /// SmartSSDs in the simulated cluster (1 = the paper's single-drive
    /// setup; more shards the scan/select phases).
    pub drives: usize,
    /// Overlapped epoch pipelining (paper §3, Figure 3): while the GPU
    /// trains epoch *e*, the SmartSSD concurrently selects the subset for
    /// epoch *e + 1* on a worker thread, using quantized-weight feedback
    /// that is one epoch stale (see [`Self::max_staleness`]). Off by
    /// default: the sequential loop is the byte-identical reference.
    pub overlap: bool,
    /// Maximum feedback staleness (in epochs) an overlapped selection
    /// round may use. Overlapped rounds run at staleness 1; setting this
    /// to 0 forces every round back to the synchronous path (fresh
    /// feedback, no concurrency). Ignored when [`Self::overlap`] is off.
    pub max_staleness: usize,
    /// Retry policy for failed device operations. Single-wait backoff is
    /// additionally clamped to `stall_budget_secs` at run time.
    pub retry: RetryPolicy,
    /// Deterministic fault schedules armed per drive before the run
    /// (`(drive index, plan)` pairs; out-of-range indexes are ignored).
    pub fault_plans: Vec<(usize, FaultPlan)>,
}

impl NessaConfig {
    /// Creates a configuration with the paper's defaults for everything
    /// except the subset fraction and epoch count.
    pub fn new(subset_fraction: f32, epochs: usize) -> Self {
        assert!(
            subset_fraction > 0.0 && subset_fraction <= 1.0,
            "subset fraction must be in (0, 1], got {subset_fraction}"
        );
        assert!(epochs > 0, "need at least one epoch");
        Self {
            subset_fraction,
            epochs,
            batch_size: 128,
            base_lr: 0.1,
            select_every: 1,
            feedback: true,
            subset_biasing: true,
            biasing_window: 5,
            biasing_drop_every: 20,
            biasing_drop_fraction: 0.1,
            biasing_min_pool: 0.4,
            partitioning: true,
            dynamic_sizing: false,
            sizing_threshold: 0.01,
            sizing_factor: 0.9,
            sizing_min_fraction: 0.05,
            weight_temper: 0.5,
            greedy: GreedyVariant::Lazy,
            threads: 1,
            seed: 42,
            telemetry: TelemetrySettings::off(),
            stall_budget_secs: 30.0,
            drives: 1,
            overlap: false,
            max_staleness: 1,
            retry: RetryPolicy::default(),
            fault_plans: Vec::new(),
        }
    }

    /// Enables or disables overlapped epoch pipelining (selection for the
    /// next epoch runs concurrently with training; feedback becomes one
    /// epoch stale).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Sets the maximum feedback staleness (in epochs) overlapped
    /// selection rounds may use; `0` forces synchronous rounds.
    pub fn with_max_staleness(mut self, epochs: usize) -> Self {
        self.max_staleness = epochs;
        self
    }

    /// Sets the base learning rate of the multi-step schedule (the decay
    /// shape is unchanged).
    pub fn with_base_lr(mut self, base_lr: f32) -> Self {
        assert!(
            base_lr > 0.0 && base_lr.is_finite(),
            "base learning rate must be positive and finite, got {base_lr}"
        );
        self.base_lr = base_lr;
        self
    }

    /// Enables or disables the quantized-weight feedback loop.
    pub fn with_feedback(mut self, on: bool) -> Self {
        self.feedback = on;
        self
    }

    /// Enables or disables subset biasing.
    pub fn with_subset_biasing(mut self, on: bool) -> Self {
        self.subset_biasing = on;
        self
    }

    /// Enables or disables dataset partitioning.
    pub fn with_partitioning(mut self, on: bool) -> Self {
        self.partitioning = on;
        self
    }

    /// Enables or disables dynamic subset sizing.
    pub fn with_dynamic_sizing(mut self, on: bool) -> Self {
        self.dynamic_sizing = on;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the greedy maximizer variant.
    pub fn with_greedy(mut self, greedy: GreedyVariant) -> Self {
        self.greedy = greedy;
        self
    }

    /// Sets the per-class selection thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the telemetry configuration for the run.
    pub fn with_telemetry(mut self, telemetry: TelemetrySettings) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the health monitor's stall budget in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive.
    pub fn with_stall_budget(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "stall budget must be positive, got {secs}");
        self.stall_budget_secs = secs;
        self
    }

    /// Sets the number of SmartSSDs in the simulated cluster.
    ///
    /// # Panics
    ///
    /// Panics if `drives == 0`.
    pub fn with_drives(mut self, drives: usize) -> Self {
        assert!(drives > 0, "a cluster needs at least one drive");
        self.drives = drives;
        self
    }

    /// Sets the retry policy for failed device operations.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms a deterministic fault schedule on drive `drive` (repeatable;
    /// out-of-range indexes are ignored at run time).
    pub fn with_fault_plan(mut self, drive: usize, plan: FaultPlan) -> Self {
        self.fault_plans.push((drive, plan));
        self
    }

    /// The §3.2.3 partition chunk size: selecting `m` (one mini-batch) per
    /// chunk at the current fraction needs chunks of `m / fraction`.
    pub fn partition_chunk(&self, fraction: f32) -> usize {
        ((self.batch_size as f32 / fraction).ceil() as usize).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = NessaConfig::new(0.3, 200);
        assert_eq!(cfg.batch_size, 128);
        assert_eq!(cfg.biasing_window, 5);
        assert_eq!(cfg.biasing_drop_every, 20);
        assert!(cfg.feedback && cfg.subset_biasing && cfg.partitioning);
        assert!(!cfg.overlap, "sequential mode is the default");
        assert_eq!(cfg.max_staleness, 1);
    }

    #[test]
    fn builder_overrides() {
        let cfg = NessaConfig::new(0.1, 10)
            .with_feedback(false)
            .with_subset_biasing(false)
            .with_partitioning(false)
            .with_dynamic_sizing(true)
            .with_batch_size(32)
            .with_threads(0)
            .with_stall_budget(5.0)
            .with_seed(9);
        assert!(!cfg.feedback && !cfg.subset_biasing && !cfg.partitioning);
        assert!(cfg.dynamic_sizing);
        assert_eq!(cfg.batch_size, 32);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.stall_budget_secs, 5.0);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn fault_builders_accumulate() {
        let cfg = NessaConfig::new(0.3, 10)
            .with_drives(2)
            .with_retry(RetryPolicy {
                max_attempts: 5,
                ..RetryPolicy::default()
            })
            .with_fault_plan(0, FaultPlan::none().with_read_error(1, 2))
            .with_fault_plan(1, FaultPlan::none().with_dropout_after(3));
        let cfg = cfg.with_overlap(true).with_max_staleness(2);
        assert!(cfg.overlap);
        assert_eq!(cfg.max_staleness, 2);
        assert_eq!(cfg.drives, 2);
        assert_eq!(cfg.retry.max_attempts, 5);
        assert_eq!(cfg.fault_plans.len(), 2);
    }

    #[test]
    fn base_lr_defaults_to_paper_and_overrides() {
        let cfg = NessaConfig::new(0.3, 10);
        assert_eq!(cfg.base_lr, 0.1, "default must reproduce the paper's lr");
        let cfg = cfg.with_base_lr(0.02);
        assert_eq!(cfg.base_lr, 0.02);
    }

    #[test]
    #[should_panic(expected = "base learning rate")]
    fn rejects_nonpositive_base_lr() {
        let _ = NessaConfig::new(0.3, 10).with_base_lr(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one drive")]
    fn rejects_zero_drives() {
        let _ = NessaConfig::new(0.5, 10).with_drives(0);
    }

    #[test]
    #[should_panic(expected = "stall budget")]
    fn rejects_nonpositive_stall_budget() {
        let _ = NessaConfig::new(0.5, 10).with_stall_budget(0.0);
    }

    #[test]
    fn partition_chunk_selects_batch_per_chunk() {
        let cfg = NessaConfig::new(0.3, 10);
        // m / fraction = 128 / 0.3 ≈ 427.
        assert_eq!(cfg.partition_chunk(0.3), 427);
        assert_eq!(cfg.partition_chunk(1.0), 128);
    }

    #[test]
    #[should_panic(expected = "subset fraction")]
    fn rejects_bad_fraction() {
        let _ = NessaConfig::new(1.5, 10);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn rejects_zero_epochs() {
        let _ = NessaConfig::new(0.5, 0);
    }
}
