//! Bounded retry with deterministic backoff, and the degradation ladder.
//!
//! Near-storage selection adds storage-side failure modes to the training
//! loop. The pipeline responds with a three-rung ladder: retry the device
//! operation under a [`RetryPolicy`] (each wait charged to the *simulated*
//! clock, never the wall clock), then fall back to host-side selection
//! over a staged read, then fall back to seeded random selection. The
//! generic [`degrade`] driver keeps that ordering in one tested place.

/// Bounded-attempt retry with deterministic exponential backoff.
///
/// Backoff is charged to the simulated clock by the caller (e.g. via
/// `SsdCluster::stall_all`), so runs with the same seed and fault plan
/// reproduce identical timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation, first try included (min 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt (simulated seconds).
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after every failed attempt.
    pub backoff_factor: f64,
    /// Upper clamp on any single backoff wait (simulated seconds).
    pub max_backoff_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_secs: 0.05,
            backoff_factor: 2.0,
            max_backoff_secs: 1.0,
        }
    }
}

impl RetryPolicy {
    /// The wait after failed attempt number `attempt` (0-based):
    /// `base · factor^attempt`, clamped to `max_backoff_secs`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_secs * self.backoff_factor.powi(attempt.min(64) as i32);
        raw.min(self.max_backoff_secs).max(0.0)
    }

    /// A copy whose single-wait clamp never exceeds `budget` seconds —
    /// ties the policy to `NessaConfig::stall_budget_secs` so a backoff
    /// can never trip the stall watchdog by itself.
    pub fn bounded_by(&self, budget: f64) -> Self {
        Self {
            max_backoff_secs: self.max_backoff_secs.min(budget.max(0.0)),
            ..*self
        }
    }

    /// Total backoff charged when every attempt fails.
    pub fn total_backoff_secs(&self) -> f64 {
        (0..self.max_attempts.max(1).saturating_sub(1))
            .map(|a| self.backoff_secs(a))
            .sum()
    }
}

/// Which rung of the degradation ladder produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The device operation succeeded (possibly after retries).
    Device,
    /// The host-side fallback produced the result.
    Host,
    /// The seeded random fallback produced the result.
    Random,
}

/// A ladder outcome: the value plus how far down the ladder it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded<T> {
    /// The produced value.
    pub value: T,
    /// The rung that produced it.
    pub rung: Rung,
    /// Device attempts made (≥ 1).
    pub attempts: u32,
}

/// Runs the degradation ladder: `device` is attempted up to
/// `policy.max_attempts` times (with `on_backoff(ctx, attempt, secs)`
/// called between attempts so the caller can charge the wait to the
/// simulated clock); when attempts are exhausted — or the error is not
/// transient per `is_transient` — `host` runs once; if `host` also
/// fails, `random` decides the final outcome.
///
/// The shared `ctx` is threaded through every closure so callers can
/// hand the same `&mut` state (a cluster, a pipeline) to each rung
/// without aliasing.
///
/// # Errors
///
/// Returns `random`'s error when every rung fails (the `host` error is
/// superseded by the deeper fallback).
pub fn degrade<C, T, E>(
    policy: &RetryPolicy,
    ctx: &mut C,
    mut device: impl FnMut(&mut C, u32) -> Result<T, E>,
    is_transient: impl Fn(&E) -> bool,
    mut on_backoff: impl FnMut(&mut C, u32, f64),
    host: impl FnOnce(&mut C) -> Result<T, E>,
    random: impl FnOnce(&mut C) -> Result<T, E>,
) -> Result<Degraded<T>, E> {
    let max = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    loop {
        match device(ctx, attempts) {
            Ok(value) => {
                return Ok(Degraded {
                    value,
                    rung: Rung::Device,
                    attempts: attempts + 1,
                })
            }
            Err(e) => {
                attempts += 1;
                if attempts >= max || !is_transient(&e) {
                    break;
                }
                on_backoff(ctx, attempts, policy.backoff_secs(attempts - 1));
            }
        }
    }
    match host(ctx) {
        Ok(value) => Ok(Degraded {
            value,
            rung: Rung::Host,
            attempts,
        }),
        Err(_) => random(ctx).map(|value| Degraded {
            value,
            rung: Rung::Random,
            attempts,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_and_clamps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_secs: 0.1,
            backoff_factor: 2.0,
            max_backoff_secs: 0.35,
        };
        assert!((p.backoff_secs(0) - 0.1).abs() < 1e-12);
        assert!((p.backoff_secs(1) - 0.2).abs() < 1e-12);
        assert!((p.backoff_secs(2) - 0.35).abs() < 1e-12, "clamped");
        assert!((p.backoff_secs(60) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_caps_the_single_wait() {
        let p = RetryPolicy::default().bounded_by(0.08);
        assert!(p.backoff_secs(10) <= 0.08 + 1e-12);
        let unbounded = RetryPolicy::default().bounded_by(1e9);
        assert!((unbounded.max_backoff_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_stays_on_device_when_it_succeeds() {
        let p = RetryPolicy::default();
        let mut calls = 0u32;
        let out = degrade(
            &p,
            &mut calls,
            |c, _| {
                *c += 1;
                Ok::<_, ()>(7)
            },
            |_| true,
            |_, _, _| {},
            |_| Ok(8),
            |_| Ok(9),
        )
        .unwrap();
        assert_eq!(out.value, 7);
        assert_eq!(out.rung, Rung::Device);
        assert_eq!(out.attempts, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhausted_retries_reach_host_before_random() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut trail: Vec<&'static str> = Vec::new();
        let out = degrade(
            &p,
            &mut trail,
            |t, _| {
                t.push("device");
                Err::<u32, _>("transient")
            },
            |_| true,
            |t, _, _| t.push("backoff"),
            |t| {
                t.push("host");
                Ok(1)
            },
            |t| {
                t.push("random");
                Ok(2)
            },
        )
        .unwrap();
        assert_eq!(out.rung, Rung::Host);
        assert_eq!(out.attempts, 3);
        assert_eq!(
            trail,
            vec!["device", "backoff", "device", "backoff", "device", "host"],
            "host must come after every device retry, random never"
        );
    }

    #[test]
    fn host_failure_falls_through_to_random() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let out = degrade(
            &p,
            &mut (),
            |_, _| Err::<u32, _>("transient"),
            |_| true,
            |_, _, _| {},
            |_| Err("host down"),
            |_| Ok(3),
        )
        .unwrap();
        assert_eq!(out.rung, Rung::Random);
        assert_eq!(out.value, 3);
    }

    #[test]
    fn non_transient_errors_skip_remaining_retries() {
        let p = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };
        let mut device_calls = 0u32;
        let out = degrade(
            &p,
            &mut device_calls,
            |c, _| {
                *c += 1;
                Err::<u32, _>("fatal")
            },
            |_| false,
            |_, _, _| {},
            |_| Ok(4),
            |_| Ok(5),
        )
        .unwrap();
        assert_eq!(out.rung, Rung::Host);
        assert_eq!(device_calls, 1, "no retry for a non-transient error");
    }

    #[test]
    fn all_rungs_failing_returns_the_random_error() {
        let p = RetryPolicy::default();
        let err = degrade(
            &p,
            &mut (),
            |_, _| Err::<u32, _>("device"),
            |_| true,
            |_, _, _| {},
            |_| Err("host"),
            |_| Err("random"),
        )
        .unwrap_err();
        assert_eq!(err, "random");
    }

    #[test]
    fn total_backoff_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.total_backoff_secs() <= (p.max_attempts as f64) * p.max_backoff_secs);
    }
}
