//! Paper-scale epoch-time composition (Figure 4, §4.3, §4.4).
//!
//! The accuracy experiments run at reproduction scale, but the timing
//! claims depend only on the *full-scale* workload parameters: training-set
//! sizes, per-image bytes, model FLOPs, link bandwidths, and where the
//! selection runs. This module composes per-epoch time for each policy
//! from those parameters:
//!
//! * **Goal** — full dataset through the conventional loader + GPU epoch,
//! * **NeSSA** — P2P pool scan + FPGA kernel + subset transfer + GPU epoch
//!   on the subset + quantized feedback,
//! * **CRAIG (CPU)** / **K-Centers (CPU)** — full dataset to the host,
//!   selection on the CPU, GPU epoch on the subset.
//!
//! The FPGA kernel is priced as a *low-operational-intensity* pass —
//! proxy-head update, chunked similarities, greedy sweep — per the paper's
//! own suitability argument (§2.2, citing \[33\]): a workload only belongs
//! near storage if it spends few cycles per byte. See DESIGN.md §2 for the
//! substitution note.

use nessa_data::{DatasetSpec, PaperModel};
use nessa_nn::cost::{epoch_time, DeviceSpec, LoaderSpec};
use nessa_nn::flops::ArchSpec;
use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::{SmartSsd, SmartSsdConfig};

/// Sustained CPU throughput for the irregular similarity/greedy selection
/// workloads of the CPU baselines (bytes-bound, cache-unfriendly), in
/// FLOP/s.
pub const CPU_SELECT_FLOPS: f64 = 6.0e9;

/// A per-epoch time breakdown for one policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyTiming {
    /// Seconds of data movement (storage → compute, subset transfers,
    /// feedback).
    pub data_move_s: f64,
    /// Seconds of subset selection (FPGA kernel or CPU).
    pub select_s: f64,
    /// Seconds of GPU gradient computation.
    pub train_s: f64,
}

impl PolicyTiming {
    /// Total epoch seconds.
    pub fn total_s(&self) -> f64 {
        self.data_move_s + self.select_s + self.train_s
    }
}

/// Full-scale workload parameters derived from a Table-1 dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Training-set size.
    pub samples: u64,
    /// Stored bytes per sample.
    pub bytes_per_sample: u64,
    /// Forward FLOPs per sample of the paper's model for this dataset.
    pub forward_flops: u64,
    /// Penultimate-layer width of that model (proxy-head input).
    pub feature_dim: usize,
    /// Class count.
    pub classes: usize,
}

impl Workload {
    /// Builds the workload for a Table-1 dataset.
    pub fn from_spec(spec: &DatasetSpec) -> Self {
        let (arch, feature_dim): (ArchSpec, usize) = match spec.model {
            PaperModel::ResNet20 => (ArchSpec::resnet20(spec.image_hw, spec.classes), 64),
            PaperModel::ResNet18 => (ArchSpec::resnet18(spec.image_hw, spec.classes), 512),
            PaperModel::ResNet50 => (ArchSpec::resnet50(spec.image_hw, spec.classes), 2048),
            PaperModel::SmallCnn => (
                ArchSpec {
                    name: "smallcnn".into(),
                    convs: vec![],
                    fc: (800, spec.classes),
                },
                32,
            ),
        };
        Self {
            samples: spec.train_size as u64,
            bytes_per_sample: spec.bytes_per_image as u64,
            forward_flops: arch.forward_flops().max(2_000_000),
            feature_dim,
            classes: spec.classes,
        }
    }

    fn training_flops(&self) -> u64 {
        3 * self.forward_flops
    }

    fn subset(&self, fraction: f64) -> u64 {
        ((self.samples as f64 * fraction).ceil() as u64).max(1)
    }
}

/// Epoch time for full-data training (the paper's "All Data"/"Goal" bar).
pub fn goal_epoch(w: &Workload, gpu: &DeviceSpec) -> PolicyTiming {
    let t = epoch_time(
        gpu,
        &LoaderSpec::conventional_host(),
        w.samples,
        w.training_flops(),
        w.bytes_per_sample,
    );
    PolicyTiming {
        data_move_s: t.io_s,
        select_s: 0.0,
        train_s: t.compute_s,
    }
}

/// Epoch time for NeSSA at a subset fraction.
///
/// Uses the full [`SmartSsd`] simulator for the near-storage phases and
/// the GPU cost model for subset training.
pub fn nessa_epoch(w: &Workload, gpu: &DeviceSpec, fraction: f64) -> PolicyTiming {
    let mut dev = SmartSsd::new(SmartSsdConfig::default());
    let subset = w.subset(fraction);
    // (1) Pool scan over P2P. No fault plan is armed on this throwaway
    // device, so the data path cannot fail.
    let read_s = dev
        .read_records_to_fpga(w.samples, w.bytes_per_sample)
        // nessa-lint: allow(p1-panic) — fault-free device; see above.
        .expect("fault-free device");
    // (2) Selection kernel: proxy-head update + similarities + greedy.
    let chunk = KernelProfile::max_chunk_for(&dev.config().fpga, w.classes)
        .min((128.0 / fraction).ceil() as usize)
        .max(2);
    let profile = KernelProfile {
        samples: w.samples,
        forward_macs_per_sample: (w.feature_dim * w.classes) as u64,
        proxy_dim: w.classes,
        chunk,
        k_per_chunk: 128,
    };
    let select_s = dev
        .run_selection(&profile)
        // nessa-lint: allow(p1-panic) — `max_chunk_for` sized the chunk to
        // fit on-chip memory two statements above, so this cannot fail; a
        // Result here would force every timing-table caller to thread an
        // impossible error.
        .expect("chunk chosen to fit on-chip memory");
    // (3) Subset to the GPU.
    let subset_s = dev
        .send_subset_to_host(subset, w.bytes_per_sample)
        // nessa-lint: allow(p1-panic) — fault-free device; see step 1.
        .expect("fault-free device");
    // (4) GPU trains the subset (data already delivered by step 3).
    let train = epoch_time(
        gpu,
        &LoaderSpec::smartssd_p2p(),
        subset,
        w.training_flops(),
        0,
    );
    // (5) Quantized feedback: int8 model weights (≈¼ of f32 size).
    let params_bytes = (estimate_params(w) / 4).max(1);
    let feedback_s = dev
        .receive_feedback(params_bytes)
        // nessa-lint: allow(p1-panic) — fault-free device; see step 1.
        .expect("fault-free device");
    PolicyTiming {
        data_move_s: read_s + subset_s + feedback_s,
        select_s,
        train_s: train.compute_s,
    }
}

/// A per-epoch time breakdown for NeSSA's overlapped schedule (§3,
/// Figure 3): the selection round for the next epoch runs concurrently
/// with GPU training, so only the slower of the two sides plus the
/// serializing feedback hand-off lands on the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlappedTiming {
    /// Seconds the selection side spends off the GPU's back: pool scan,
    /// FPGA kernel, and subset shipment for the *next* epoch.
    pub select_side_s: f64,
    /// Seconds of GPU gradient computation on the current subset.
    pub train_s: f64,
    /// Seconds of the quantized-weight feedback broadcast that
    /// serializes the two sides at the epoch boundary.
    pub handoff_s: f64,
}

impl OverlappedTiming {
    /// Critical-path epoch seconds: `max(select_side, train) + handoff`.
    pub fn total_s(&self) -> f64 {
        self.select_side_s.max(self.train_s) + self.handoff_s
    }

    /// Seconds the overlap hides versus running the sides back to back.
    pub fn hidden_s(&self) -> f64 {
        self.select_side_s.min(self.train_s)
    }
}

/// Steady-state epoch time for NeSSA with overlapped pipelining at a
/// subset fraction.
///
/// Same device model as [`nessa_epoch`], recomposed: scan + kernel +
/// ship count as the concurrent selection side, training runs under
/// them, and only the feedback broadcast serializes. The epoch-0
/// prologue round (which cannot overlap with anything) is excluded —
/// this is the per-epoch cost once the pipeline is primed.
pub fn nessa_overlapped_epoch(w: &Workload, gpu: &DeviceSpec, fraction: f64) -> OverlappedTiming {
    let seq = nessa_epoch(w, gpu, fraction);
    // nessa_epoch folds the feedback broadcast into data movement;
    // recompute it alone so the hand-off can be split out.
    let mut dev = SmartSsd::new(SmartSsdConfig::default());
    let params_bytes = (estimate_params(w) / 4).max(1);
    let handoff_s = dev
        .receive_feedback(params_bytes)
        // nessa-lint: allow(p1-panic) — fault-free device, as in
        // `nessa_epoch`.
        .expect("fault-free device");
    OverlappedTiming {
        select_side_s: (seq.data_move_s - handoff_s).max(0.0) + seq.select_s,
        train_s: seq.train_s,
        handoff_s,
    }
}

/// Epoch time for CPU CRAIG at a subset fraction: full dataset to the
/// host, per-class similarity + lazy greedy on proxies, subset training.
pub fn craig_cpu_epoch(w: &Workload, gpu: &DeviceSpec, fraction: f64) -> PolicyTiming {
    let io = epoch_time(
        gpu,
        &LoaderSpec::conventional_host(),
        w.samples,
        0,
        w.bytes_per_sample,
    );
    // Per-class pairwise similarities over `classes`-dim proxies:
    // classes × (n/classes)² × proxy_dim × 2 FLOPs, plus the greedy sweep.
    let per_class = w.samples as f64 / w.classes as f64;
    let sim_flops = w.classes as f64 * per_class * per_class * w.classes as f64 * 2.0;
    let greedy_flops = w.classes as f64 * per_class * per_class * 4.0;
    let select_s = (sim_flops + greedy_flops) / CPU_SELECT_FLOPS;
    let train = epoch_time(
        gpu,
        &LoaderSpec::conventional_host(),
        w.subset(fraction),
        w.training_flops(),
        0,
    );
    PolicyTiming {
        data_move_s: io.io_s,
        select_s,
        train_s: train.compute_s,
    }
}

/// Epoch time for CPU K-Centers at a subset fraction: farthest-first over
/// the model's penultimate features (as Sener & Savarese), which is both
/// higher-dimensional and k-pass sequential.
pub fn kcenters_cpu_epoch(w: &Workload, gpu: &DeviceSpec, fraction: f64) -> PolicyTiming {
    let io = epoch_time(
        gpu,
        &LoaderSpec::conventional_host(),
        w.samples,
        0,
        w.bytes_per_sample,
    );
    // Incremental farthest-first: k passes × n × feature_dim × 3 FLOPs.
    // Scanning over embeddings also re-reads n × feature_dim × 4 bytes per
    // pass; both terms charge the CPU.
    let k = w.subset(fraction) as f64;
    let flops = k * w.samples as f64 * w.feature_dim as f64 * 3.0;
    let select_s = flops / CPU_SELECT_FLOPS;
    let train = epoch_time(
        gpu,
        &LoaderSpec::conventional_host(),
        w.subset(fraction),
        w.training_flops(),
        0,
    );
    PolicyTiming {
        data_move_s: io.io_s,
        select_s,
        train_s: train.compute_s,
    }
}

fn estimate_params(w: &Workload) -> u64 {
    // Rough parameter counts (bytes at f32) of the paper's models by
    // penultimate width: ResNet-20 ≈ 0.27 M, ResNet-18 ≈ 11 M,
    // ResNet-50 ≈ 25.6 M.
    let params: u64 = match w.feature_dim {
        64 => 270_000,
        512 => 11_200_000,
        2048 => 25_600_000,
        _ => 100_000,
    };
    params * 4
}

/// §4.4's headline number: the average factor by which NeSSA reduces
/// drive-host interconnect traffic vs. staging the full dataset, across
/// the Table-1 datasets at their Table-2 subset percentages.
pub fn mean_data_movement_reduction(specs: &[DatasetSpec]) -> f64 {
    let mut total = 0.0;
    let mut count = 0;
    for spec in specs {
        let Some(paper) = spec.paper else { continue };
        let w = Workload::from_spec(spec);
        let full_bytes = w.samples as f64 * w.bytes_per_sample as f64;
        let subset_bytes = w.subset(paper.subset_pct as f64 / 100.0) as f64
            * w.bytes_per_sample as f64
            + estimate_params(&w) as f64 / 4.0;
        total += full_bytes / subset_bytes;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cifar() -> Workload {
        Workload::from_spec(&DatasetSpec::by_name("CIFAR-10").unwrap())
    }

    #[test]
    fn nessa_epoch_is_several_times_faster_than_goal() {
        let gpu = DeviceSpec::v100();
        let w = cifar();
        let goal = goal_epoch(&w, &gpu).total_s();
        let nessa = nessa_epoch(&w, &gpu, 0.28).total_s();
        let speedup = goal / nessa;
        assert!(
            (3.0..8.0).contains(&speedup),
            "per-epoch speedup {speedup} (goal {goal}s, nessa {nessa}s)"
        );
    }

    #[test]
    fn policy_ordering_matches_figure4() {
        // Figure 4 (CIFAR-10): NeSSA < CRAIG < Goal < K-Centers.
        let gpu = DeviceSpec::v100();
        let w = cifar();
        let nessa = nessa_epoch(&w, &gpu, 0.3).total_s();
        let craig = craig_cpu_epoch(&w, &gpu, 0.3).total_s();
        let goal = goal_epoch(&w, &gpu).total_s();
        let kc = kcenters_cpu_epoch(&w, &gpu, 0.3).total_s();
        assert!(nessa < craig, "nessa {nessa} !< craig {craig}");
        assert!(craig < goal, "craig {craig} !< goal {goal}");
        assert!(goal < kc, "goal {goal} !< kcenters {kc}");
    }

    #[test]
    fn selection_is_minor_share_of_nessa_epoch() {
        let gpu = DeviceSpec::v100();
        let t = nessa_epoch(&cifar(), &gpu, 0.3);
        assert!(
            t.select_s < 0.4 * t.total_s(),
            "selection {}s of {}s",
            t.select_s,
            t.total_s()
        );
    }

    #[test]
    fn movement_reduction_near_paper_3_47x() {
        let r = mean_data_movement_reduction(&DatasetSpec::table1());
        assert!((2.8..4.5).contains(&r), "data-movement reduction {r}");
    }

    #[test]
    fn workloads_built_for_all_table1_datasets() {
        for spec in DatasetSpec::table1() {
            let w = Workload::from_spec(&spec);
            assert!(w.forward_flops > 1_000_000, "{}", spec.name);
            assert_eq!(w.samples, spec.train_size as u64);
        }
    }

    #[test]
    fn overlapped_epoch_beats_sequential_and_composes_as_max() {
        let gpu = DeviceSpec::v100();
        let w = cifar();
        let seq = nessa_epoch(&w, &gpu, 0.3);
        let ovl = nessa_overlapped_epoch(&w, &gpu, 0.3);
        // The decomposition covers the same work…
        assert!(
            (seq.total_s() - (ovl.select_side_s + ovl.train_s + ovl.handoff_s)).abs()
                < 1e-9 * seq.total_s(),
            "overlap sides must repartition the sequential epoch"
        );
        // …composed as max + handoff, so the overlapped epoch is
        // strictly cheaper and hides exactly min(select, train).
        assert!(
            (ovl.total_s() - (ovl.select_side_s.max(ovl.train_s) + ovl.handoff_s)).abs() < 1e-12
        );
        assert!(ovl.total_s() < seq.total_s());
        assert!(
            (seq.total_s() - ovl.total_s() - ovl.hidden_s()).abs() < 1e-9 * seq.total_s(),
            "savings must equal the hidden side"
        );
    }

    #[test]
    fn timing_totals_add_up() {
        let gpu = DeviceSpec::v100();
        let t = goal_epoch(&cifar(), &gpu);
        assert!((t.total_s() - (t.data_move_s + t.select_s + t.train_s)).abs() < 1e-12);
    }
}
