//! Typed pipeline failures.
//!
//! The epoch loop never panics (`nessa-lint` rule **P1**): anything that
//! can go wrong during a run — bad selection inputs, a kernel profile
//! that does not fit the FPGA's on-chip memory, a drive failure the
//! degradation ladder could not absorb — surfaces as a [`PipelineError`]
//! so callers can attribute and report it.

use nessa_select::SelectError;
use nessa_smartssd::fpga::KernelError;
use nessa_smartssd::{ClusterError, DeviceError};

/// Why a pipeline run stopped before completing.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The selection kernel rejected its inputs or broke an invariant.
    Select(SelectError),
    /// The simulated FPGA rejected the kernel profile (typically a chunk
    /// that exceeds on-chip memory; enable partitioning or shrink the
    /// chunk).
    Kernel(KernelError),
    /// A drive failure that survived every rung of the degradation
    /// ladder (retries exhausted and no fallback path was possible).
    Drive {
        /// Index of the failing drive at the time of the failure.
        drive: usize,
        /// The device error that ended the run.
        error: DeviceError,
    },
    /// Every drive in the cluster dropped out; the dataset is
    /// unreachable and no fallback can proceed.
    AllDrivesLost {
        /// Drives evicted before the run stopped.
        evicted: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Select(e) => write!(f, "selection failed: {e}"),
            PipelineError::Kernel(e) => write!(f, "selection kernel failed: {e}"),
            PipelineError::Drive { drive, error } => {
                write!(f, "drive {drive} failed beyond recovery: {error}")
            }
            PipelineError::AllDrivesLost { evicted } => {
                write!(
                    f,
                    "all drives lost ({evicted} evicted); dataset unreachable"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Select(e) => Some(e),
            PipelineError::Kernel(e) => Some(e),
            PipelineError::Drive { error, .. } => Some(error),
            PipelineError::AllDrivesLost { .. } => None,
        }
    }
}

impl From<SelectError> for PipelineError {
    fn from(e: SelectError) -> Self {
        PipelineError::Select(e)
    }
}

impl From<KernelError> for PipelineError {
    fn from(e: KernelError) -> Self {
        PipelineError::Kernel(e)
    }
}

impl From<ClusterError> for PipelineError {
    fn from(e: ClusterError) -> Self {
        // A profile that cannot fit is a configuration problem, not a
        // drive fault — keep reporting it as the kernel error it is.
        match e.error {
            DeviceError::Kernel(k @ KernelError::ChunkTooLarge { .. }) => PipelineError::Kernel(k),
            error => PipelineError::Drive {
                drive: e.drive,
                error,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_sources() {
        let e = PipelineError::from(SelectError::BadFraction(2.0));
        assert!(e.to_string().contains("selection failed"));
        assert!(e.to_string().contains("2"));
        let k = PipelineError::from(KernelError::ChunkTooLarge {
            required: 10,
            available: 5,
        });
        assert!(k.to_string().contains("kernel"));
        assert!(std::error::Error::source(&k).is_some());
    }

    #[test]
    fn cluster_chunk_errors_stay_kernel_errors() {
        let e = PipelineError::from(ClusterError {
            drive: 2,
            error: DeviceError::Kernel(KernelError::ChunkTooLarge {
                required: 10,
                available: 5,
            }),
        });
        assert!(matches!(e, PipelineError::Kernel(_)));
    }

    #[test]
    fn cluster_device_faults_name_the_drive() {
        let e = PipelineError::from(ClusterError {
            drive: 1,
            error: DeviceError::Offline,
        });
        assert!(matches!(
            e,
            PipelineError::Drive {
                drive: 1,
                error: DeviceError::Offline
            }
        ));
        assert!(e.to_string().contains("drive 1"));
        assert!(std::error::Error::source(&e).is_some());
        let lost = PipelineError::AllDrivesLost { evicted: 2 };
        assert!(lost.to_string().contains("all drives lost"));
    }
}
