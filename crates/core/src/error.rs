//! Typed pipeline failures.
//!
//! The epoch loop never panics (`nessa-lint` rule **P1**): anything that
//! can go wrong during a run — bad selection inputs, a kernel profile
//! that does not fit the FPGA's on-chip memory — surfaces as a
//! [`PipelineError`] so callers can attribute and report it.

use nessa_select::SelectError;
use nessa_smartssd::fpga::KernelError;

/// Why a pipeline run stopped before completing.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The selection kernel rejected its inputs or broke an invariant.
    Select(SelectError),
    /// The simulated FPGA rejected the kernel profile (typically a chunk
    /// that exceeds on-chip memory; enable partitioning or shrink the
    /// chunk).
    Kernel(KernelError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Select(e) => write!(f, "selection failed: {e}"),
            PipelineError::Kernel(e) => write!(f, "selection kernel failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Select(e) => Some(e),
            PipelineError::Kernel(e) => Some(e),
        }
    }
}

impl From<SelectError> for PipelineError {
    fn from(e: SelectError) -> Self {
        PipelineError::Select(e)
    }
}

impl From<KernelError> for PipelineError {
    fn from(e: KernelError) -> Self {
        PipelineError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_sources() {
        let e = PipelineError::from(SelectError::BadFraction(2.0));
        assert!(e.to_string().contains("selection failed"));
        assert!(e.to_string().contains("2"));
        let k = PipelineError::from(KernelError::ChunkTooLarge {
            required: 10,
            available: 5,
        });
        assert!(k.to_string().contains("kernel"));
        assert!(std::error::Error::source(&k).is_some());
    }
}
