//! Integration test: a pipeline run emits exactly one span per configured
//! epoch phase per epoch, and the spans' simulated seconds reconcile with
//! the run report.

use nessa_core::{NessaConfig, NessaPipeline};
use nessa_data::SynthConfig;
use nessa_nn::models::mlp;
use nessa_telemetry::{SpanRecord, TelemetrySettings};
use nessa_tensor::rng::Rng64;

fn pipeline_for(cfg: &NessaConfig) -> NessaPipeline {
    let synth = SynthConfig {
        train: 240,
        test: 80,
        dim: 8,
        classes: 3,
        cluster_std: 0.6,
        class_sep: 3.5,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut rng = Rng64::new(cfg.seed);
    let target = mlp(&[8, 16, 3], &mut rng);
    let selector = mlp(&[8, 16, 3], &mut rng);
    NessaPipeline::new(cfg.clone(), target, selector, train, test)
}

fn spans_named<'a>(spans: &'a [SpanRecord], name: &str, epoch: u64) -> Vec<&'a SpanRecord> {
    spans
        .iter()
        .filter(|s| s.name == name && s.attr_u64("epoch") == Some(epoch))
        .collect()
}

#[test]
fn every_epoch_phase_emits_exactly_one_span() {
    let epochs = 4;
    let cfg = NessaConfig::new(0.3, epochs)
        .with_batch_size(32)
        .with_seed(11)
        .with_telemetry(TelemetrySettings::memory());
    let mut p = pipeline_for(&cfg);
    let report = p.run().unwrap();
    let spans = p.telemetry().spans();

    for epoch in 0..epochs as u64 {
        let parents = spans_named(&spans, "epoch", epoch);
        assert_eq!(parents.len(), 1, "epoch {epoch}: epoch span");
        let parent_id = parents[0].id;
        // select_every = 1 and feedback = true, so all five phases fire
        // every epoch.
        let mut sim_total = 0.0;
        for phase in ["scan", "select", "ship", "train", "feedback"] {
            let found = spans_named(&spans, phase, epoch);
            assert_eq!(found.len(), 1, "epoch {epoch}: {phase} span count");
            assert_eq!(
                found[0].parent,
                Some(parent_id),
                "epoch {epoch}: {phase} must nest under the epoch span"
            );
            sim_total += found[0].sim_secs;
        }
        let expected = report.epochs[epoch as usize].total_secs();
        assert!(
            (sim_total - expected).abs() < 1e-9,
            "epoch {epoch}: span sim total {sim_total} != report {expected}"
        );
        assert!(
            (parents[0].sim_secs - expected).abs() < 1e-9,
            "epoch {epoch}: epoch span sim {} != report {expected}",
            parents[0].sim_secs
        );
    }
}

#[test]
fn disabled_phases_emit_no_spans() {
    let mut cfg = NessaConfig::new(0.3, 4)
        .with_batch_size(32)
        .with_feedback(false)
        .with_seed(12)
        .with_telemetry(TelemetrySettings::memory());
    cfg.select_every = 2;
    let mut p = pipeline_for(&cfg);
    let _ = p.run().unwrap();
    let spans = p.telemetry().spans();

    // Feedback is off: no feedback spans at all.
    assert!(spans.iter().all(|s| s.name != "feedback"));
    // Selection runs on epochs 0 and 2 only.
    for phase in ["scan", "select", "ship"] {
        for epoch in [0u64, 2] {
            assert_eq!(
                spans_named(&spans, phase, epoch).len(),
                1,
                "{phase}@{epoch}"
            );
        }
        for epoch in [1u64, 3] {
            assert_eq!(
                spans_named(&spans, phase, epoch).len(),
                0,
                "{phase}@{epoch}"
            );
        }
    }
    // Train spans fire every epoch regardless.
    for epoch in 0..4u64 {
        assert_eq!(
            spans_named(&spans, "train", epoch).len(),
            1,
            "train@{epoch}"
        );
    }
}

#[test]
fn device_trace_bridges_into_the_stream() {
    let cfg = NessaConfig::new(0.3, 3)
        .with_batch_size(32)
        .with_seed(13)
        .with_telemetry(TelemetrySettings::memory());
    let mut p = pipeline_for(&cfg);
    let report = p.run().unwrap();
    let events = p.telemetry().device_events();
    let traced: usize = p
        .device()
        .drives()
        .iter()
        .chain(p.device().retired_drives())
        .map(|d| d.trace().len())
        .sum();
    assert_eq!(events.len(), traced);
    for label in ["scan", "select", "ship", "feedback"] {
        assert!(
            events.iter().any(|e| e.phase == label),
            "missing bridged {label} event"
        );
    }
    let bridged_bytes: u64 = events
        .iter()
        .filter(|e| e.phase == "scan")
        .map(|e| e.bytes)
        .sum();
    assert_eq!(bridged_bytes, report.traffic.ssd_to_fpga);

    // Metrics from select/train instrumentation landed in the registry.
    let snapshot = p.telemetry().metrics_snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("train.batches") > 0);
    assert!(counter("select.greedy_rounds") > 0);
    assert!(counter("select.classes") > 0);
    assert!(snapshot.gauges.iter().any(|(n, _)| n == "device.energy_j"));
}

#[test]
fn telemetry_off_collects_nothing() {
    let cfg = NessaConfig::new(0.3, 2).with_batch_size(32).with_seed(14);
    let mut p = pipeline_for(&cfg);
    let _ = p.run().unwrap();
    assert!(!p.telemetry().is_enabled());
    assert!(p.telemetry().spans().is_empty());
    assert!(p.telemetry().device_events().is_empty());
}
